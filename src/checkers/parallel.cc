#include "checkers/parallel.h"

#include "checkers/metal_sources.h"
#include "checkers/unit_guard.h"
#include "flash/protocol_spec.h"
#include "lang/fingerprint.h"
#include "support/fault_injection.h"
#include "support/hash.h"
#include "support/metrics.h"
#include "support/run_ledger.h"
#include "support/trace.h"
#include "support/version.h"
#include "support/witness.h"

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>

namespace mc::checkers {

namespace {

/**
 * The metal state-machine source a checker compiles from, or "" for the
 * hand-written ones. Part of the cache key: editing a .metal file must
 * invalidate every result its checker produced.
 */
const char*
metalSourceFor(const std::string& checker_name)
{
    if (checker_name == "wait_for_db")
        return kWaitForDbMetal;
    if (checker_name == "msglen_check")
        return kMsgLenCheckMetal;
    return "";
}

} // namespace

std::uint64_t
unitCacheKey(const std::string& checker_name,
             const CheckerSetOptions& options, std::uint64_t spec_fp,
             std::uint64_t fn_fp)
{
    support::Fnv1a h;
    h.i64(cache::kCacheFormatVersion);
    h.str(support::kToolVersion);
    h.str(checker_name);
    h.str(metalSourceFor(checker_name));
    h.u8(options.value_sensitive_frees ? 1 : 0);
    // PruneStrategy::Off encodes 0 — the byte the old boolean flag
    // wrote — so existing cache entries stay valid for unpruned runs.
    h.u8(static_cast<std::uint8_t>(options.prune_strategy));
    // Witness capture changes the bytes a unit produces (diagnostics
    // carry provenance), so witness-on and witness-off runs must never
    // share an entry — and neither may runs with different caps.
    h.u8(support::witnessEnabled() ? 1 : 0);
    h.u64(support::witnessLimit());
    h.u64(spec_fp);
    h.u64(fn_fp);
    return h.value();
}

std::vector<CheckerRunStats>
runCheckersParallel(const lang::Program& program,
                    const flash::ProtocolSpec& spec,
                    const std::vector<Checker*>& checkers,
                    support::DiagnosticSink& sink,
                    const ParallelRunOptions& options)
{
    // Any checker the factory cannot rebuild (a test double, say) makes
    // private instances impossible, which rules out the unit machinery
    // entirely. Every clonable configuration — including jobs == 1 —
    // goes through the unit machinery, so fault containment and cache
    // replay behave identically at any job count.
    unsigned jobs = options.pool           ? options.pool->jobs()
                    : options.jobs != 0   ? options.jobs
                                           : support::ThreadPool::defaultJobs();
    bool clonable = true;
    for (Checker* checker : checkers)
        if (!makeChecker(checker->name(), options.checker_options))
            clonable = false;
    cache::AnalysisCache* cache = clonable ? options.cache : nullptr;
    if (!clonable)
        return runCheckers(program, spec, checkers, sink);

    support::ThreadPool local_pool(options.pool ? 1 : jobs);
    support::ThreadPool& pool = options.pool ? *options.pool : local_pool;

    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    support::TraceRecorder& tracer = support::TraceRecorder::global();
    using Clock = std::chrono::steady_clock;

    const std::vector<const lang::FunctionDecl*>& fns = program.functions();
    const std::size_t nfns = fns.size();
    const std::size_t ncheckers = checkers.size();
    const std::size_t nunits = nfns * ncheckers;

    std::vector<int> base_errors;
    std::vector<int> base_warnings;
    for (Checker* checker : checkers) {
        checker->reset();
        base_errors.push_back(sink.countForChecker(
            checker->name(), support::Severity::Error));
        base_warnings.push_back(sink.countForChecker(
            checker->name(), support::Severity::Warning));
    }

    if (metrics.enabled()) {
        metrics.gauge("parallel.jobs").observe(jobs);
        metrics.counter("parallel.work_units").add(nunits);
        // Pre-registered so "engine.unit_failures": 0 in a report is a
        // statement that every unit completed, not an omission — and so
        // the map nodes exist before phase 2 fans out, keeping first-use
        // registration off the worker threads entirely.
        metrics.counter("engine.unit_failures").add(0);
        metrics.counter("budget.truncations").add(0);
        metrics.counter("witness.steps").add(0);
        metrics.counter("witness.truncations").add(0);
        metrics.counter("ledger.events").add(0);
        metrics.counter("walker.infeasible_pruned").add(0);
        metrics.counter("walker.prune_cache_hits").add(0);
        metrics.counter("walker.prune_skipped_nary").add(0);
        if (options.cfg_cache)
            metrics.counter("parallel.cfg_reused").add(0);
        metrics.histogram("unit.wall_ns");
        metrics.histogram("unit.visits");
    }

    std::vector<std::unique_ptr<Checker>> unit_checkers(nunits);
    std::vector<support::DiagnosticSink> unit_sinks(nunits);
    std::vector<char> unit_hit(nunits, 0);
    std::vector<std::uint64_t> unit_keys(nunits, 0);

    // Phase 0 (cache only): look every unit up by content key. A usable
    // hit yields a reconstructed private checker (state replayed through
    // loadState) and a private sink refilled with the stored diagnostics
    // in their original order, so the merge below cannot tell a replayed
    // unit from a freshly checked one. Unresolvable file names or a
    // state blob loadState rejects demote the hit to a miss.
    if (cache) {
        support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                                "cache.lookup", "cache");
        std::map<std::string, std::uint64_t> fn_fps =
            lang::fingerprintFunctions(program);
        std::map<std::string, std::int32_t> file_ids =
            cache::AnalysisCache::fileIdsByName(program.sourceManager());
        std::uint64_t spec_fp = flash::specFingerprint(spec);
        pool.parallelFor(nunits, [&](std::size_t u) {
            std::size_t f = u / ncheckers;
            std::size_t c = u % ncheckers;
            auto fp = fn_fps.find(fns[f]->name);
            if (fp == fn_fps.end())
                return;
            unit_keys[u] = unitCacheKey(checkers[c]->name(),
                                        options.checker_options, spec_fp,
                                        fp->second);
            cache::CachedUnit unit;
            if (!cache->lookup(unit_keys[u], unit))
                return;
            if (unit.checker != checkers[c]->name() ||
                unit.function != fns[f]->name)
                return; // key collision; vanishingly unlikely, run cold
            std::vector<support::Diagnostic> replayed;
            for (const cache::CachedDiagnostic& cached : unit.diags) {
                support::Diagnostic d;
                if (!cache::AnalysisCache::fromCached(cached, file_ids, d))
                    return;
                replayed.push_back(std::move(d));
            }
            auto rebuilt = makeChecker(checkers[c]->name(),
                                       options.checker_options);
            std::istringstream state(unit.state);
            if (!rebuilt->loadState(state))
                return;
            for (support::Diagnostic& d : replayed)
                unit_sinks[u].report(std::move(d));
            unit_checkers[u] = std::move(rebuilt);
            unit_hit[u] = 1;
        });
    }

    // Phase 1: build every function's CFG concurrently, one builder per
    // function. backEdges() is warmed here, while each Cfg still has a
    // single owner — its lazily-filled mutable cache is not synchronized,
    // so it must never be computed from two phase-2 units at once.
    // Functions whose every unit replayed from cache skip the build —
    // that skipped path enumeration is the warm-run speedup.
    std::vector<char> need_cfg(nfns, cache ? 0 : 1);
    if (cache)
        for (std::size_t u = 0; u < nunits; ++u)
            if (!unit_hit[u])
                need_cfg[u / ncheckers] = 1;
    Clock::time_point cfg_t0 = Clock::now();
    std::vector<cfg::Cfg> cfgs(nfns);
    std::vector<const cfg::Cfg*> cfg_ptrs(nfns, nullptr);
    std::atomic<std::uint64_t> cfg_reused{0};
    pool.parallelFor(nfns, [&](std::size_t f) {
        if (!need_cfg[f])
            return;
        if (CfgCache* resident = options.cfg_cache) {
            {
                std::lock_guard<std::mutex> lock(resident->mu);
                auto it = resident->cfgs.find(fns[f]);
                if (it != resident->cfgs.end()) {
                    cfg_ptrs[f] = &it->second;
                    cfg_reused.fetch_add(1, std::memory_order_relaxed);
                    return;
                }
            }
            // Build (and warm backEdges) outside the lock, publish under
            // it. std::map nodes are address-stable, so the pointer stays
            // good as other functions insert.
            cfg::Cfg built = cfg::CfgBuilder::build(*fns[f]);
            built.backEdges();
            std::lock_guard<std::mutex> lock(resident->mu);
            cfg_ptrs[f] =
                &resident->cfgs.emplace(fns[f], std::move(built))
                     .first->second;
            return;
        }
        cfgs[f] = cfg::CfgBuilder::build(*fns[f]);
        cfgs[f].backEdges();
        cfg_ptrs[f] = &cfgs[f];
    });
    if (metrics.enabled()) {
        metrics.timer("parallel.cfg_build")
            .add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - cfg_t0));
        if (options.cfg_cache)
            metrics.counter("parallel.cfg_reused")
                .add(cfg_reused.load(std::memory_order_relaxed));
    }

    // Phase 2: (function x checker) units, each against a private checker
    // instance and private sink, each under a UnitGuard. Unit
    // u = f * ncheckers + c — the merge below walks u in order to
    // reproduce the sequential visit order. A unit that throws is
    // discarded wholesale (fresh instance, no partial findings) and
    // replaced by one "analysis incomplete" warning, so a crash stays
    // contained to its unit and the merged bytes stay deterministic.
    // Cache misses run live and (in read-write mode) store their outcome:
    // the private sink's diagnostics plus the instance's serialized
    // state. Failed units are never stored; neither are budget-truncated
    // ones, since budget limits are not part of the content key and a
    // partial result must not masquerade as a full one.
    std::vector<Clock::duration> unit_elapsed(nunits,
                                              Clock::duration::zero());
    std::vector<char> unit_failed(nunits, 0);
    std::vector<support::LedgerUnitStats> unit_walk_stats(nunits);
    std::vector<support::BudgetStop> unit_stop(
        nunits, support::BudgetStop::None);
    pool.parallelFor(nunits, [&](std::size_t u) {
        if (unit_hit[u])
            return;
        std::size_t f = u / ncheckers;
        std::size_t c = u % ncheckers;
        const std::string label =
            fns[f]->name + "/" + checkers[c]->name();
        unit_checkers[u] =
            makeChecker(checkers[c]->name(), options.checker_options);
        support::DiagnosticSink scratch;
        CheckContext uctx{program, spec, scratch};
        support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                                checkers[c]->name(), "checker");
        if (tracer.enabled())
            span.arg("function", fns[f]->name);
        // Visit accumulator for the ledger: every walk this unit performs
        // publishes into it through the thread-local scope.
        support::LedgerUnitStats unit_stats;
        support::LedgerUnitScope stats_scope(&unit_stats);
        Clock::time_point t0 = Clock::now();
        UnitGuard guard(label, options.unit_budget, options.fail_fast);
        UnitOutcome outcome = guard.run([&] {
            // Keyed by the unit's identity: the same units fault no
            // matter how the pool schedules them across lanes.
            support::fault::probe("checker.unit", label);
            unit_checkers[u]->checkFunction(*fns[f], *cfg_ptrs[f], uctx);
        });
        unit_elapsed[u] = Clock::now() - t0;
        unit_walk_stats[u] = unit_stats;
        unit_stop[u] = outcome.budget_stop;
        if (outcome.failed) {
            unit_failed[u] = 1;
            unit_checkers[u] = makeChecker(checkers[c]->name(),
                                           options.checker_options);
            unit_sinks[u].warning(
                fns[f]->loc, "engine", "unit-failure",
                "analysis incomplete: " + checkers[c]->name() +
                    " failed on '" + fns[f]->name +
                    "': " + outcome.error);
            return;
        }
        for (const support::Diagnostic& d : scratch.diagnostics())
            unit_sinks[u].report(d);
        if (outcome.budget_stop != support::BudgetStop::None)
            unit_sinks[u].warning(
                fns[f]->loc, "engine", "budget-exhausted",
                "analysis truncated: " + checkers[c]->name() + " on '" +
                    fns[f]->name + "' exhausted its " +
                    support::budgetStopName(outcome.budget_stop) +
                    " budget");
        if (cache && !cache->readonly() && unit_keys[u] != 0 &&
            outcome.budget_stop == support::BudgetStop::None) {
            cache::CachedUnit unit;
            unit.checker = checkers[c]->name();
            unit.function = fns[f]->name;
            std::ostringstream state;
            unit_checkers[u]->saveState(state);
            unit.state = state.str();
            for (const support::Diagnostic& d :
                 unit_sinks[u].diagnostics())
                unit.diags.push_back(cache::AnalysisCache::toCached(
                    d, program.sourceManager()));
            cache->store(unit_keys[u], unit);
        }
    });

    // Sequential merge, in exactly the sequential runner's visit order:
    // per-checker state absorbs into the masters and each unit's findings
    // replay through the shared sink (which re-runs the global dedup the
    // private sinks could not see).
    support::RunLedger& ledger = support::RunLedger::global();
    std::set<std::int32_t> degraded_files;
    if (ledger.enabled())
        for (const lang::TranslationUnit& tu : program.units())
            if (!tu.issues.empty())
                degraded_files.insert(tu.file_id);
    std::vector<Clock::duration> elapsed(ncheckers,
                                         Clock::duration::zero());
    std::uint64_t failures = 0;
    std::uint64_t truncations = 0;
    std::uint64_t witness_truncations = 0;
    for (std::size_t u = 0; u < nunits; ++u) {
        std::size_t f = u / ncheckers;
        std::size_t c = u % ncheckers;
        checkers[c]->absorb(*unit_checkers[u]);
        elapsed[c] += unit_elapsed[u];
        for (const support::Diagnostic& d : unit_sinks[u].diagnostics()) {
            witness_truncations += d.witness.truncated ? 1 : 0;
            sink.report(d);
        }
        failures += unit_failed[u] ? 1 : 0;
        truncations +=
            unit_stop[u] != support::BudgetStop::None ? 1 : 0;
        if (ledger.enabled()) {
            support::LedgerUnitEvent event;
            event.function = fns[f]->name;
            event.checker = checkers[c]->name();
            event.wall_ms = std::chrono::duration<double, std::milli>(
                                unit_elapsed[u])
                                .count();
            event.visits = unit_walk_stats[u].visits;
            event.pruned_edges = unit_walk_stats[u].pruned_edges;
            event.prune_cache_hits = unit_walk_stats[u].prune_cache_hits;
            event.prune_skipped_nary =
                unit_walk_stats[u].prune_skipped_nary;
            event.cache = !cache ? "off" : unit_hit[u] ? "hit" : "miss";
            event.budget_stop = support::budgetStopName(unit_stop[u]);
            event.truncated = unit_stop[u] != support::BudgetStop::None;
            event.failed = unit_failed[u] != 0;
            event.degraded_parse =
                degraded_files.count(fns[f]->loc.file_id) != 0;
            ledger.unit(event);
        }
        if (metrics.enabled() && !unit_hit[u]) {
            metrics.histogram("unit.wall_ns")
                .observe(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        unit_elapsed[u])
                        .count()));
            metrics.histogram("unit.visits")
                .observe(unit_walk_stats[u].visits);
        }
    }
    if (options.health) {
        options.health->unit_failures += failures;
        options.health->budget_truncations += truncations;
    }
    if (metrics.enabled()) {
        metrics.counter("engine.unit_failures").add(failures);
        metrics.counter("budget.truncations").add(truncations);
        metrics.counter("witness.truncations").add(witness_truncations);
    }

    CheckContext ctx{program, spec, sink};
    for (std::size_t i = 0; i < ncheckers; ++i) {
        support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                                checkers[i]->name() + ".program",
                                "checker");
        Clock::time_point t0 = Clock::now();
        checkers[i]->checkProgram(ctx);
        elapsed[i] += Clock::now() - t0;
    }

    std::vector<CheckerRunStats> stats;
    for (std::size_t i = 0; i < ncheckers; ++i) {
        CheckerRunStats s;
        s.checker = checkers[i]->name();
        s.errors = sink.countForChecker(s.checker,
                                        support::Severity::Error) -
                   base_errors[i];
        s.warnings = sink.countForChecker(s.checker,
                                          support::Severity::Warning) -
                     base_warnings[i];
        s.applied = checkers[i]->applied();
        s.wall_ms =
            std::chrono::duration<double, std::milli>(elapsed[i]).count();
        if (metrics.enabled()) {
            metrics.timer("checker." + s.checker)
                .add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    elapsed[i]));
            metrics.counter("checker." + s.checker + ".errors")
                .add(static_cast<std::uint64_t>(s.errors));
            metrics.counter("checker." + s.checker + ".warnings")
                .add(static_cast<std::uint64_t>(s.warnings));
            metrics.counter("checker." + s.checker + ".applied")
                .add(static_cast<std::uint64_t>(s.applied));
        }
        stats.push_back(std::move(s));
    }
    return stats;
}

} // namespace mc::checkers
