#include "checkers/parallel.h"

#include "support/metrics.h"
#include "support/trace.h"

#include <chrono>

namespace mc::checkers {

std::vector<CheckerRunStats>
runCheckersParallel(const lang::Program& program,
                    const flash::ProtocolSpec& spec,
                    const std::vector<Checker*>& checkers,
                    support::DiagnosticSink& sink,
                    const ParallelRunOptions& options)
{
    // Any checker the factory cannot rebuild (a test double, say) makes
    // private instances impossible; one lane makes them pointless.
    unsigned jobs = options.pool           ? options.pool->jobs()
                    : options.jobs != 0   ? options.jobs
                                           : support::ThreadPool::defaultJobs();
    bool clonable = true;
    for (Checker* checker : checkers)
        if (!makeChecker(checker->name(), options.checker_options))
            clonable = false;
    if (jobs <= 1 || !clonable)
        return runCheckers(program, spec, checkers, sink);

    support::ThreadPool local_pool(options.pool ? 1 : jobs);
    support::ThreadPool& pool = options.pool ? *options.pool : local_pool;

    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    support::TraceRecorder& tracer = support::TraceRecorder::global();
    using Clock = std::chrono::steady_clock;

    const std::vector<const lang::FunctionDecl*>& fns = program.functions();
    const std::size_t nfns = fns.size();
    const std::size_t ncheckers = checkers.size();
    const std::size_t nunits = nfns * ncheckers;

    std::vector<int> base_errors;
    std::vector<int> base_warnings;
    for (Checker* checker : checkers) {
        checker->reset();
        base_errors.push_back(sink.countForChecker(
            checker->name(), support::Severity::Error));
        base_warnings.push_back(sink.countForChecker(
            checker->name(), support::Severity::Warning));
    }

    if (metrics.enabled()) {
        metrics.gauge("parallel.jobs").observe(jobs);
        metrics.counter("parallel.work_units").add(nunits);
    }

    // Phase 1: build every function's CFG concurrently, one builder per
    // function. backEdges() is warmed here, while each Cfg still has a
    // single owner — its lazily-filled mutable cache is not synchronized,
    // so it must never be computed from two phase-2 units at once.
    Clock::time_point cfg_t0 = Clock::now();
    std::vector<cfg::Cfg> cfgs(nfns);
    pool.parallelFor(nfns, [&](std::size_t f) {
        cfgs[f] = cfg::CfgBuilder::build(*fns[f]);
        cfgs[f].backEdges();
    });
    if (metrics.enabled())
        metrics.timer("parallel.cfg_build")
            .add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - cfg_t0));

    // Phase 2: (function x checker) units, each against a private checker
    // instance and private sink. Unit u = f * ncheckers + c — the merge
    // below walks u in order to reproduce the sequential visit order.
    std::vector<std::unique_ptr<Checker>> unit_checkers(nunits);
    std::vector<support::DiagnosticSink> unit_sinks(nunits);
    std::vector<Clock::duration> unit_elapsed(nunits,
                                              Clock::duration::zero());
    pool.parallelFor(nunits, [&](std::size_t u) {
        std::size_t f = u / ncheckers;
        std::size_t c = u % ncheckers;
        unit_checkers[u] =
            makeChecker(checkers[c]->name(), options.checker_options);
        CheckContext uctx{program, spec, unit_sinks[u]};
        support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                                checkers[c]->name(), "checker");
        if (tracer.enabled())
            span.arg("function", fns[f]->name);
        Clock::time_point t0 = Clock::now();
        unit_checkers[u]->checkFunction(*fns[f], cfgs[f], uctx);
        unit_elapsed[u] = Clock::now() - t0;
    });

    // Sequential merge, in exactly the sequential runner's visit order:
    // per-checker state absorbs into the masters and each unit's findings
    // replay through the shared sink (which re-runs the global dedup the
    // private sinks could not see).
    std::vector<Clock::duration> elapsed(ncheckers,
                                         Clock::duration::zero());
    for (std::size_t u = 0; u < nunits; ++u) {
        std::size_t c = u % ncheckers;
        checkers[c]->absorb(*unit_checkers[u]);
        elapsed[c] += unit_elapsed[u];
        for (const support::Diagnostic& d : unit_sinks[u].diagnostics())
            sink.report(d);
    }

    CheckContext ctx{program, spec, sink};
    for (std::size_t i = 0; i < ncheckers; ++i) {
        support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                                checkers[i]->name() + ".program",
                                "checker");
        Clock::time_point t0 = Clock::now();
        checkers[i]->checkProgram(ctx);
        elapsed[i] += Clock::now() - t0;
    }

    std::vector<CheckerRunStats> stats;
    for (std::size_t i = 0; i < ncheckers; ++i) {
        CheckerRunStats s;
        s.checker = checkers[i]->name();
        s.errors = sink.countForChecker(s.checker,
                                        support::Severity::Error) -
                   base_errors[i];
        s.warnings = sink.countForChecker(s.checker,
                                          support::Severity::Warning) -
                     base_warnings[i];
        s.applied = checkers[i]->applied();
        s.wall_ms =
            std::chrono::duration<double, std::milli>(elapsed[i]).count();
        if (metrics.enabled()) {
            metrics.timer("checker." + s.checker)
                .add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    elapsed[i]));
            metrics.counter("checker." + s.checker + ".errors")
                .add(static_cast<std::uint64_t>(s.errors));
            metrics.counter("checker." + s.checker + ".warnings")
                .add(static_cast<std::uint64_t>(s.warnings));
            metrics.counter("checker." + s.checker + ".applied")
                .add(static_cast<std::uint64_t>(s.applied));
        }
        stats.push_back(std::move(s));
    }
    return stats;
}

} // namespace mc::checkers
