#ifndef MCHECK_CHECKERS_UNIT_GUARD_H
#define MCHECK_CHECKERS_UNIT_GUARD_H

#include "support/budget.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

namespace mc::checkers {

/** What happened to one guarded (function, checker) work unit. */
struct UnitOutcome
{
    /** True when the unit threw and its results must be discarded. */
    bool failed = false;
    /** Failure description (exception what()) when failed. */
    std::string error;
    /**
     * Resource-budget limit that truncated the unit's analysis, or
     * None. Truncation is graceful — the unit "succeeded" with partial
     * coverage — so failed stays false.
     */
    support::BudgetStop budget_stop = support::BudgetStop::None;
    /** Budget steps the unit charged (walker visits, mostly). */
    std::uint64_t steps = 0;
    /** Unit wall time. */
    std::chrono::milliseconds elapsed{0};
};

/**
 * Fault containment for one (function, checker) work unit.
 *
 * `run` installs a per-unit resource Budget (thread-local, consulted by
 * PathWalker deep inside the checker) and executes the body under a
 * catch-everything barrier: any exception — a checker bug, an injected
 * fault, bad_alloc — is captured into the outcome instead of escaping
 * to the thread pool, so one crashing unit cannot take down the run or
 * perturb the deterministic merge. In rethrow mode (--fail-fast) the
 * exception is recorded and then propagated, aborting the run.
 *
 * The guard is deliberately containment-only: it does not log, count
 * metrics, or emit diagnostics. The caller decides how a failure
 * surfaces (engine.unit_failures metric + "analysis incomplete"
 * diagnostic in the parallel runner).
 */
class UnitGuard
{
  public:
    /**
     * @param label Unit identity ("function/checker"), used in error
     *   messages.
     * @param limits Per-unit resource budget (default: unlimited).
     * @param rethrow Propagate the failure after recording it
     *   (--fail-fast).
     */
    explicit UnitGuard(std::string label,
                       support::BudgetLimits limits = {},
                       bool rethrow = false)
        : label_(std::move(label)), limits_(limits), rethrow_(rethrow)
    {
    }

    /** Execute `body` contained; never throws unless rethrow is set. */
    UnitOutcome run(const std::function<void()>& body) const;

  private:
    std::string label_;
    support::BudgetLimits limits_;
    bool rethrow_ = false;
};

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_UNIT_GUARD_H
