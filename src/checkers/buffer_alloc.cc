#include "checkers/buffer_alloc.h"

#include "flash/macros.h"
#include "metal/path_walker.h"

namespace mc::checkers {

using namespace mc::lang;
using flash::MacroKind;

namespace {

/** Walker state: the outstanding unchecked allocation variable, if any. */
struct AllocState
{
    std::string var;   // empty = nothing outstanding
    bool checked = true;

    std::string
    key() const
    {
        return var + (checked ? "#1" : "#0");
    }

    bool dead() const { return false; }
};

/** Name of the variable an `x = ALLOCATE_DB()` form assigns, or "". */
std::string
allocTarget(const Stmt& stmt)
{
    if (stmt.skind == StmtKind::Expr) {
        const Expr* e = static_cast<const ExprStmt&>(stmt).expr;
        if (e->ekind == ExprKind::Binary) {
            const auto& bin = static_cast<const BinaryExpr&>(*e);
            if (bin.op == BinaryOp::Assign &&
                bin.lhs->ekind == ExprKind::Ident &&
                flash::classifyCall(*bin.rhs) == MacroKind::AllocDb)
                return static_cast<const IdentExpr*>(bin.lhs)->name;
        }
    } else if (stmt.skind == StmtKind::Decl) {
        for (const VarDecl* v : static_cast<const DeclStmt&>(stmt).decls)
            if (v->init &&
                flash::classifyCall(*v->init) == MacroKind::AllocDb)
                return v->name;
    }
    return "";
}

/** True if `expr` mentions identifier `var` anywhere. */
bool
mentionsVar(const Expr& expr, const std::string& var)
{
    bool found = false;
    forEachSubExpr(expr, [&](const Expr& e) {
        if (e.ekind == ExprKind::Ident &&
            static_cast<const IdentExpr&>(e).name == var)
            found = true;
    });
    return found;
}

} // namespace

void
BufferAllocChecker::checkFunction(const FunctionDecl& fn,
                                  const cfg::Cfg& cfg, CheckContext& ctx)
{
    (void)fn;

    // Count allocation sites (Table 6's "Applied").
    for (const cfg::BasicBlock& bb : cfg.blocks()) {
        for (const Stmt* stmt : bb.stmts) {
            forEachTopLevelExpr(*stmt, [&](const Expr& top) {
                forEachSubExpr(top, [&](const Expr& e) {
                    if (flash::classifyCall(e) == MacroKind::AllocDb)
                        ++applied_;
                });
            });
        }
    }

    mc::metal::PathWalker<AllocState>::Hooks hooks;
    hooks.on_stmt = [&](AllocState& st, const Stmt& stmt) {
        std::string target = allocTarget(stmt);
        if (!target.empty()) {
            st.var = target;
            st.checked = false;
            return;
        }
        if (st.checked)
            return;

        // A branch condition mentioning the variable IS the failure
        // check; both edges count as checked (the walker's on_branch
        // hook fires after the whole block, so handle it here where the
        // branch statement is seen in order).
        switch (stmt.skind) {
          case StmtKind::If:
          case StmtKind::While:
          case StmtKind::DoWhile:
          case StmtKind::Switch:
          case StmtKind::For: {
            bool in_cond = false;
            forEachTopLevelExpr(stmt, [&](const Expr& e) {
                if (mentionsVar(e, st.var))
                    in_cond = true;
            });
            if (in_cond) {
                st.checked = true;
                return;
            }
            break;
          }
          default:
            break;
        }

        // Any use of the unchecked variable — including passing it to a
        // debug print — or any write into / send of the buffer is an
        // unchecked use.
        bool used = false;
        forEachTopLevelExpr(stmt, [&](const Expr& top) {
            if (mentionsVar(top, st.var))
                used = true;
            forEachSubExpr(top, [&](const Expr& e) {
                MacroKind kind = flash::classifyCall(e);
                if (kind == MacroKind::WriteDb || flash::isSend(kind))
                    used = true;
            });
        });
        if (used) {
            ctx.sink.error(stmt.loc, name(), "unchecked-alloc",
                           "buffer '" + st.var +
                               "' used before checking ALLOCATE_DB() "
                               "for failure");
            st.checked = true; // avoid cascading reports down this path
        }
    };
    hooks.on_branch = [](AllocState& st, const Expr& cond, std::size_t) {
        if (!st.checked && mentionsVar(cond, st.var))
            st.checked = true;
    };

    mc::metal::PathWalker<AllocState>::WalkOptions wopts;
    wopts.prune_strategy = prune_strategy_;
    mc::metal::PathWalker<AllocState> walker(std::move(hooks), wopts);
    walker.walk(cfg, AllocState{});
}

} // namespace mc::checkers
