#include "checkers/no_float.h"

namespace mc::checkers {

using namespace mc::lang;

void
NoFloatChecker::checkFunction(const FunctionDecl& fn, const cfg::Cfg& cfg,
                              CheckContext& ctx)
{
    (void)cfg;
    const TypeTable& types = ctx.program.ctx().types();

    auto check_expr = [&](const Expr& e) {
        ++applied_;
        bool floating = e.ekind == ExprKind::FloatLit ||
                        types.isFloating(e.type);
        if (floating) {
            ctx.sink.error(e.loc, name(), "float-op",
                           "floating point operation in protocol code: " +
                               exprToString(e));
        }
    };

    if (types.isFloating(fn.return_type))
        ctx.sink.error(fn.loc, name(), "float-return",
                       "handler returns a floating point value");
    for (const ParamDecl* p : fn.params)
        if (types.isFloating(p->type))
            ctx.sink.error(p->loc, name(), "float-param",
                           "floating point parameter '" + p->name + "'");

    forEachStmt(*fn.body, [&](const Stmt& stmt) {
        if (stmt.skind == StmtKind::Decl) {
            for (const VarDecl* v :
                 static_cast<const DeclStmt&>(stmt).decls) {
                if (types.isFloating(v->type))
                    ctx.sink.error(v->loc, name(), "float-var",
                                   "floating point variable '" + v->name +
                                       "'");
            }
        }
        forEachTopLevelExpr(stmt, [&](const Expr& top) {
            forEachSubExpr(top, check_expr);
        });
    });
}

} // namespace mc::checkers
