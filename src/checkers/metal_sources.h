#ifndef MCHECK_CHECKERS_METAL_SOURCES_H
#define MCHECK_CHECKERS_METAL_SOURCES_H

namespace mc::checkers {

/**
 * The textual metal checkers shipped with the library (Figures 2 and 3 of
 * the paper), embedded at build time from src/checkers/metal/\*.metal so
 * binaries need no runtime file lookup.
 */
extern const char* const kWaitForDbMetal;
extern const char* const kMsgLenCheckMetal;

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_METAL_SOURCES_H
