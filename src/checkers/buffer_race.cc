#include "checkers/buffer_race.h"

#include "checkers/metal_sources.h"
#include "flash/macros.h"
#include "metal/engine.h"

namespace mc::checkers {

BufferRaceChecker::BufferRaceChecker(metal::PruneStrategy prune_strategy)
    : program_(
          mc::metal::parseMetal(kWaitForDbMetal, "wait_for_db.metal")),
      prune_strategy_(prune_strategy)
{}

const char*
BufferRaceChecker::metalSource()
{
    return kWaitForDbMetal;
}

void
BufferRaceChecker::checkFunction(const lang::FunctionDecl& fn,
                                 const cfg::Cfg& cfg, CheckContext& ctx)
{
    (void)fn;
    mc::metal::SmRunOptions options;
    options.prune_strategy = prune_strategy_;
    mc::metal::runStateMachine(*program_.sm, cfg, ctx.sink, options);

    // "Applied" = data-buffer reads encountered (Table 2).
    for (const cfg::BasicBlock& bb : cfg.blocks()) {
        for (const lang::Stmt* stmt : bb.stmts) {
            lang::forEachTopLevelExpr(*stmt, [&](const lang::Expr& top) {
                lang::forEachSubExpr(top, [&](const lang::Expr& e) {
                    flash::MacroKind kind = flash::classifyCall(e);
                    if (kind == flash::MacroKind::ReadDb ||
                        kind == flash::MacroKind::ReadDbDeprecated)
                        ++applied_;
                });
            });
        }
    }
}

} // namespace mc::checkers
