#ifndef MCHECK_CHECKERS_LANES_H
#define MCHECK_CHECKERS_LANES_H

#include "checkers/checker.h"
#include "global/flowgraph.h"

namespace mc::checkers {

/**
 * Network-lane deadlock-avoidance checker (paper Section 7) — the
 * inter-procedural one.
 *
 * FLASH only runs a handler when its statically-declared per-lane send
 * allowance is available; sending beyond the allowance without an
 * explicit WAIT_FOR_SPACE() can deadlock the machine.
 *
 * Two passes, exactly as in the paper: the local pass (checkFunction)
 * walks each function and emits a flow-graph summary annotating every
 * NI_SEND with its lane (from the protocol spec's opcode table) and every
 * WAIT_FOR_SPACE with the lane it drains; the global pass (checkProgram)
 * links the summaries into a call graph and, for every handler, computes
 * the maximum sends per lane any inter-procedural path can perform,
 * using the fixed-point rule for cycles. Sends exceeding the allowance
 * are reported with a full inter-procedural back-trace.
 */
class LanesChecker : public Checker
{
  public:
    struct Options
    {
        /**
         * Serialize every local-pass summary to the textual flow-graph
         * format and parse it back before the global pass — exactly the
         * paper's emit-to-file / read-back pipeline. Off by default
         * (results are identical; tests assert it).
         */
        bool roundtrip_through_text = false;
    };

    LanesChecker() = default;
    explicit LanesChecker(Options options) : options_(options) {}

    std::string name() const override { return "lanes"; }

    void checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                       CheckContext& ctx) override;

    void checkProgram(CheckContext& ctx) override;

    void
    reset() override
    {
        Checker::reset();
        summaries_.clear();
    }

    /** Steal `other`'s emitted summaries, preserving append order. */
    void
    absorb(Checker& other) override
    {
        Checker::absorb(other);
        if (auto* o = dynamic_cast<LanesChecker*>(&other)) {
            summaries_.insert(
                summaries_.end(),
                std::make_move_iterator(o->summaries_.begin()),
                std::make_move_iterator(o->summaries_.end()));
            o->summaries_.clear();
        }
    }

    /**
     * Cache serialization: base state plus the emitted summaries in the
     * textual flow-graph format (the paper's emit-to-file pipeline doing
     * double duty as the cache encoding).
     */
    void saveState(std::ostream& os) const override;
    bool loadState(std::istream& is) override;

    /** The local pass's emitted summaries (exposed for tests/benches). */
    const std::vector<global::FunctionSummary>& summaries() const
    {
        return summaries_;
    }

  private:
    Options options_;
    std::vector<global::FunctionSummary> summaries_;
};

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_LANES_H
