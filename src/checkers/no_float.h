#ifndef MCHECK_CHECKERS_NO_FLOAT_H
#define MCHECK_CHECKERS_NO_FLOAT_H

#include "checkers/checker.h"

namespace mc::checkers {

/**
 * No-floating-point checker (paper Section 8).
 *
 * FLASH protocol code runs on MAGIC's embedded protocol processor, which
 * has no floating point unit: the checker "registers a function invoked on
 * every tree node and checks that no tree node has a floating point type".
 * We flag floating literals, floating-typed declarations, and expressions
 * Sema typed as floating.
 *
 * `applied()` counts expression nodes examined.
 */
class NoFloatChecker : public Checker
{
  public:
    std::string name() const override { return "no_float"; }

    void checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                       CheckContext& ctx) override;
};

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_NO_FLOAT_H
