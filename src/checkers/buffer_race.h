#ifndef MCHECK_CHECKERS_BUFFER_RACE_H
#define MCHECK_CHECKERS_BUFFER_RACE_H

#include "checkers/checker.h"
#include "metal/feasibility.h"
#include "metal/metal_parser.h"

namespace mc::checkers {

/**
 * Buffer fill race-condition checker (paper Section 4, Figure 2).
 *
 * Runs the shipped `wait_for_db` metal state machine down every path of
 * every function: a MISCBUS_READ_DB (or the deprecated old-style read)
 * that is not preceded by WAIT_FOR_DB_FULL on some path is an error.
 *
 * `applied()` counts data-buffer read sites, matching Table 2's "Applied"
 * column ("the number of reads performed").
 */
class BufferRaceChecker : public Checker
{
  public:
    explicit BufferRaceChecker(
        metal::PruneStrategy prune_strategy = metal::PruneStrategy::Off);

    std::string name() const override { return "wait_for_db"; }

    void checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                       CheckContext& ctx) override;

    /** The metal source this checker executes. */
    static const char* metalSource();

  private:
    mc::metal::MetalProgram program_;
    metal::PruneStrategy prune_strategy_ = metal::PruneStrategy::Off;
};

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_BUFFER_RACE_H
