#ifndef MCHECK_CHECKERS_PARALLEL_H
#define MCHECK_CHECKERS_PARALLEL_H

#include "cache/analysis_cache.h"
#include "checkers/checker.h"
#include "checkers/registry.h"
#include "support/budget.h"
#include "support/thread_pool.h"

#include <map>
#include <mutex>

namespace mc::checkers {

/**
 * Resident CFG store for long-lived callers (the checking daemon).
 *
 * Keyed by function *declaration pointer*: the AST arena is append-only,
 * so a declaration that survives an incremental re-parse keeps its
 * address (and its CFG here stays valid — CFGs hold pointers into the
 * same arena), while a re-parsed file's functions get fresh declarations
 * and therefore fresh entries. Stale entries for replaced declarations
 * are never looked up again; they are reclaimed when the owner drops the
 * whole cache (the daemon does so whenever it rebuilds a program).
 *
 * Entries are inserted with their backEdges() cache pre-warmed while the
 * CFG still has a single owner, so concurrent phase-2 units only ever
 * *read* a resident CFG.
 */
struct CfgCache
{
    mutable std::mutex mu;
    std::map<const lang::FunctionDecl*, cfg::Cfg> cfgs;

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return cfgs.size();
    }
};

/**
 * Containment tally for one run: how many work units failed under their
 * UnitGuard and how many were truncated by their resource budget. The
 * driver maps a non-zero unit_failures (or frontend issues) to the
 * "degraded" exit code.
 */
struct RunHealth
{
    std::uint64_t unit_failures = 0;
    std::uint64_t budget_truncations = 0;

    bool degraded() const { return unit_failures > 0; }
};

/** Knobs for runCheckersParallel. */
struct ParallelRunOptions
{
    /** Worker lanes; 0 means one per hardware thread. */
    unsigned jobs = 0;
    /**
     * Factory options for the per-unit checker instances. Must match the
     * options the master `checkers` were built with, or the private
     * instances check different things than the masters claim.
     */
    CheckerSetOptions checker_options;
    /**
     * Reuse an existing pool (its lane count wins over `jobs`). The run
     * must not itself be executing on one of the pool's workers — the
     * pool forbids nested parallelFor.
     */
    support::ThreadPool* pool = nullptr;
    /**
     * Persistent analysis cache. When set, each (function, checker) work
     * unit is first looked up by content key — engine version, checker
     * identity/options/metal source, protocol-spec fingerprint, function
     * token-stream fingerprint — and on a hit its stored diagnostics and
     * checker state replay through the normal merge path instead of
     * re-walking paths; CFGs are only built for functions with at least
     * one miss. Output stays byte-identical to an uncached run for any
     * job count. Cache use implies the unit machinery even at jobs == 1
     * (the pool spawns no threads there). Checkers the factory cannot
     * rebuild still force the sequential, uncached fallback.
     */
    cache::AnalysisCache* cache = nullptr;
    /**
     * Per-unit resource budget (wall-clock deadline, step and byte
     * allowances) installed around each (function, checker) unit and
     * consulted by the path walker. Exhaustion truncates that unit's
     * analysis gracefully — partial findings survive, a
     * "budget-exhausted" warning marks the gap — and the unit is not
     * stored in the cache (budgets are not part of cache keys).
     * Default-constructed means unlimited.
     */
    support::BudgetLimits unit_budget;
    /**
     * Abort the whole run on the first unit failure (the exception
     * propagates out of runCheckersParallel) instead of containing it.
     */
    bool fail_fast = false;
    /** Optional out-param receiving the run's containment tally. */
    RunHealth* health = nullptr;
    /**
     * Resident CFG store shared across runs over the same Program. When
     * set, phase 1 consults it before building and publishes what it
     * builds; reuses tally into the "parallel.cfg_reused" counter. The
     * cache must only ever be paired with the Program whose declarations
     * key it.
     */
    CfgCache* cfg_cache = nullptr;
};

/**
 * Content key for one (function, checker) work unit: engine version,
 * checker identity + options + metal source, witness configuration,
 * protocol-spec fingerprint, function token-stream fingerprint. Two
 * runs may share a cache entry only when every ingredient matches.
 * Exposed so the shard coordinator keys its phase-0 lookups exactly
 * as the in-process runner does — byte-identical warm runs depend on
 * both computing the same key from the same inputs.
 */
std::uint64_t unitCacheKey(const std::string& checker_name,
                           const CheckerSetOptions& options,
                           std::uint64_t spec_fp, std::uint64_t fn_fp);

/**
 * Parallel drop-in for runCheckers: same inputs, same outputs, same
 * bytes in the sink — only the wall clock differs.
 *
 * The function passes fan out as (function x checker) work units, each
 * with a private checker instance (built by makeChecker from the
 * master's name) and a private DiagnosticSink. Units are merged back
 * sequentially in (function-major, checker-minor) order — exactly the
 * order the sequential runner visits them — so the shared sink sees the
 * identical diagnostic sequence, dedup decisions and all, for any job
 * count. Master instances absorb the units' per-run state in the same
 * order, then run the program-level passes sequentially, so
 * inter-procedural checkers (lanes) see exactly the sequential state.
 *
 * Checkers whose names the registry factory does not know force a
 * sequential fallback (their instances cannot be cloned); the result is
 * still correct, just not parallel — and not fault-contained.
 *
 * Fault containment: every unit body runs under a UnitGuard. A unit
 * that throws (checker bug, injected fault, bad_alloc) is discarded —
 * fresh instance absorbed, no partial findings — and replaced by a
 * single "analysis incomplete" warning diagnostic (checker "engine",
 * rule "unit-failure") that flows through the normal sorted merge, so a
 * degraded run is still byte-identical for any job count. Failures
 * tally into the engine.unit_failures metric and options.health. With
 * jobs == 1 the unit machinery (and the guard) is used all the same, so
 * sequential and parallel runs degrade identically.
 */
std::vector<CheckerRunStats>
runCheckersParallel(const lang::Program& program,
                    const flash::ProtocolSpec& spec,
                    const std::vector<Checker*>& checkers,
                    support::DiagnosticSink& sink,
                    const ParallelRunOptions& options = ParallelRunOptions());

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_PARALLEL_H
