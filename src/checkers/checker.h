#ifndef MCHECK_CHECKERS_CHECKER_H
#define MCHECK_CHECKERS_CHECKER_H

#include "cfg/cfg.h"
#include "flash/protocol_spec.h"
#include "lang/program.h"
#include "support/diagnostics.h"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace mc::checkers {

/** Everything a checker may consult during a run. */
struct CheckContext
{
    const lang::Program& program;
    const flash::ProtocolSpec& spec;
    support::DiagnosticSink& sink;
};

/**
 * Base class for the paper's checkers.
 *
 * The runner calls checkFunction once per function definition (with the
 * CFG prebuilt and shared between checkers) and checkProgram once at the
 * end — the inter-procedural checkers do their global pass there.
 *
 * `applied()` is the checker's own count of how many times its core check
 * fired (the "Applied" columns of Tables 2, 3, and 6).
 */
class Checker
{
  public:
    virtual ~Checker() = default;

    /** Stable name; matches the Table 7 row. */
    virtual std::string name() const = 0;

    virtual void
    checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                  CheckContext& ctx)
    {
        (void)fn;
        (void)cfg;
        (void)ctx;
    }

    virtual void
    checkProgram(CheckContext& ctx)
    {
        (void)ctx;
    }

    /** Times the core check was applied (site count, not per path). */
    int applied() const { return applied_; }

    /** Reset per-run statistics (the runner calls this before a run). */
    virtual void reset() { applied_ = 0; }

    /**
     * Merge the per-run state another instance of the *same* checker
     * accumulated during its function passes into this one. The parallel
     * runner gives every (function, checker) work unit a private
     * instance, then absorbs them back — in program function order — into
     * one instance before the program-level pass, so inter-procedural
     * state (e.g. the lanes checker's summaries) ends up exactly as a
     * sequential run would have left it. `other` is dead afterwards;
     * overrides may steal from it.
     */
    virtual void absorb(Checker& other) { applied_ += other.applied_; }

    /**
     * Serialize the per-run state the function passes accumulated — the
     * exact state `absorb` would merge. The analysis cache stores this
     * blob per (function, checker) work unit and replays it through
     * `loadState` + `absorb` on a hit, so a warm run leaves every master
     * checker bit-identical to a cold one. Overrides must call the base
     * first and append their own fields in a self-delimiting form.
     */
    virtual void saveState(std::ostream& os) const;

    /**
     * Inverse of saveState. Returns false (leaving the checker unusable
     * for replay) on malformed input; the cache then treats the entry as
     * corrupt and falls back to cold analysis.
     */
    virtual bool loadState(std::istream& is);

  protected:
    int applied_ = 0;
};

/** Per-checker summary of one run. */
struct CheckerRunStats
{
    std::string checker;
    int errors = 0;
    int warnings = 0;
    int applied = 0;
    /** Wall time this checker spent (function passes + program pass). */
    double wall_ms = 0.0;
};

/**
 * Run `checkers` over every function of `program`: build each function's
 * CFG once, invoke every checker on it, then run the program-level passes.
 * Returns per-checker statistics; diagnostics accumulate in `sink`.
 */
std::vector<CheckerRunStats>
runCheckers(const lang::Program& program, const flash::ProtocolSpec& spec,
            const std::vector<Checker*>& checkers,
            support::DiagnosticSink& sink);

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_CHECKER_H
