#ifndef MCHECK_CHECKERS_SEND_WAIT_H
#define MCHECK_CHECKERS_SEND_WAIT_H

#include "checkers/checker.h"
#include "metal/feasibility.h"

namespace mc::checkers {

/**
 * Send-wait pairing checker (paper Section 9, "Send-wait errors").
 *
 * A send issued with the F_WAIT flag announces that the handler will wait
 * for the interface's reply. The checker enforces, on every path:
 *  (1) the matching WAIT_FOR_{PI,IO}_REPLY() eventually executes;
 *  (2) the wait targets the interface that was sent to;
 *  (3) no other send is issued while a wait is pending.
 *
 * Violations deadlock the machine. The paper found 8 places where code
 * broke the abstraction barrier and waited without the interface macros —
 * those show up here as missing-wait reports (false positives).
 */
class SendWaitChecker : public Checker
{
  public:
    explicit SendWaitChecker(
        metal::PruneStrategy prune_strategy = metal::PruneStrategy::Off)
        : prune_strategy_(prune_strategy)
    {}

    std::string name() const override { return "send_wait"; }

    void checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                       CheckContext& ctx) override;

  private:
    metal::PruneStrategy prune_strategy_ = metal::PruneStrategy::Off;
};

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_SEND_WAIT_H
