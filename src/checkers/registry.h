#ifndef MCHECK_CHECKERS_REGISTRY_H
#define MCHECK_CHECKERS_REGISTRY_H

#include "checkers/checker.h"
#include "metal/feasibility.h"

#include <memory>
#include <string>
#include <vector>

namespace mc::checkers {

/** An owned set of checkers plus the raw-pointer view runCheckers takes. */
struct CheckerSet
{
    std::vector<std::unique_ptr<Checker>> owned;

    std::vector<Checker*>
    pointers() const
    {
        std::vector<Checker*> out;
        for (const auto& c : owned)
            out.push_back(c.get());
        return out;
    }

    Checker* byName(const std::string& name) const;
};

/** Options applied when building the full checker set. */
struct CheckerSetOptions
{
    /** Section 6.1 value-sensitive frees refinement (ablation toggle). */
    bool value_sensitive_frees = true;
    /**
     * Path-feasibility pruning strategy (`--prune-paths`), applied
     * uniformly to every path-sensitive checker — the extension the
     * paper declined to build. Off matches the paper. (This replaces
     * the old `prune_impossible_paths` flag, which only the
     * message-length checker honored.)
     */
    metal::PruneStrategy prune_strategy = metal::PruneStrategy::Off;
};

/**
 * Instantiate all nine checkers of the paper's Table 7:
 * buffer_mgmt, msglen_check, lanes, wait_for_db, alloc_check,
 * dir_check, send_wait, exec_restrict, no_float.
 */
CheckerSet makeAllCheckers(
    const CheckerSetOptions& options = CheckerSetOptions());

/**
 * Instantiate one checker by its stable name (a Table 7 row). Returns
 * nullptr for unknown names. The parallel runner uses this as its
 * per-worker factory: checkers carry mutable per-run state (applied
 * counts, lanes summaries), so each (function, checker) work unit gets a
 * fresh instance built with the same options.
 */
std::unique_ptr<Checker> makeChecker(
    const std::string& name,
    const CheckerSetOptions& options = CheckerSetOptions());

/** The nine checker names in Table 7 (= makeAllCheckers) order. */
const std::vector<std::string>& allCheckerNames();

/** Static per-checker metadata for the Table 7 reproduction. */
struct CheckerMeta
{
    /** Our checker name (Checker::name()). */
    std::string name;
    /** Row label used in the paper's Table 7. */
    std::string paper_label;
    /** Checker size reported in Table 7 (lines of metal). */
    int paper_loc;
    /** Errors reported in Table 7. */
    int paper_errors;
    /** False positives reported in Table 7. */
    int paper_false_pos;
};

/** Table 7 rows, in the paper's order. */
const std::vector<CheckerMeta>& table7Meta();

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_REGISTRY_H
