#ifndef MCHECK_CHECKERS_EXEC_RESTRICT_H
#define MCHECK_CHECKERS_EXEC_RESTRICT_H

#include "checkers/checker.h"

#include <istream>
#include <ostream>

namespace mc::checkers {

/**
 * Handler execution-restriction checker (paper Section 8).
 *
 * Enforces the FLASH environment's restrictions on handler code:
 *  - handlers take no parameters and return no results;
 *  - deprecated macros are flagged;
 *  - no-stack handlers must not take the address of locals, must not
 *    declare "too many" locals, and must not declare arrays or structures
 *    larger than 64 bits (anything bigger cannot live in registers);
 *  - exactly one NO_STACK() annotation at the beginning of a no-stack
 *    handler; every call from one must be immediately preceded by
 *    SET_STACKPTR(), and every SET_STACKPTR() must be followed by a call;
 *  - simulation hooks: a hardware handler's first two statements must be
 *    HANDLER_DEFS(); HANDLER_PROLOGUE(); (software handlers use the
 *    SWHANDLER_* forms), and every normal routine must begin with
 *    PROC_HOOK(). Omitted hooks silently corrupt simulation results,
 *    which is why Table 5's violations are all hook omissions.
 *
 * Table 5 reports violations plus the number of handlers and variables
 * checked; the latter two are exposed via handlersChecked()/varsChecked().
 */
class ExecRestrictChecker : public Checker
{
  public:
    /** Locals allowed in a no-stack handler before it trips the rule. */
    static constexpr int kMaxNoStackLocals = 16;

    std::string name() const override { return "exec_restrict"; }

    void checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                       CheckContext& ctx) override;

    void
    reset() override
    {
        Checker::reset();
        handlers_checked_ = 0;
        vars_checked_ = 0;
    }

    void
    absorb(Checker& other) override
    {
        Checker::absorb(other);
        if (auto* o = dynamic_cast<ExecRestrictChecker*>(&other)) {
            handlers_checked_ += o->handlers_checked_;
            vars_checked_ += o->vars_checked_;
        }
    }

    void
    saveState(std::ostream& os) const override
    {
        Checker::saveState(os);
        os << "restrict " << handlers_checked_ << ' ' << vars_checked_
           << '\n';
    }

    bool
    loadState(std::istream& is) override
    {
        if (!Checker::loadState(is))
            return false;
        std::string tag;
        int handlers = 0;
        int vars = 0;
        if (!(is >> tag >> handlers >> vars) || tag != "restrict" ||
            handlers < 0 || vars < 0)
            return false;
        handlers_checked_ = handlers;
        vars_checked_ = vars;
        return true;
    }

    int handlersChecked() const { return handlers_checked_; }
    int varsChecked() const { return vars_checked_; }

  private:
    void checkSignature(const lang::FunctionDecl& fn, CheckContext& ctx);
    void checkHooks(const lang::FunctionDecl& fn, CheckContext& ctx);
    void checkNoStack(const lang::FunctionDecl& fn, CheckContext& ctx);
    void checkDeprecated(const lang::FunctionDecl& fn, CheckContext& ctx);

    int handlers_checked_ = 0;
    int vars_checked_ = 0;
};

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_EXEC_RESTRICT_H
