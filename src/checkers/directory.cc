#include "checkers/directory.h"

#include "flash/macros.h"
#include "metal/path_walker.h"
#include "support/text.h"

namespace mc::checkers {

using namespace mc::lang;
using flash::MacroKind;

namespace {

enum class DirState : std::uint8_t { NotLoaded, Loaded, Modified };

struct DirWalkState
{
    DirState dir = DirState::NotLoaded;
    bool nak_sent = false;
    support::SourceLoc last_modify;

    std::string
    key() const
    {
        char buf[3] = {static_cast<char>('0' + static_cast<int>(dir)),
                       nak_sent ? '1' : '0', 0};
        return buf;
    }

    bool dead() const { return false; }
};

} // namespace

void
DirectoryChecker::checkFunction(const FunctionDecl& fn, const cfg::Cfg& cfg,
                                CheckContext& ctx)
{
    // A function containing the expects_dir_writeback() annotation
    // intentionally leaves the modified entry to its caller.
    bool exempt = false;
    forEachStmt(*fn.body, [&](const Stmt& stmt) {
        forEachTopLevelExpr(stmt, [&](const Expr& top) {
            forEachSubExpr(top, [&](const Expr& e) {
                if (flash::classifyCall(e) ==
                    MacroKind::AnnotExpectsDirWriteback)
                    exempt = true;
            });
        });
    });

    mc::metal::PathWalker<DirWalkState>::Hooks hooks;
    hooks.on_stmt = [&](DirWalkState& st, const Stmt& stmt) {
        forEachTopLevelExpr(stmt, [&](const Expr& top) {
            forEachSubExpr(top, [&](const Expr& e) {
                const CallExpr* call = asCall(e);
                if (!call)
                    return;
                std::string callee(call->calleeName());
                MacroKind kind = flash::classifyMacro(callee);
                switch (kind) {
                  case MacroKind::DirLoad:
                    ++applied_;
                    st.dir = DirState::Loaded;
                    return;
                  case MacroKind::DirRead:
                    ++applied_;
                    if (st.dir == DirState::NotLoaded)
                        ctx.sink.error(e.loc, name(), "use-before-load",
                                       "directory entry read before "
                                       "DIR_LOAD()");
                    return;
                  case MacroKind::DirWrite:
                    ++applied_;
                    if (st.dir == DirState::NotLoaded) {
                        ctx.sink.error(e.loc, name(), "use-before-load",
                                       "directory entry modified before "
                                       "DIR_LOAD()");
                        return;
                    }
                    st.dir = DirState::Modified;
                    st.last_modify = e.loc;
                    return;
                  case MacroKind::DirWriteback:
                    ++applied_;
                    if (st.dir == DirState::NotLoaded) {
                        ctx.sink.warning(e.loc, name(),
                                         "writeback-without-load",
                                         "DIR_WRITEBACK() with no loaded "
                                         "entry");
                        return;
                    }
                    st.dir = DirState::Loaded;
                    return;
                  case MacroKind::SendNi: {
                    auto opcode = flash::niSendOpcode(*call);
                    if (opcode &&
                        support::startsWith(*opcode, flash::kNakPrefix))
                        st.nak_sent = true;
                    return;
                  }
                  default:
                    break;
                }
                // Calls into subroutines that modify the entry on the
                // caller's behalf.
                if (ctx.spec.dir_deferred_routines.count(callee)) {
                    if (st.dir == DirState::NotLoaded) {
                        ctx.sink.error(e.loc, name(), "use-before-load",
                                       "subroutine modifies directory "
                                       "entry before DIR_LOAD()");
                        return;
                    }
                    st.dir = DirState::Modified;
                    st.last_modify = e.loc;
                }
            });
        });
    };
    hooks.on_exit = [&](DirWalkState& st) {
        if (exempt)
            return;
        if (st.dir == DirState::Modified && !st.nak_sent) {
            ctx.sink.error(st.last_modify, name(), "missing-writeback",
                           "modified directory entry is not written back "
                           "on some path");
        }
    };

    mc::metal::PathWalker<DirWalkState>::WalkOptions wopts;
    wopts.prune_strategy = prune_strategy_;
    mc::metal::PathWalker<DirWalkState> walker(std::move(hooks), wopts);
    walker.walk(cfg, DirWalkState{});
}

} // namespace mc::checkers
