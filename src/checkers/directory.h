#ifndef MCHECK_CHECKERS_DIRECTORY_H
#define MCHECK_CHECKERS_DIRECTORY_H

#include "checkers/checker.h"
#include "metal/feasibility.h"

namespace mc::checkers {

/**
 * Directory-entry management checker (paper Section 9, "Manual directory
 * entry updates").
 *
 * Directory state must be explicitly loaded (DIR_LOAD), modified in
 * memory (DIR_WRITE), and explicitly written back (DIR_WRITEBACK); the
 * compiler does none of this transparently. The checker enforces:
 *  (1) an entry is loaded before it is read or written;
 *  (2) a modified entry is written back before the handler exits.
 *
 * Rule (2) is suppressed on paths that send a NAK reply (speculative
 * handlers intentionally drop their modifications when they bail out,
 * signalled by a MSG_NAK* send — the paper's main false-positive
 * eliminator for this check). Subroutines listed in the protocol spec's
 * dir_deferred_routines table mark the entry modified in their callers;
 * a subroutine containing the expects_dir_writeback() annotation is
 * itself exempt from rule (2).
 */
class DirectoryChecker : public Checker
{
  public:
    explicit DirectoryChecker(
        metal::PruneStrategy prune_strategy = metal::PruneStrategy::Off)
        : prune_strategy_(prune_strategy)
    {}

    std::string name() const override { return "dir_check"; }

    void checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                       CheckContext& ctx) override;

  private:
    metal::PruneStrategy prune_strategy_ = metal::PruneStrategy::Off;
};

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_DIRECTORY_H
