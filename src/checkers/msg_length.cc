#include "checkers/msg_length.h"

#include "checkers/metal_sources.h"
#include "flash/macros.h"
#include "metal/engine.h"

namespace mc::checkers {

MsgLengthChecker::MsgLengthChecker(metal::PruneStrategy prune_strategy)
    : program_(
          mc::metal::parseMetal(kMsgLenCheckMetal, "msglen_check.metal")),
      prune_strategy_(prune_strategy)
{}

const char*
MsgLengthChecker::metalSource()
{
    return kMsgLenCheckMetal;
}

void
MsgLengthChecker::checkFunction(const lang::FunctionDecl& fn,
                                const cfg::Cfg& cfg, CheckContext& ctx)
{
    (void)fn;
    mc::metal::SmRunOptions options;
    options.prune_strategy = prune_strategy_;
    mc::metal::runStateMachine(*program_.sm, cfg, ctx.sink, options);

    // "Applied" = sends plus length assignments the checker examined.
    for (const cfg::BasicBlock& bb : cfg.blocks()) {
        for (const lang::Stmt* stmt : bb.stmts) {
            lang::forEachTopLevelExpr(*stmt, [&](const lang::Expr& top) {
                lang::forEachSubExpr(top, [&](const lang::Expr& e) {
                    if (flash::isSend(flash::classifyCall(e))) {
                        ++applied_;
                        return;
                    }
                    // Length assignments: HANDLER_GLOBALS(...) = LEN_*.
                    if (e.ekind != lang::ExprKind::Binary)
                        return;
                    const auto& bin =
                        static_cast<const lang::BinaryExpr&>(e);
                    if (bin.op != lang::BinaryOp::Assign)
                        return;
                    if (flash::classifyCall(*bin.lhs) ==
                        flash::MacroKind::HandlerGlobals)
                        ++applied_;
                });
            });
        }
    }
}

} // namespace mc::checkers
