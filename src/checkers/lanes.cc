#include "checkers/lanes.h"

#include "flash/macros.h"
#include "global/callgraph.h"

#include <limits>
#include <sstream>

namespace mc::checkers {

using namespace mc::lang;
using flash::MacroKind;

void
LanesChecker::checkFunction(const FunctionDecl& fn, const cfg::Cfg& cfg,
                            CheckContext& ctx)
{
    // Local pass: annotate sends with lanes and record calls.
    auto extract = [&](const Stmt& stmt, std::vector<global::Event>& out) {
        forEachTopLevelExpr(stmt, [&](const Expr& top) {
            forEachSubExpr(top, [&](const Expr& e) {
                const CallExpr* call = asCall(e);
                if (!call)
                    return;
                std::string callee(call->calleeName());
                MacroKind kind = flash::classifyMacro(callee);

                if (kind == MacroKind::SendNi) {
                    global::Event ev;
                    ev.kind = global::Event::Kind::Send;
                    auto opcode = flash::niSendOpcode(*call);
                    ev.lane = opcode ? ctx.spec.laneOf(*opcode) : -1;
                    ev.loc = e.loc;
                    out.push_back(std::move(ev));
                    ++applied_;
                    return;
                }
                if (kind == MacroKind::WaitForSpace) {
                    global::Event ev;
                    ev.kind = global::Event::Kind::LaneWait;
                    auto opcode = flash::waitForSpaceOpcode(*call);
                    ev.lane = opcode ? ctx.spec.laneOf(*opcode) : -1;
                    ev.loc = e.loc;
                    out.push_back(std::move(ev));
                    return;
                }
                if (kind == MacroKind::None && !callee.empty() &&
                    ctx.program.findFunction(callee)) {
                    global::Event ev;
                    ev.kind = global::Event::Kind::Call;
                    ev.callee = callee;
                    ev.loc = e.loc;
                    out.push_back(std::move(ev));
                }
            });
        });
    };
    summaries_.push_back(global::summarize(fn.name, cfg, extract));
}

void
LanesChecker::checkProgram(CheckContext& ctx)
{
    // The paper's local passes write their annotated flow graphs to
    // files which the global pass reads back; optionally exercise that
    // exact pipeline.
    std::vector<global::FunctionSummary> summaries;
    if (options_.roundtrip_through_text) {
        std::stringstream file;
        global::writeSummaries(file, summaries_);
        summaries = global::readSummaries(file);
    } else {
        summaries = summaries_;
    }

    // Global pass: link all emitted summaries and traverse from each
    // handler.
    global::CallGraph graph(summaries);

    global::LocDescriber describe =
        [&ctx](const support::SourceLoc& loc) {
            return ctx.program.sourceManager().describe(loc);
        };

    for (const auto& [fn_name, spec] : ctx.spec.handlers()) {
        if (spec.kind == flash::HandlerKind::Normal)
            continue;
        if (!graph.find(fn_name))
            continue;

        global::LaneCounts allowance;
        for (int lane = 0; lane < global::kLanes; ++lane)
            allowance[static_cast<std::size_t>(lane)] =
                spec.lane_allowance[static_cast<std::size_t>(lane)];

        global::LaneAnalysisResult result =
            global::analyzeLanes(graph, fn_name, allowance, describe);

        for (const global::LaneViolation& v : result.violations) {
            std::ostringstream msg;
            msg << "handler '" << fn_name << "' can send " << v.count
                << " messages on lane " << v.lane << " but its allowance is "
                << v.allowance << " (no WAIT_FOR_SPACE in between)";
            support::Diagnostic diag;
            diag.severity = support::Severity::Error;
            diag.loc = v.loc;
            diag.checker = name();
            diag.rule = "quota-exceeded";
            diag.message = msg.str();
            diag.trace = v.trace;
            ctx.sink.report(std::move(diag));
        }
        for (const global::LaneRecursionWarning& w :
             result.recursion_warnings) {
            support::Diagnostic diag;
            diag.severity = support::Severity::Warning;
            diag.loc = {};
            diag.checker = name();
            diag.rule = "sending-cycle";
            diag.message = "cycle through '" + w.function +
                           "' sends messages; static send bound unknown";
            diag.trace = w.trace;
            ctx.sink.report(std::move(diag));
        }
    }
}

void
LanesChecker::saveState(std::ostream& os) const
{
    Checker::saveState(os);
    global::writeSummaries(os, summaries_);
}

bool
LanesChecker::loadState(std::istream& is)
{
    if (!Checker::loadState(is))
        return false;
    // Skip the newline the base reader leaves behind, then hand the rest
    // of the stream to the flow-graph parser (it reads to EOF).
    is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    try {
        summaries_ = global::readSummaries(is);
    } catch (const std::exception&) {
        return false;
    }
    return true;
}

} // namespace mc::checkers
