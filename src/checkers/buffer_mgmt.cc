#include "checkers/buffer_mgmt.h"

#include "flash/macros.h"
#include "metal/path_walker.h"

#include <map>

namespace mc::checkers {

using namespace mc::lang;
using flash::HandlerKind;
using flash::MacroKind;

namespace {

struct BufState
{
    bool has_buffer = false;
    bool no_free_needed = false;
    /** Variable the last ALLOCATE_DB() was assigned to (may yet fail). */
    std::string alloc_var;
    support::SourceLoc last_event;

    std::string
    key() const
    {
        std::string k;
        k += has_buffer ? '1' : '0';
        k += no_free_needed ? '1' : '0';
        k += alloc_var;
        return k;
    }

    bool dead() const { return false; }
};

/**
 * If `cond` tests variable `var` against zero, report which branch edge
 * corresponds to "allocation failed": 0 for `var == 0` / `!var`, 1 for
 * `var != 0` / bare `var`. Returns -1 when the condition is not such a
 * test.
 */
int
allocFailureEdge(const Expr& cond, const std::string& var)
{
    if (var.empty())
        return -1;
    switch (cond.ekind) {
      case ExprKind::Ident:
        return static_cast<const IdentExpr&>(cond).name == var ? 1 : -1;
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(cond);
        if (u.op != UnaryOp::Not)
            return -1;
        int inner = allocFailureEdge(*u.operand, var);
        if (inner < 0)
            return -1;
        return 1 - inner;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(cond);
        bool lhs_var = b.lhs->ekind == ExprKind::Ident &&
                       static_cast<const IdentExpr&>(*b.lhs).name == var;
        bool rhs_zero = b.rhs->ekind == ExprKind::IntLit &&
                        static_cast<const IntLitExpr&>(*b.rhs).value == 0;
        if (!lhs_var || !rhs_zero)
            return -1;
        if (b.op == BinaryOp::Eq)
            return 0; // true edge means it failed
        if (b.op == BinaryOp::Ne)
            return 1;
        return -1;
      }
      default:
        return -1;
    }
}

/** What role a function plays for this checker. */
enum class Role : std::uint8_t
{
    Skip,          // unrelated normal routine
    HwHandler,     // starts with buffer, must free
    SwHandler,     // starts without buffer
    FreeingHelper, // table says: expects a buffer and frees it
    UsingHelper,   // table says: expects a buffer, must not free it
};

} // namespace

void
BufferMgmtChecker::checkFunction(const FunctionDecl& fn,
                                 const cfg::Cfg& cfg, CheckContext& ctx)
{
    Role role = Role::Skip;
    switch (ctx.spec.kindOf(fn.name)) {
      case HandlerKind::Hardware: role = Role::HwHandler; break;
      case HandlerKind::Software: role = Role::SwHandler; break;
      case HandlerKind::Normal:
        if (ctx.spec.freeing_routines.count(fn.name))
            role = Role::FreeingHelper;
        else if (ctx.spec.buffer_using_routines.count(fn.name))
            role = Role::UsingHelper;
        break;
    }
    if (role == Role::Skip)
        return;

    // Per-annotation-site usefulness tracking: did any path arrive in a
    // state the annotation actually changes?
    std::map<support::SourceLoc, bool> annotation_useful;

    mc::metal::PathWalker<BufState>::Hooks hooks;
    hooks.on_stmt = [&](BufState& st, const Stmt& stmt) {
        forEachTopLevelExpr(stmt, [&](const Expr& top) {
            forEachSubExpr(top, [&](const Expr& e) {
                const CallExpr* call = asCall(e);
                if (!call)
                    return;
                std::string callee(call->calleeName());
                MacroKind kind = flash::classifyMacro(callee);

                bool is_free = kind == MacroKind::FreeDb ||
                               ctx.spec.freeing_routines.count(callee) > 0;
                bool is_use =
                    kind == MacroKind::ReadDb ||
                    kind == MacroKind::ReadDbDeprecated ||
                    kind == MacroKind::WriteDb ||
                    ctx.spec.buffer_using_routines.count(callee) > 0;

                if (kind == MacroKind::MaybeFreeDb &&
                    !options_.value_sensitive_frees) {
                    // Naive mode: conservatively freed on both edges.
                    is_free = true;
                }

                if (is_free) {
                    ++applied_;
                    if (!st.has_buffer) {
                        ctx.sink.error(e.loc, name(), "double-free",
                                       "buffer freed twice (or freed "
                                       "without being held)");
                        return;
                    }
                    st.has_buffer = false;
                    st.last_event = e.loc;
                    return;
                }
                if (kind == MacroKind::AllocDb) {
                    ++applied_;
                    if (st.has_buffer) {
                        ctx.sink.error(e.loc, name(), "alloc-overwrites",
                                       "allocation while already holding "
                                       "a buffer leaks the current one");
                        return;
                    }
                    st.has_buffer = true;
                    st.last_event = e.loc;
                    // Remember the variable so a later `if (buf == 0)`
                    // failure branch can retract the buffer.
                    st.alloc_var.clear();
                    if (stmt.skind == StmtKind::Expr) {
                        const Expr* se =
                            static_cast<const ExprStmt&>(stmt).expr;
                        if (se->ekind == ExprKind::Binary) {
                            const auto& bin =
                                static_cast<const BinaryExpr&>(*se);
                            if (bin.op == BinaryOp::Assign &&
                                bin.lhs->ekind == ExprKind::Ident)
                                st.alloc_var = static_cast<const IdentExpr*>(
                                                   bin.lhs)
                                                   ->name;
                        }
                    } else if (stmt.skind == StmtKind::Decl) {
                        for (const VarDecl* v :
                             static_cast<const DeclStmt&>(stmt).decls)
                            if (v->init && flash::classifyCall(*v->init) ==
                                               MacroKind::AllocDb)
                                st.alloc_var = v->name;
                    }
                    return;
                }
                if (flash::isSend(kind)) {
                    ++applied_;
                    if (!st.has_buffer)
                        ctx.sink.error(e.loc, name(), "send-without-buffer",
                                       "send issued with no data buffer "
                                       "held");
                    return;
                }
                if (is_use) {
                    ++applied_;
                    if (!st.has_buffer)
                        ctx.sink.error(e.loc, name(), "use-after-free",
                                       "data buffer used after being "
                                       "freed (or never allocated)");
                    return;
                }
                if (kind == MacroKind::RefcntIncr) {
                    // Section 11: the call that blinded the tool once;
                    // now aggressively objected to.
                    ctx.sink.error(e.loc, name(), "manual-refcount",
                                   "manual reference-count manipulation "
                                   "(DB_REFCNT_INCR) defeats buffer "
                                   "checking");
                    return;
                }
                if (kind == MacroKind::AnnotHasBuffer) {
                    auto [it, inserted] =
                        annotation_useful.emplace(e.loc, false);
                    if (!st.has_buffer)
                        it->second = true; // it changed something
                    st.has_buffer = true;
                    return;
                }
                if (kind == MacroKind::AnnotNoFreeNeeded) {
                    auto [it, inserted] =
                        annotation_useful.emplace(e.loc, false);
                    if (st.has_buffer && !st.no_free_needed)
                        it->second = true;
                    st.no_free_needed = true;
                    return;
                }
            });
        });
    };
    hooks.on_branch = [&](BufState& st, const Expr& cond,
                          std::size_t edge) {
        // Failure test on the variable the allocation was assigned to:
        // the failing edge never actually had a buffer.
        int fail_edge = allocFailureEdge(cond, st.alloc_var);
        if (fail_edge >= 0) {
            if (static_cast<std::size_t>(fail_edge) == edge)
                st.has_buffer = false;
            st.alloc_var.clear();
            return;
        }
        if (options_.value_sensitive_frees) {
            // `if (MAYBE_FREE_DB_x(...))`: true edge freed, false edge
            // kept — the Section 6.1 refinement.
            bool maybe_free = false;
            forEachSubExpr(cond, [&](const Expr& e) {
                if (flash::classifyCall(e) == MacroKind::MaybeFreeDb)
                    maybe_free = true;
            });
            if (maybe_free && edge == 0 && st.has_buffer)
                st.has_buffer = false;
        }
    };
    hooks.on_exit = [&](BufState& st) {
        if (st.no_free_needed)
            return;
        if (st.has_buffer &&
            (role == Role::HwHandler || role == Role::SwHandler ||
             role == Role::FreeingHelper)) {
            ctx.sink.error(st.last_event.isValid() ? st.last_event : fn.loc,
                           name(), "leak",
                           "data buffer not freed on some path through '" +
                               fn.name + "'");
        }
        if (!st.has_buffer && role == Role::UsingHelper) {
            ctx.sink.error(st.last_event.isValid() ? st.last_event : fn.loc,
                           name(), "helper-freed",
                           "buffer-using routine '" + fn.name +
                               "' freed the buffer it does not own");
        }
    };

    BufState initial;
    initial.has_buffer = role == Role::HwHandler ||
                         role == Role::FreeingHelper ||
                         role == Role::UsingHelper;

    mc::metal::PathWalker<BufState>::WalkOptions wopts;
    wopts.prune_strategy = options_.prune_strategy;
    mc::metal::PathWalker<BufState> walker(std::move(hooks), wopts);
    walker.walk(cfg, initial);

    for (const auto& [loc, useful] : annotation_useful) {
        ++annotations_seen_;
        if (!useful) {
            ++annotations_unneeded_;
            ctx.sink.warning(loc, name(), "annotation-unneeded",
                             "annotation changes nothing on any path "
                             "through '" +
                                 fn.name + "'");
        }
    }
}

} // namespace mc::checkers
