#ifndef MCHECK_CHECKERS_BUFFER_ALLOC_H
#define MCHECK_CHECKERS_BUFFER_ALLOC_H

#include "checkers/checker.h"
#include "metal/feasibility.h"

namespace mc::checkers {

/**
 * Allocation-failure checker (paper Section 9, "Data buffer allocation").
 *
 * ALLOCATE_DB() yields 0 when no buffer is available, so every allocation
 * must be checked before the buffer is used: `buf = ALLOCATE_DB();` must
 * be followed on every path by a branch on `buf` before any use of `buf`,
 * any write into the buffer, or any send.
 *
 * The paper reports 2 false positives from debugging code that printed
 * the buffer value before checking it — passing the unchecked variable to
 * any routine counts as a use here too, reproducing that behavior.
 */
class BufferAllocChecker : public Checker
{
  public:
    explicit BufferAllocChecker(
        metal::PruneStrategy prune_strategy = metal::PruneStrategy::Off)
        : prune_strategy_(prune_strategy)
    {}

    std::string name() const override { return "alloc_check"; }

    void checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                       CheckContext& ctx) override;

  private:
    metal::PruneStrategy prune_strategy_ = metal::PruneStrategy::Off;
};

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_BUFFER_ALLOC_H
