/**
 * @file
 * Worker-process supervision for sharded checking.
 *
 * The loop is deliberately single-threaded: one poll() multiplexes
 * every worker socket, so there is no locking, and every decision —
 * dispatch, kill, requeue, quarantine — happens in one total order.
 * Determinism of *output* does not depend on that order (the caller
 * merges results by unit id), but determinism of *failure handling*
 * does depend on crash counting being per-unit, which the requeue
 * logic guarantees regardless of how batches land on workers.
 */
#include "shard/supervisor.h"

#include "support/fault_injection.h"
#include "support/metrics.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace mc::shard {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
millisUntil(Clock::time_point deadline, Clock::time_point now)
{
    if (deadline <= now)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              now)
            .count());
}

struct Batch
{
    std::vector<std::uint64_t> units;
};

struct Worker
{
    pid_t pid = -1;
    int fd = -1;
    std::string read_buf;
    std::string write_buf;
    bool busy = false;
    Batch batch;
    Clock::time_point dispatched_at{};
    Clock::time_point last_activity{};
    /** Consecutive crashes since the last completed batch (backoff). */
    unsigned crashes = 0;
    /** Consecutive spawn failures (abandon past the cap). */
    unsigned spawn_failures = 0;
    /** Total spawns attempted for this slot (fault-probe key). */
    unsigned spawn_seq = 0;
    Clock::time_point respawn_at{};
    bool abandoned = false;

    bool live() const { return fd >= 0; }
};

void
killWorker(Worker& w)
{
    if (w.fd >= 0) {
        ::close(w.fd);
        w.fd = -1;
    }
    if (w.pid > 0) {
        ::kill(w.pid, SIGKILL);
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        w.pid = -1;
    }
    w.read_buf.clear();
    w.write_buf.clear();
}

bool
isHeartbeatLine(const std::string& line)
{
    return line.rfind("{\"heartbeat\"", 0) == 0;
}

} // namespace

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options))
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.batch_units == 0)
        options_.batch_units = 1;
    if (options_.crashes_to_quarantine == 0)
        options_.crashes_to_quarantine = 1;
}

void
Supervisor::run(const std::vector<std::uint64_t>& units,
                const SupervisorHooks& hooks)
{
    if (units.empty())
        return;
    if (options_.worker_argv.empty())
        throw std::runtime_error("shard supervisor has no worker command");

    // A dying worker must not kill the coordinator with a pipe signal.
    ::signal(SIGPIPE, SIG_IGN);

    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    auto count = [&](const char* name, std::uint64_t n = 1) {
        if (metrics.enabled())
            metrics.counter(name).add(n);
    };

    std::deque<Batch> pending;
    for (std::size_t i = 0; i < units.size();
         i += options_.batch_units) {
        Batch b;
        for (std::size_t j = i;
             j < units.size() && j < i + options_.batch_units; ++j)
            b.units.push_back(units[j]);
        pending.push_back(std::move(b));
    }
    count("shard.batches", pending.size());

    std::map<std::uint64_t, unsigned> crash_counts;
    std::size_t unresolved = units.size();
    std::string last_spawn_error;

    std::vector<Worker> workers(options_.workers);

    std::vector<char*> argv;
    for (const std::string& arg : options_.worker_argv)
        argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);

    // Spawn (or schedule a retry for) one slot. Returns true when the
    // slot is live afterwards.
    auto spawn = [&](unsigned slot) -> bool {
        Worker& w = workers[slot];
        ++w.spawn_seq;
        try {
            // Keyed by (slot, attempt): partial densities fail a
            // reproducible subset of spawn attempts, and retries use
            // fresh keys so a transient spawn fault is survivable.
            support::fault::probe("worker.spawn",
                                  "worker:" + std::to_string(slot) +
                                      ":spawn:" +
                                      std::to_string(w.spawn_seq));
        } catch (const support::InjectedFault& e) {
            last_spawn_error = e.what();
            ++w.spawn_failures;
            count("shard.spawn_failures");
            if (hooks.on_event)
                hooks.on_event(slot, "spawn_failure", w.spawn_failures);
            if (w.spawn_failures >= options_.max_spawn_attempts)
                w.abandoned = true;
            else
                w.respawn_at =
                    Clock::now() +
                    std::chrono::milliseconds(std::min(
                        options_.backoff_cap_ms,
                        options_.backoff_base_ms
                            << std::min(w.spawn_failures - 1, 20u)));
            return false;
        }
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
            throw std::runtime_error(
                std::string("shard supervisor: socketpair: ") +
                std::strerror(errno));
        pid_t pid = ::fork();
        if (pid < 0) {
            ::close(sv[0]);
            ::close(sv[1]);
            throw std::runtime_error(
                std::string("shard supervisor: fork: ") +
                std::strerror(errno));
        }
        if (pid == 0) {
            ::dup2(sv[1], 0);
            ::dup2(sv[1], 1);
            ::close(sv[0]);
            ::close(sv[1]);
            ::signal(SIGPIPE, SIG_DFL);
            ::execvp(argv[0], argv.data());
            // The exec failure surfaces to the supervisor as an
            // instant EOF — the normal crash machinery handles it.
            _exit(127);
        }
        ::close(sv[1]);
        int flags = ::fcntl(sv[0], F_GETFL, 0);
        ::fcntl(sv[0], F_SETFL, flags | O_NONBLOCK);
        w.pid = pid;
        w.fd = sv[0];
        w.busy = false;
        w.spawn_failures = 0;
        w.last_activity = Clock::now();
        count("shard.spawns");
        if (hooks.on_event)
            hooks.on_event(slot, "spawn",
                           static_cast<std::uint64_t>(pid));
        return true;
    };

    // Requeue a crashed batch: every member becomes a singleton batch
    // with its crash count bumped; members at the threshold are
    // quarantined instead. Pushed to the *front* so poison units
    // resolve (and quarantine) promptly.
    auto requeueCrashed = [&](Batch&& batch) {
        count("shard.requeued_units", batch.units.size());
        for (auto it = batch.units.rbegin(); it != batch.units.rend();
             ++it) {
            unsigned crashes = ++crash_counts[*it];
            if (crashes >= options_.crashes_to_quarantine) {
                count("shard.quarantined_units");
                if (hooks.on_quarantine)
                    hooks.on_quarantine(*it, crashes);
                --unresolved;
                continue;
            }
            Batch single;
            single.units.push_back(*it);
            pending.push_front(std::move(single));
        }
    };

    // A worker died (EOF) or was killed (deadline/activity): reap it,
    // requeue its batch, and schedule the respawn with backoff.
    auto handleCrash = [&](unsigned slot, const char* action) {
        Worker& w = workers[slot];
        killWorker(w);
        ++w.crashes;
        count("shard.crashes");
        if (hooks.on_event)
            hooks.on_event(slot, action, w.crashes);
        if (w.busy) {
            w.busy = false;
            requeueCrashed(std::move(w.batch));
            w.batch = Batch();
        }
        w.respawn_at =
            Clock::now() +
            std::chrono::milliseconds(
                std::min(options_.backoff_cap_ms,
                         options_.backoff_base_ms
                             << std::min(w.crashes - 1, 20u)));
    };

    auto cleanup = [&] {
        for (Worker& w : workers)
            killWorker(w);
    };

    try {
        for (unsigned slot = 0; slot < workers.size(); ++slot)
            spawn(slot);

        while (unresolved > 0) {
            const Clock::time_point now = Clock::now();

            // Respawn slots whose backoff has elapsed.
            bool any_usable = false;
            for (unsigned slot = 0; slot < workers.size(); ++slot) {
                Worker& w = workers[slot];
                if (!w.live() && !w.abandoned && now >= w.respawn_at)
                    spawn(slot);
                if (w.live() || !w.abandoned)
                    any_usable = true;
            }
            if (!any_usable)
                throw std::runtime_error(
                    "shard workers exhausted spawn attempts" +
                    (last_spawn_error.empty()
                         ? std::string()
                         : ": " + last_spawn_error));

            // Dispatch pending batches to idle live workers.
            for (unsigned slot = 0;
                 slot < workers.size() && !pending.empty(); ++slot) {
                Worker& w = workers[slot];
                if (!w.live() || w.busy || !w.write_buf.empty())
                    continue;
                w.batch = std::move(pending.front());
                pending.pop_front();
                w.busy = true;
                w.dispatched_at = Clock::now();
                w.last_activity = w.dispatched_at;
                w.write_buf = hooks.make_request(w.batch.units);
                w.write_buf += '\n';
                count("shard.dispatches");
            }

            // Nearest deadline bounds the poll: batch deadlines,
            // activity timeouts, and pending respawns.
            std::uint64_t wait_ms = 1000;
            const Clock::time_point now2 = Clock::now();
            for (const Worker& w : workers) {
                if (w.live() && w.busy) {
                    if (options_.batch_timeout_ms > 0)
                        wait_ms = std::min(
                            wait_ms,
                            millisUntil(
                                w.dispatched_at +
                                    std::chrono::milliseconds(
                                        options_.batch_timeout_ms),
                                now2));
                    if (options_.activity_timeout_ms > 0)
                        wait_ms = std::min(
                            wait_ms,
                            millisUntil(
                                w.last_activity +
                                    std::chrono::milliseconds(
                                        options_.activity_timeout_ms),
                                now2));
                }
                if (!w.live() && !w.abandoned)
                    wait_ms = std::min(
                        wait_ms, millisUntil(w.respawn_at, now2));
            }

            std::vector<pollfd> fds;
            std::vector<unsigned> fd_slots;
            for (unsigned slot = 0; slot < workers.size(); ++slot) {
                Worker& w = workers[slot];
                if (!w.live())
                    continue;
                pollfd p{};
                p.fd = w.fd;
                p.events = POLLIN;
                if (!w.write_buf.empty())
                    p.events |= POLLOUT;
                fds.push_back(p);
                fd_slots.push_back(slot);
            }
            if (!fds.empty()) {
                int rc = ::poll(fds.data(), fds.size(),
                                static_cast<int>(std::min<std::uint64_t>(
                                    wait_ms, 1000)));
                if (rc < 0 && errno != EINTR)
                    throw std::runtime_error(
                        std::string("shard supervisor: poll: ") +
                        std::strerror(errno));
            } else {
                // Every worker is down; sleep out the shortest backoff.
                struct timespec ts;
                std::uint64_t ms = std::max<std::uint64_t>(
                    1, std::min<std::uint64_t>(wait_ms, 1000));
                ts.tv_sec = static_cast<time_t>(ms / 1000);
                ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
                ::nanosleep(&ts, nullptr);
                continue;
            }

            for (std::size_t i = 0; i < fds.size(); ++i) {
                const unsigned slot = fd_slots[i];
                Worker& w = workers[slot];
                if (!w.live())
                    continue;

                if (fds[i].revents & POLLOUT) {
                    ssize_t n =
                        ::write(w.fd, w.write_buf.data(),
                                w.write_buf.size());
                    if (n > 0)
                        w.write_buf.erase(
                            0, static_cast<std::size_t>(n));
                    else if (n < 0 && errno != EAGAIN &&
                             errno != EWOULDBLOCK && errno != EINTR) {
                        handleCrash(slot, "crash");
                        continue;
                    }
                }

                if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                    char chunk[4096];
                    bool eof = false;
                    for (;;) {
                        ssize_t n = ::read(w.fd, chunk, sizeof chunk);
                        if (n > 0) {
                            w.read_buf.append(
                                chunk, static_cast<std::size_t>(n));
                            w.last_activity = Clock::now();
                            continue;
                        }
                        if (n == 0)
                            eof = true;
                        else if (errno == EINTR)
                            continue;
                        break;
                    }
                    std::size_t start = 0;
                    std::size_t nl;
                    while ((nl = w.read_buf.find('\n', start)) !=
                           std::string::npos) {
                        std::string line =
                            w.read_buf.substr(start, nl - start);
                        start = nl + 1;
                        if (isHeartbeatLine(line))
                            continue;
                        if (!w.busy)
                            throw std::runtime_error(
                                "shard worker sent an unsolicited "
                                "response");
                        Batch done = std::move(w.batch);
                        w.batch = Batch();
                        w.busy = false;
                        w.crashes = 0;
                        std::vector<unsigned> attempts;
                        for (std::uint64_t u : done.units) {
                            auto it = crash_counts.find(u);
                            attempts.push_back(
                                it == crash_counts.end()
                                    ? 1
                                    : it->second + 1);
                        }
                        hooks.on_result(done.units, line, slot,
                                        attempts);
                        unresolved -= done.units.size();
                        count("shard.batches_done");
                    }
                    w.read_buf.erase(0, start);
                    if (eof) {
                        handleCrash(slot, "crash");
                        continue;
                    }
                }

                // Deadline supervision, checked after draining reads
                // so a response that raced the deadline still counts.
                if (w.live() && w.busy) {
                    const Clock::time_point t = Clock::now();
                    if (options_.batch_timeout_ms > 0 &&
                        t >= w.dispatched_at +
                                 std::chrono::milliseconds(
                                     options_.batch_timeout_ms)) {
                        count("shard.timeouts");
                        handleCrash(slot, "timeout_kill");
                    } else if (options_.activity_timeout_ms > 0 &&
                               t >= w.last_activity +
                                        std::chrono::milliseconds(
                                            options_
                                                .activity_timeout_ms)) {
                        count("shard.timeouts");
                        handleCrash(slot, "timeout_kill");
                    }
                }
            }
        }
    } catch (...) {
        cleanup();
        throw;
    }
    cleanup();
}

} // namespace mc::shard
