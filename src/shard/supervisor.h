#ifndef MCHECK_SHARD_SUPERVISOR_H
#define MCHECK_SHARD_SUPERVISOR_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mc::shard {

/** Construction-time knobs for a Supervisor. */
struct SupervisorOptions
{
    /** Worker processes to keep alive. */
    unsigned workers = 1;
    /** argv of the worker command (argv[0] is the executable). */
    std::vector<std::string> worker_argv;
    /** Units per work batch (the dispatch granularity). */
    std::size_t batch_units = 16;
    /**
     * Wall-clock deadline for one outstanding batch in ms; a worker
     * that holds a batch longer is killed and the batch requeued.
     * 0 disables the deadline (heartbeat supervision still applies).
     */
    std::uint64_t batch_timeout_ms = 0;
    /**
     * Kill a busy worker that has produced no bytes — no response, no
     * heartbeat line — for this long. Catches workers that died in a
     * way that kept the socket open. 0 disables.
     */
    std::uint64_t activity_timeout_ms = 10000;
    /**
     * Capped exponential backoff before respawning a crashed worker:
     * base << (consecutive crashes - 1), clamped to the cap. The
     * schedule is deterministic (no jitter) and affects only wall
     * time, never output bytes.
     */
    std::uint64_t backoff_base_ms = 50;
    std::uint64_t backoff_cap_ms = 2000;
    /** Consecutive failed spawns before a slot is abandoned. */
    unsigned max_spawn_attempts = 4;
    /**
     * A unit whose batch crashed this many times is quarantined (its
     * on_quarantine hook fires instead of on_result). After the first
     * crash every member of the batch is requeued as a singleton
     * batch, so only a unit that kills a worker *alone* reaches the
     * threshold — the quarantine set is a pure function of unit
     * identity, identical at any shard count.
     */
    unsigned crashes_to_quarantine = 2;
};

/**
 * Callbacks the Supervisor drives. All hooks are invoked from the
 * thread that called run(); a hook that throws aborts the run (workers
 * are killed, the exception propagates).
 */
struct SupervisorHooks
{
    /** Render the request line (no trailing newline) for a batch. */
    std::function<std::string(const std::vector<std::uint64_t>& units)>
        make_request;
    /**
     * A worker answered a batch with one response line. `attempts[i]`
     * is how many times units[i] has been dispatched (1 = first try).
     */
    std::function<void(const std::vector<std::uint64_t>& units,
                       const std::string& line, unsigned slot,
                       const std::vector<unsigned>& attempts)>
        on_result;
    /** A unit crossed the crash threshold and will never run. */
    std::function<void(std::uint64_t unit, unsigned crashes)>
        on_quarantine;
    /**
     * Worker lifecycle event for the ledger: action is one of
     * "spawn", "crash", "timeout_kill", "spawn_failure"; detail is the
     * worker's pid (spawn) or its consecutive-crash count.
     */
    std::function<void(unsigned slot, const char* action,
                       std::uint64_t detail)>
        on_event;
};

/**
 * Fault-tolerant pool of worker processes speaking a line-delimited
 * request/response protocol over socketpairs.
 *
 * run() partitions `units` (in order) into batches of batch_units,
 * spawns options.workers processes, and dispatches batches to idle
 * workers until every unit is resolved — answered via on_result or
 * written off via on_quarantine. Supervision is a single-threaded
 * poll() loop: any byte from a worker (responses and `{"heartbeat"...}`
 * lines alike) refreshes its activity clock; a worker that EOFs,
 * exceeds its batch deadline, or goes silent past the activity timeout
 * is SIGKILLed and respawned after a deterministic capped exponential
 * backoff, and its un-acked batch is requeued — each member as a
 * singleton batch with its crash count bumped, so repeat offenders
 * isolate themselves and are quarantined at the threshold.
 *
 * Spawns are guarded by the keyed `worker.spawn` fault-injection
 * probe; a slot whose spawns fail max_spawn_attempts times in a row is
 * abandoned, and run() throws once no live or spawnable worker
 * remains with units still pending.
 *
 * The supervisor is transport and payload agnostic: request/response
 * content is entirely the hooks' business, which keeps this library
 * free of any dependency on the checking engine.
 */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorOptions options);

    /**
     * Drive `units` to resolution. Throws std::runtime_error when no
     * worker can be kept alive, and propagates hook exceptions; in
     * both cases every worker process is killed first.
     */
    void run(const std::vector<std::uint64_t>& units,
             const SupervisorHooks& hooks);

  private:
    SupervisorOptions options_;
};

} // namespace mc::shard

#endif // MCHECK_SHARD_SUPERVISOR_H
