#ifndef MCHECK_GLOBAL_CALLGRAPH_H
#define MCHECK_GLOBAL_CALLGRAPH_H

#include "global/flowgraph.h"

#include <array>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mc::global {

/**
 * The linked global call graph: all function summaries of a protocol,
 * indexed by name. This is the paper's "second, global pass" input —
 * typically produced by reading back the files the local passes emitted.
 */
class CallGraph
{
  public:
    explicit CallGraph(std::vector<FunctionSummary> summaries);

    /** Summary for `name`, or nullptr for external/unknown routines. */
    const FunctionSummary* find(const std::string& name) const;

    /** Names of all summarized functions. */
    std::vector<std::string> functionNames() const;

    /** Direct callees of `name` (unknown callees included by name). */
    std::set<std::string> calleesOf(const std::string& name) const;

  private:
    std::map<std::string, FunctionSummary> by_name_;
};

/** Number of lanes tracked by the lane analysis. */
inline constexpr int kLanes = 4;

using LaneCounts = std::array<int, kLanes>;

/** One send that exceeded its handler's lane allowance. */
struct LaneViolation
{
    support::SourceLoc loc;
    int lane = -1;
    /** Sends on this lane at this point (allowance + overflow). */
    int count = 0;
    int allowance = 0;
    /**
     * Inter-procedural back-trace, outermost frame first: the handler,
     * each call site taken, then the offending send. The paper notes
     * "path length and branching complexity make this feature crucial".
     */
    std::vector<std::string> trace;
};

/** A cycle whose traversal sends messages (not a fixed point). */
struct LaneRecursionWarning
{
    std::string function;
    std::vector<std::string> trace;
};

struct LaneAnalysisResult
{
    std::vector<LaneViolation> violations;
    std::vector<LaneRecursionWarning> recursion_warnings;
    /** Max sends observed per lane across all paths. */
    LaneCounts max_sends{0, 0, 0, 0};
};

/** Renders a location inside a back-trace frame. */
using LocDescriber = std::function<std::string(const support::SourceLoc&)>;

/**
 * Analyze one handler's send behavior against its lane allowance.
 *
 * Depth-first traversal of the handler's summary, descending into callees
 * at Call events. Send events increment the per-lane count (a violation is
 * recorded when a count exceeds the allowance); LaneWait events reset
 * their lane (the handler suspends until space is available).
 *
 * Cycles use the paper's fixed-point rule: re-encountering a function that
 * is already active with the SAME lane counts is a fixed point and is
 * skipped; re-encountering it with different counts means the cycle sends,
 * which is reported as a recursion warning. This "completely eliminates
 * all recursion based false-positives".
 */
LaneAnalysisResult analyzeLanes(const CallGraph& graph,
                                const std::string& handler,
                                const LaneCounts& allowance,
                                const LocDescriber& describe = {});

} // namespace mc::global

#endif // MCHECK_GLOBAL_CALLGRAPH_H
