#ifndef MCHECK_GLOBAL_FLOWGRAPH_H
#define MCHECK_GLOBAL_FLOWGRAPH_H

#include "cfg/cfg.h"
#include "support/source_location.h"

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace mc::global {

/**
 * One client-relevant event inside a function summary.
 *
 * The paper's local pass "walks over every handler annotating each send
 * with the lane it uses" and emits the flow graph to a file; `Event` is
 * that client annotation. `Call` events record plain calls so the global
 * pass can traverse the call graph; `Send` carries a lane; `LaneWait`
 * marks an explicit space check that resets a lane budget.
 */
struct Event
{
    enum class Kind : std::uint8_t { Call, Send, LaneWait };

    Kind kind = Kind::Call;
    /** Callee name for Call events. */
    std::string callee;
    /** Lane index for Send / LaneWait events (-1 if unknown). */
    int lane = -1;
    support::SourceLoc loc;
};

/**
 * The reduced, client-annotated flow graph of one function: the CFG's
 * block structure with each block's statements replaced by the events
 * the client extracted from them.
 */
struct FunctionSummary
{
    std::string name;
    int entry = 0;
    int exit = 0;

    struct Block
    {
        std::vector<Event> events;
        std::vector<int> succs;
    };

    std::vector<Block> blocks;
};

/**
 * Build a summary from a CFG. `extract` is the client annotation hook:
 * it receives each statement and appends any events it derives to the
 * output vector.
 */
FunctionSummary
summarize(const std::string& name, const cfg::Cfg& cfg,
          const std::function<void(const lang::Stmt&,
                                   std::vector<Event>&)>& extract);

/**
 * Serialize summaries to the textual flow-graph format:
 *
 *     fn <name> entry <id> exit <id> blocks <n>
 *     block <id> succs <k> <s0> <s1> ...
 *     call <callee> <file> <line> <col>
 *     send <lane> <file> <line> <col>
 *     lanewait <lane> <file> <line> <col>
 *     end
 *
 * This mirrors xg++'s emit-to-file / read-back interface so the global
 * pass can be run over summaries produced by separate local passes.
 */
void writeSummaries(std::ostream& os,
                    const std::vector<FunctionSummary>& summaries);

/** Parse summaries written by writeSummaries. Throws on bad input. */
std::vector<FunctionSummary> readSummaries(std::istream& is);

} // namespace mc::global

#endif // MCHECK_GLOBAL_FLOWGRAPH_H
