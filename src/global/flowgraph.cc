#include "global/flowgraph.h"

#include <sstream>
#include <stdexcept>

namespace mc::global {

FunctionSummary
summarize(const std::string& name, const cfg::Cfg& cfg,
          const std::function<void(const lang::Stmt&,
                                   std::vector<Event>&)>& extract)
{
    FunctionSummary summary;
    summary.name = name;
    summary.entry = cfg.entryId();
    summary.exit = cfg.exitId();
    summary.blocks.resize(static_cast<std::size_t>(cfg.blockCount()));
    for (const cfg::BasicBlock& bb : cfg.blocks()) {
        FunctionSummary::Block& out =
            summary.blocks[static_cast<std::size_t>(bb.id)];
        out.succs = bb.succs;
        for (const lang::Stmt* stmt : bb.stmts)
            extract(*stmt, out.events);
    }
    return summary;
}

void
writeSummaries(std::ostream& os,
               const std::vector<FunctionSummary>& summaries)
{
    for (const FunctionSummary& fn : summaries) {
        os << "fn " << fn.name << " entry " << fn.entry << " exit "
           << fn.exit << " blocks " << fn.blocks.size() << '\n';
        for (std::size_t i = 0; i < fn.blocks.size(); ++i) {
            const FunctionSummary::Block& bb = fn.blocks[i];
            os << "block " << i << " succs " << bb.succs.size();
            for (int s : bb.succs)
                os << ' ' << s;
            os << '\n';
            for (const Event& ev : bb.events) {
                switch (ev.kind) {
                  case Event::Kind::Call:
                    os << "call " << ev.callee;
                    break;
                  case Event::Kind::Send:
                    os << "send " << ev.lane;
                    break;
                  case Event::Kind::LaneWait:
                    os << "lanewait " << ev.lane;
                    break;
                }
                os << ' ' << ev.loc.file_id << ' ' << ev.loc.line << ' '
                   << ev.loc.column << '\n';
            }
        }
        os << "end\n";
    }
}

namespace {

[[noreturn]] void
badFormat(const std::string& line)
{
    throw std::runtime_error("malformed flow-graph line: " + line);
}

} // namespace

std::vector<FunctionSummary>
readSummaries(std::istream& is)
{
    std::vector<FunctionSummary> out;
    std::string line;
    FunctionSummary* current = nullptr;
    FunctionSummary::Block* block = nullptr;

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "fn") {
            out.emplace_back();
            current = &out.back();
            block = nullptr;
            std::string kw;
            std::size_t nblocks = 0;
            if (!(ls >> current->name >> kw >> current->entry >> kw >>
                  current->exit >> kw >> nblocks))
                badFormat(line);
            current->blocks.resize(nblocks);
        } else if (tag == "block") {
            if (!current)
                badFormat(line);
            std::size_t id = 0;
            std::size_t nsuccs = 0;
            std::string kw;
            if (!(ls >> id >> kw >> nsuccs) ||
                id >= current->blocks.size())
                badFormat(line);
            block = &current->blocks[id];
            for (std::size_t i = 0; i < nsuccs; ++i) {
                int s = 0;
                if (!(ls >> s))
                    badFormat(line);
                block->succs.push_back(s);
            }
        } else if (tag == "call" || tag == "send" || tag == "lanewait") {
            if (!block)
                badFormat(line);
            Event ev;
            if (tag == "call") {
                ev.kind = Event::Kind::Call;
                if (!(ls >> ev.callee))
                    badFormat(line);
            } else {
                ev.kind = tag == "send" ? Event::Kind::Send
                                        : Event::Kind::LaneWait;
                if (!(ls >> ev.lane))
                    badFormat(line);
            }
            if (!(ls >> ev.loc.file_id >> ev.loc.line >> ev.loc.column))
                badFormat(line);
            block->events.push_back(std::move(ev));
        } else if (tag == "end") {
            current = nullptr;
            block = nullptr;
        } else {
            badFormat(line);
        }
    }
    return out;
}

} // namespace mc::global
