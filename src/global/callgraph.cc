#include "global/callgraph.h"

#include <sstream>

namespace mc::global {

CallGraph::CallGraph(std::vector<FunctionSummary> summaries)
{
    for (FunctionSummary& fn : summaries) {
        std::string name = fn.name;
        by_name_.emplace(std::move(name), std::move(fn));
    }
}

const FunctionSummary*
CallGraph::find(const std::string& name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &it->second;
}

std::vector<std::string>
CallGraph::functionNames() const
{
    std::vector<std::string> out;
    for (const auto& [name, fn] : by_name_)
        out.push_back(name);
    return out;
}

std::set<std::string>
CallGraph::calleesOf(const std::string& name) const
{
    std::set<std::string> out;
    const FunctionSummary* fn = find(name);
    if (!fn)
        return out;
    for (const FunctionSummary::Block& bb : fn->blocks)
        for (const Event& ev : bb.events)
            if (ev.kind == Event::Kind::Call)
                out.insert(ev.callee);
    return out;
}

namespace {

std::string
describeLoc(const support::SourceLoc& loc)
{
    std::ostringstream os;
    os << "file" << loc.file_id << ':' << loc.line << ':' << loc.column;
    return os.str();
}

/**
 * The lane-analysis DFS. Memoizes per (function, entry counts) the set of
 * possible exit counts, so shared helpers are analyzed once per distinct
 * calling context. Counts are clamped to allowance+1, which both bounds
 * the state space and keeps "already violating" saturated.
 */
class LaneDfs
{
  public:
    LaneDfs(const CallGraph& graph, const LaneCounts& allowance,
            LaneAnalysisResult& result, const LocDescriber& describe)
        : graph_(graph), allowance_(allowance), result_(result),
          describe_(describe ? describe : describeLoc)
    {}

    std::set<LaneCounts>
    runFunction(const std::string& name, const LaneCounts& entry)
    {
        const FunctionSummary* fn = graph_.find(name);
        if (!fn)
            return {entry}; // external routines are send-free

        auto memo_key = std::make_pair(name, entry);
        auto memo_it = memo_.find(memo_key);
        if (memo_it != memo_.end())
            return memo_it->second;

        // Fixed-point rule for cycles.
        for (const auto& [active_name, active_counts] : stack_) {
            if (active_name != name)
                continue;
            if (active_counts == entry)
                return {entry}; // fixed point: cycle cannot add sends
            LaneRecursionWarning warning;
            warning.function = name;
            warning.trace = currentTrace();
            result_.recursion_warnings.push_back(std::move(warning));
            return {entry};
        }

        stack_.emplace_back(name, entry);
        std::set<LaneCounts> exits = walkBlocks(*fn, entry);
        stack_.pop_back();
        memo_.emplace(std::move(memo_key), exits);
        return exits;
    }

    /** Record a frame for back traces: "<fn> at <loc>". */
    void
    pushFrame(const std::string& text)
    {
        frames_.push_back(text);
    }

    void popFrame() { frames_.pop_back(); }

  private:
    std::vector<std::string>
    currentTrace() const
    {
        return frames_;
    }

    std::set<LaneCounts>
    walkBlocks(const FunctionSummary& fn, const LaneCounts& entry)
    {
        std::set<LaneCounts> exits;
        std::set<std::pair<int, LaneCounts>> visited;
        std::vector<std::pair<int, LaneCounts>> work;
        work.emplace_back(fn.entry, entry);

        while (!work.empty()) {
            auto [block_id, counts] = work.back();
            work.pop_back();
            if (!visited.emplace(block_id, counts).second)
                continue;

            const FunctionSummary::Block& bb =
                fn.blocks[static_cast<std::size_t>(block_id)];

            // Apply the block's events in order. Calls can yield several
            // possible count vectors; track the frontier set.
            std::set<LaneCounts> frontier{counts};
            for (const Event& ev : bb.events) {
                std::set<LaneCounts> next;
                for (const LaneCounts& c : frontier)
                    applyEvent(fn.name, ev, c, next);
                frontier = std::move(next);
            }

            if (block_id == fn.exit) {
                for (const LaneCounts& c : frontier)
                    exits.insert(c);
                continue;
            }
            for (int succ : bb.succs)
                for (const LaneCounts& c : frontier)
                    work.emplace_back(succ, c);
        }

        if (exits.empty())
            exits.insert(entry); // e.g. all paths dead-end in recursion
        return exits;
    }

    void
    applyEvent(const std::string& fn_name, const Event& ev,
               LaneCounts counts, std::set<LaneCounts>& out)
    {
        switch (ev.kind) {
          case Event::Kind::Send: {
            if (ev.lane < 0 || ev.lane >= kLanes) {
                out.insert(counts);
                return;
            }
            int& c = counts[static_cast<std::size_t>(ev.lane)];
            ++c;
            int allowed = allowance_[static_cast<std::size_t>(ev.lane)];
            if (c > allowed) {
                c = allowed + 1; // saturate
                recordViolation(fn_name, ev, c, allowed);
            }
            result_.max_sends[static_cast<std::size_t>(ev.lane)] =
                std::max(result_.max_sends[static_cast<std::size_t>(
                             ev.lane)],
                         c);
            out.insert(counts);
            return;
          }
          case Event::Kind::LaneWait: {
            if (ev.lane >= 0 && ev.lane < kLanes)
                counts[static_cast<std::size_t>(ev.lane)] = 0;
            out.insert(counts);
            return;
          }
          case Event::Kind::Call: {
            pushFrame(ev.callee + " called at " + describe_(ev.loc));
            std::set<LaneCounts> exits = runFunction(ev.callee, counts);
            popFrame();
            for (const LaneCounts& c : exits)
                out.insert(c);
            return;
          }
        }
    }

    void
    recordViolation(const std::string& fn_name, const Event& ev, int count,
                    int allowed)
    {
        for (const LaneViolation& v : result_.violations)
            if (v.loc == ev.loc && v.lane == ev.lane)
                return; // already reported this send
        LaneViolation v;
        v.loc = ev.loc;
        v.lane = ev.lane;
        v.count = count;
        v.allowance = allowed;
        v.trace = currentTrace();
        v.trace.push_back("send in " + fn_name + " at " +
                          describe_(ev.loc));
        result_.violations.push_back(std::move(v));
    }

    const CallGraph& graph_;
    LaneCounts allowance_;
    LaneAnalysisResult& result_;
    LocDescriber describe_;
    std::vector<std::pair<std::string, LaneCounts>> stack_;
    std::vector<std::string> frames_;
    std::map<std::pair<std::string, LaneCounts>, std::set<LaneCounts>>
        memo_;
};

} // namespace

LaneAnalysisResult
analyzeLanes(const CallGraph& graph, const std::string& handler,
             const LaneCounts& allowance, const LocDescriber& describe)
{
    LaneAnalysisResult result;
    LaneDfs dfs(graph, allowance, result, describe);
    dfs.pushFrame("handler " + handler);
    dfs.runFunction(handler, LaneCounts{0, 0, 0, 0});
    dfs.popFrame();
    return result;
}

} // namespace mc::global
