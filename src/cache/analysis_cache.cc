#include "cache/analysis_cache.h"

#include "support/fault_injection.h"
#include "support/hash.h"
#include "support/metrics.h"
#include "support/version.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace fs = std::filesystem;

namespace mc::cache {

namespace {

/**
 * Percent-encode `s` so it fits in one space-separated field: anything
 * outside a conservative identifier/punctuation set (including '%', ' ',
 * and newlines) becomes %XX. Empty strings encode as "%" so every field
 * stays non-empty for the line parser.
 */
std::string
encodeField(std::string_view s)
{
    if (s.empty())
        return "%";
    static const char* hex = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        bool plain = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                     c == ',' || c == ':' || c == '/' || c == '-';
        if (plain) {
            out.push_back(static_cast<char>(c));
        } else {
            out.push_back('%');
            out.push_back(hex[c >> 4]);
            out.push_back(hex[c & 0xf]);
        }
    }
    return out;
}

bool
decodeField(std::string_view s, std::string& out)
{
    out.clear();
    if (s == "%")
        return true;
    auto hexVal = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out.push_back(s[i]);
            continue;
        }
        if (i + 2 >= s.size())
            return false;
        int hi = hexVal(s[i + 1]);
        int lo = hexVal(s[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
    }
    return true;
}

/** Cursor over the encoded entry; hands out '\n'-terminated lines. */
struct LineCursor
{
    std::string_view text;
    std::size_t pos = 0;

    bool
    nextLine(std::string_view& line)
    {
        if (pos >= text.size())
            return false;
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string_view::npos)
            return false; // entries always end in '\n'; treat as truncated
        line = text.substr(pos, nl - pos);
        pos = nl + 1;
        return true;
    }
};

std::vector<std::string_view>
splitFields(std::string_view line)
{
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < line.size()) {
        std::size_t j = line.find(' ', i);
        if (j == std::string_view::npos)
            j = line.size();
        if (j > i)
            out.push_back(line.substr(i, j - i));
        i = j + 1;
    }
    return out;
}

bool
parseInt(std::string_view s, long long& out)
{
    if (s.empty())
        return false;
    long long value = 0;
    std::size_t i = 0;
    bool neg = s[0] == '-';
    if (neg)
        i = 1;
    if (i >= s.size())
        return false;
    for (; i < s.size(); ++i) {
        if (s[i] < '0' || s[i] > '9')
            return false;
        value = value * 10 + (s[i] - '0');
        if (value < 0)
            return false; // overflow
    }
    out = neg ? -value : value;
    return true;
}

} // namespace

AnalysisCache::AnalysisCache(std::string dir, bool readonly)
    : dir_(std::move(dir)), readonly_(readonly)
{
    std::error_code ec;
    if (!readonly_)
        fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_, ec))
        throw std::runtime_error("cannot open cache directory '" + dir_ +
                                 "'" + (ec ? ": " + ec.message() : ""));
    // Pre-register every cache.* counter so a metrics report always
    // carries the full set — a warm run's "cache.misses": 0 is a
    // statement, not an omission.
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    if (metrics.enabled())
        for (const char* name :
             {"cache.hits", "cache.misses", "cache.stores", "cache.corrupt",
              "cache.evictions", "cache.bytes_read", "cache.bytes_written"})
            metrics.counter(name).add(0);
}

AnalysisCache::AnalysisCache(MemoryTag) : dir_("<memory>"), memory_(true)
{
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    if (metrics.enabled())
        for (const char* name :
             {"cache.hits", "cache.misses", "cache.stores", "cache.corrupt",
              "cache.evictions", "cache.bytes_read", "cache.bytes_written"})
            metrics.counter(name).add(0);
}

std::unique_ptr<AnalysisCache>
AnalysisCache::inMemory()
{
    return std::unique_ptr<AnalysisCache>(new AnalysisCache(MemoryTag{}));
}

std::uint64_t
AnalysisCache::entryCount() const
{
    if (memory_) {
        std::lock_guard<std::mutex> lock(mem_mu_);
        return mem_.size();
    }
    std::uint64_t n = 0;
    std::error_code ec;
    fs::directory_iterator it(dir_, ec);
    if (ec)
        return 0;
    for (fs::directory_iterator end; it != end; it.increment(ec)) {
        if (ec)
            break;
        if (it->path().extension() == ".mcu")
            ++n;
    }
    return n;
}

std::uint64_t
AnalysisCache::residentBytes() const
{
    if (!memory_)
        return 0;
    std::lock_guard<std::mutex> lock(mem_mu_);
    std::uint64_t total = 0;
    for (const auto& [key, entry] : mem_)
        total += entry.second.size();
    return total;
}

std::string
AnalysisCache::entryPath(std::uint64_t key) const
{
    return dir_ + "/" + support::hashHex(key) + ".mcu";
}

void
AnalysisCache::warn(std::string message)
{
    std::lock_guard<std::mutex> lock(warnings_mu_);
    warnings_.push_back(std::move(message));
}

void
AnalysisCache::countMiss(bool corrupt_entry, const std::string& path,
                         const std::string& reason)
{
    misses_.fetch_add(1, std::memory_order_relaxed);
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    if (metrics.enabled())
        metrics.counter("cache.misses").add();
    if (!corrupt_entry)
        return;
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    if (metrics.enabled())
        metrics.counter("cache.corrupt").add();
    warn("cache entry " + path + " is unusable (" + reason +
         "); re-analyzing");
    // A bad entry would fail every future lookup too; drop it so the
    // next store rewrites a good one. Readonly mode preserves evidence.
    if (!readonly_) {
        std::error_code ec;
        fs::remove(path, ec);
    }
}

bool
AnalysisCache::lookup(std::uint64_t key, CachedUnit& out)
{
    const std::string path = entryPath(key);
    // I/O faults are contained right here: a failed read is exactly a
    // corrupt-entry miss, so the caller re-analyzes and the run's output
    // is unaffected. The injected variant follows the same path.
    try {
        support::fault::probe("cache.lookup", support::hashHex(key));
    } catch (const support::InjectedFault& f) {
        if (memory_) {
            std::lock_guard<std::mutex> lock(mem_mu_);
            mem_.erase(key);
        }
        countMiss(true, path, f.what());
        return false;
    }
    if (memory_) {
        std::string text;
        {
            std::lock_guard<std::mutex> lock(mem_mu_);
            auto it = mem_.find(key);
            if (it == mem_.end()) {
                countMiss(false, path, "");
                return false;
            }
            text = it->second.second;
        }
        std::string error;
        if (!decodeUnit(text, out, error)) {
            {
                std::lock_guard<std::mutex> lock(mem_mu_);
                mem_.erase(key);
            }
            countMiss(true, path, error);
            return false;
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        bytes_read_.fetch_add(text.size(), std::memory_order_relaxed);
        support::MetricsRegistry& metrics =
            support::MetricsRegistry::global();
        if (metrics.enabled()) {
            metrics.counter("cache.hits").add();
            metrics.counter("cache.bytes_read").add(text.size());
        }
        return true;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        countMiss(false, path, "");
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) {
        countMiss(true, path, "read error");
        return false;
    }
    std::string text = buffer.str();

    std::string error;
    if (!decodeUnit(text, out, error)) {
        countMiss(true, path, error);
        return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(text.size(), std::memory_order_relaxed);
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.counter("cache.hits").add();
        metrics.counter("cache.bytes_read").add(text.size());
    }
    return true;
}

void
AnalysisCache::store(std::uint64_t key, const CachedUnit& unit)
{
    if (readonly_)
        return;
    const std::string path = entryPath(key);
    // A failed publish only costs the next run a re-analysis; contain it
    // here (like the real short-write/rename failures below) so checking
    // continues undisturbed.
    try {
        support::fault::probe("cache.store", support::hashHex(key));
    } catch (const support::InjectedFault& f) {
        warn("cache entry " + path + " not stored (" + f.what() + ")");
        return;
    }
    if (memory_) {
        const std::string text = encodeUnit(unit);
        std::uint64_t size = text.size();
        {
            std::lock_guard<std::mutex> lock(mem_mu_);
            mem_[key] = {mem_seq_++, std::move(text)};
        }
        stores_.fetch_add(1, std::memory_order_relaxed);
        bytes_written_.fetch_add(size, std::memory_order_relaxed);
        support::MetricsRegistry& metrics =
            support::MetricsRegistry::global();
        if (metrics.enabled()) {
            metrics.counter("cache.stores").add();
            metrics.counter("cache.bytes_written").add(size);
        }
        return;
    }
    const std::string tmp = path + ".tmp";
    const std::string text = encodeUnit(unit);
    {
        std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
        if (!outf) {
            warn("cannot write cache entry " + tmp);
            return;
        }
        outf << text;
        if (!outf.good()) {
            warn("short write for cache entry " + tmp);
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    // Rename-into-place keeps concurrent readers (and interrupted runs)
    // from ever observing a partially written entry.
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("cannot publish cache entry " + path + ": " + ec.message());
        fs::remove(tmp, ec);
        return;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(text.size(), std::memory_order_relaxed);
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.counter("cache.stores").add();
        metrics.counter("cache.bytes_written").add(text.size());
    }
}

void
AnalysisCache::trim(std::uint64_t max_bytes)
{
    if (readonly_)
        return;
    if (memory_) {
        // Oldest-stored entries go first, mirroring the disk tier's
        // oldest-mtime policy with an exact (not timestamp-granular)
        // insertion order.
        support::MetricsRegistry& metrics =
            support::MetricsRegistry::global();
        std::lock_guard<std::mutex> lock(mem_mu_);
        std::uint64_t total = 0;
        for (const auto& [key, entry] : mem_)
            total += entry.second.size();
        while (total > max_bytes && !mem_.empty()) {
            auto oldest = mem_.begin();
            for (auto it = mem_.begin(); it != mem_.end(); ++it)
                if (it->second.first < oldest->second.first)
                    oldest = it;
            total -= oldest->second.second.size();
            mem_.erase(oldest);
            evictions_.fetch_add(1, std::memory_order_relaxed);
            if (metrics.enabled())
                metrics.counter("cache.evictions").add();
        }
        return;
    }
    struct Entry
    {
        fs::path path;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    // A second process (or thread) may be publishing and evicting
    // concurrently, so every filesystem step tolerates entries appearing
    // and vanishing mid-scan: stat failures skip the entry, an iterator
    // error ends the scan with whatever was collected, and a remove that
    // loses the race still counts the bytes as gone.
    fs::directory_iterator it(dir_, ec);
    if (ec)
        return;
    for (fs::directory_iterator end; it != end; it.increment(ec)) {
        if (ec)
            break;
        const fs::directory_entry& de = *it;
        if (de.path().extension() != ".mcu")
            continue;
        std::error_code sec;
        std::uint64_t size = de.file_size(sec);
        if (sec)
            continue;
        fs::file_time_type mtime = de.last_write_time(sec);
        if (sec)
            continue;
        entries.push_back({de.path(), size, mtime});
        total += size;
    }
    if (total <= max_bytes)
        return;
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    for (const Entry& entry : entries) {
        if (total <= max_bytes)
            break;
        std::error_code rec;
        bool removed = fs::remove(entry.path, rec);
        if (removed) {
            evictions_.fetch_add(1, std::memory_order_relaxed);
            if (metrics.enabled())
                metrics.counter("cache.evictions").add();
        } else if (rec) {
            // Couldn't remove and it still exists (permissions?): its
            // bytes remain, keep evicting others.
            continue;
        }
        // Removed by us or already gone (ENOENT race with a concurrent
        // trimmer): either way those bytes no longer count.
        total -= entry.size;
    }
}

CacheStats
AnalysisCache::stats() const
{
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    s.corrupt = corrupt_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    return s;
}

std::vector<std::string>
AnalysisCache::takeWarnings()
{
    std::lock_guard<std::mutex> lock(warnings_mu_);
    std::vector<std::string> out = std::move(warnings_);
    warnings_.clear();
    return out;
}

std::string
AnalysisCache::encodeUnit(const CachedUnit& unit)
{
    std::ostringstream os;
    os << "mccheck-cache " << kCacheFormatVersion << ' '
       << support::kToolVersion << '\n';
    os << "checker " << encodeField(unit.checker) << '\n';
    os << "function " << encodeField(unit.function) << '\n';
    os << "state " << unit.state.size() << '\n';
    os << unit.state << '\n';
    os << "diags " << unit.diags.size() << '\n';
    for (const CachedDiagnostic& d : unit.diags) {
        os << "diag " << d.severity << ' ' << d.line << ' ' << d.column
           << ' ' << d.trace.size() << ' ' << d.wsteps.size() << ' '
           << d.wblocks.size() << ' ' << (d.wtruncated ? 1 : 0) << ' '
           << encodeField(d.file) << ' ' << encodeField(d.checker) << ' '
           << encodeField(d.rule) << ' ' << encodeField(d.message)
           << '\n';
        for (const std::string& frame : d.trace)
            os << "trace " << encodeField(frame) << '\n';
        for (const CachedWitnessStep& s : d.wsteps)
            os << "wstep " << s.line << ' ' << s.column << ' '
               << encodeField(s.from) << ' ' << encodeField(s.to) << ' '
               << encodeField(s.file) << ' ' << encodeField(s.note)
               << '\n';
        for (int block : d.wblocks)
            os << "wblock " << block << '\n';
    }
    std::string body = os.str();
    return body + "sum " + support::hashHex(support::fnv1a(body)) + "\n";
}

bool
AnalysisCache::decodeUnit(const std::string& text, CachedUnit& out,
                          std::string& error)
{
    // Verify the checksum over everything before the final "sum " line
    // first: it catches truncation and bit flips in one test and lets the
    // field parser below assume structurally intact input.
    if (text.empty() || text.back() != '\n') {
        error = "truncated entry";
        return false;
    }
    std::size_t sum_pos = text.rfind("sum ", text.size() - 1);
    // The sum line must be the last line and start at a line boundary.
    if (sum_pos == std::string::npos ||
        (sum_pos != 0 && text[sum_pos - 1] != '\n')) {
        error = "missing checksum";
        return false;
    }
    std::string_view sum_line(text.data() + sum_pos,
                              text.size() - sum_pos - 1);
    if (text.find('\n', sum_pos) != text.size() - 1) {
        error = "trailing data after checksum";
        return false;
    }
    std::string body = text.substr(0, sum_pos);
    std::string expected =
        "sum " + support::hashHex(support::fnv1a(body));
    if (std::string(sum_line) != expected) {
        error = "checksum mismatch";
        return false;
    }

    LineCursor cursor{body, 0};
    std::string_view line;

    if (!cursor.nextLine(line)) {
        error = "empty entry";
        return false;
    }
    auto header = splitFields(line);
    long long format = 0;
    if (header.size() != 3 || header[0] != "mccheck-cache" ||
        !parseInt(header[1], format)) {
        error = "bad header";
        return false;
    }
    if (format != kCacheFormatVersion) {
        error = "cache format version mismatch";
        return false;
    }
    if (header[2] != support::kToolVersion) {
        error = "tool version mismatch";
        return false;
    }

    auto field_line = [&](std::string_view tag,
                          std::string& value) -> bool {
        if (!cursor.nextLine(line))
            return false;
        auto fields = splitFields(line);
        return fields.size() == 2 && fields[0] == tag &&
               decodeField(fields[1], value);
    };

    out = CachedUnit();
    if (!field_line("checker", out.checker) ||
        !field_line("function", out.function)) {
        error = "bad identity fields";
        return false;
    }

    if (!cursor.nextLine(line)) {
        error = "missing state";
        return false;
    }
    auto state_fields = splitFields(line);
    long long state_size = 0;
    if (state_fields.size() != 2 || state_fields[0] != "state" ||
        !parseInt(state_fields[1], state_size) || state_size < 0 ||
        cursor.pos + static_cast<std::size_t>(state_size) + 1 >
            body.size()) {
        error = "bad state header";
        return false;
    }
    out.state = body.substr(cursor.pos,
                            static_cast<std::size_t>(state_size));
    cursor.pos += static_cast<std::size_t>(state_size);
    if (cursor.pos >= body.size() || body[cursor.pos] != '\n') {
        error = "bad state terminator";
        return false;
    }
    ++cursor.pos;

    if (!cursor.nextLine(line)) {
        error = "missing diags header";
        return false;
    }
    auto diag_header = splitFields(line);
    long long ndiags = 0;
    if (diag_header.size() != 2 || diag_header[0] != "diags" ||
        !parseInt(diag_header[1], ndiags) || ndiags < 0) {
        error = "bad diags header";
        return false;
    }
    for (long long i = 0; i < ndiags; ++i) {
        if (!cursor.nextLine(line)) {
            error = "missing diag line";
            return false;
        }
        auto f = splitFields(line);
        long long sev = 0, dline = 0, dcol = 0, ntrace = 0;
        long long nsteps = 0, nblocks = 0, wtrunc = 0;
        CachedDiagnostic d;
        if (f.size() != 12 || f[0] != "diag" || !parseInt(f[1], sev) ||
            !parseInt(f[2], dline) || !parseInt(f[3], dcol) ||
            !parseInt(f[4], ntrace) || ntrace < 0 ||
            !parseInt(f[5], nsteps) || nsteps < 0 ||
            !parseInt(f[6], nblocks) || nblocks < 0 ||
            !parseInt(f[7], wtrunc) || wtrunc < 0 || wtrunc > 1 ||
            sev < 0 || sev > 2 || !decodeField(f[8], d.file) ||
            !decodeField(f[9], d.checker) || !decodeField(f[10], d.rule) ||
            !decodeField(f[11], d.message)) {
            error = "bad diag line";
            return false;
        }
        d.severity = static_cast<int>(sev);
        d.line = static_cast<int>(dline);
        d.column = static_cast<int>(dcol);
        d.wtruncated = wtrunc != 0;
        for (long long t = 0; t < ntrace; ++t) {
            if (!cursor.nextLine(line)) {
                error = "missing trace line";
                return false;
            }
            auto tf = splitFields(line);
            std::string frame;
            if (tf.size() != 2 || tf[0] != "trace" ||
                !decodeField(tf[1], frame)) {
                error = "bad trace line";
                return false;
            }
            d.trace.push_back(std::move(frame));
        }
        for (long long s = 0; s < nsteps; ++s) {
            if (!cursor.nextLine(line)) {
                error = "missing wstep line";
                return false;
            }
            auto sf = splitFields(line);
            long long sline = 0, scol = 0;
            CachedWitnessStep step;
            if (sf.size() != 7 || sf[0] != "wstep" ||
                !parseInt(sf[1], sline) || !parseInt(sf[2], scol) ||
                !decodeField(sf[3], step.from) ||
                !decodeField(sf[4], step.to) ||
                !decodeField(sf[5], step.file) ||
                !decodeField(sf[6], step.note)) {
                error = "bad wstep line";
                return false;
            }
            step.line = static_cast<int>(sline);
            step.column = static_cast<int>(scol);
            d.wsteps.push_back(std::move(step));
        }
        for (long long b = 0; b < nblocks; ++b) {
            if (!cursor.nextLine(line)) {
                error = "missing wblock line";
                return false;
            }
            auto bf = splitFields(line);
            long long block = 0;
            if (bf.size() != 2 || bf[0] != "wblock" ||
                !parseInt(bf[1], block)) {
                error = "bad wblock line";
                return false;
            }
            d.wblocks.push_back(static_cast<int>(block));
        }
        out.diags.push_back(std::move(d));
    }
    if (cursor.pos != body.size()) {
        error = "trailing data";
        return false;
    }
    return true;
}

CachedDiagnostic
AnalysisCache::toCached(const support::Diagnostic& diag,
                        const support::SourceManager& sm)
{
    CachedDiagnostic out;
    out.severity = static_cast<int>(diag.severity);
    out.file = sm.fileName(diag.loc.file_id);
    out.line = diag.loc.line;
    out.column = diag.loc.column;
    out.checker = diag.checker;
    out.rule = diag.rule;
    out.message = diag.message;
    out.trace = diag.trace;
    out.wtruncated = diag.witness.truncated;
    out.wblocks = diag.witness.blocks;
    for (const support::WitnessStep& step : diag.witness.steps) {
        CachedWitnessStep cs;
        cs.from = step.from_state;
        cs.to = step.to_state;
        cs.file = sm.fileName(step.loc.file_id);
        cs.line = step.loc.line;
        cs.column = step.loc.column;
        cs.note = step.note;
        out.wsteps.push_back(std::move(cs));
    }
    return out;
}

bool
AnalysisCache::fromCached(
    const CachedDiagnostic& cached,
    const std::map<std::string, std::int32_t>& file_ids,
    support::Diagnostic& out)
{
    auto it = file_ids.find(cached.file);
    if (it == file_ids.end())
        return false;
    // Resolve every witness-step file before mutating `out`: one
    // unresolvable name misses the whole unit rather than replaying a
    // finding with a mangled witness.
    support::Witness witness;
    witness.truncated = cached.wtruncated;
    witness.blocks = cached.wblocks;
    for (const CachedWitnessStep& cs : cached.wsteps) {
        auto sit = file_ids.find(cs.file);
        if (sit == file_ids.end())
            return false;
        support::WitnessStep step;
        step.from_state = cs.from;
        step.to_state = cs.to;
        step.loc = support::SourceLoc{sit->second, cs.line, cs.column};
        step.note = cs.note;
        witness.steps.push_back(std::move(step));
    }
    out.severity = static_cast<support::Severity>(cached.severity);
    out.loc = support::SourceLoc{it->second, cached.line, cached.column};
    out.checker = cached.checker;
    out.rule = cached.rule;
    out.message = cached.message;
    out.trace = cached.trace;
    out.witness = std::move(witness);
    return true;
}

std::map<std::string, std::int32_t>
AnalysisCache::fileIdsByName(const support::SourceManager& sm)
{
    std::map<std::string, std::int32_t> out;
    // Id 0 is the "<unknown>" synthesized-location sentinel; real files
    // are 1..fileCount(). First registration wins on duplicate names,
    // matching how names render in diagnostics.
    for (std::int32_t id = 0; id <= sm.fileCount(); ++id)
        out.emplace(sm.fileName(id), id);
    return out;
}

} // namespace mc::cache
