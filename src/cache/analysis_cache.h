#ifndef MCHECK_CACHE_ANALYSIS_CACHE_H
#define MCHECK_CACHE_ANALYSIS_CACHE_H

#include "support/diagnostics.h"
#include "support/source_manager.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mc::cache {

/**
 * Bump when the on-disk entry layout changes. Folded into every cache
 * key *and* written in each entry header, so a new binary never reads an
 * old layout (key miss) and a tampered header is rejected (load error).
 */
inline constexpr int kCacheFormatVersion = 2;

/**
 * One witness step as stored on disk. Like diagnostic locations, the
 * step's location travels by file *name* and is re-resolved against the
 * current run's SourceManager on replay, so warm-run witnesses are
 * byte-identical to cold ones.
 */
struct CachedWitnessStep
{
    std::string from;
    std::string to;
    std::string file;
    int line = 0;
    int column = 0;
    std::string note;
};

/**
 * One diagnostic as stored on disk. Locations are carried by file *name*
 * rather than the run-local numeric file id: ids depend on registration
 * order inside one process, names are stable across runs. Replay
 * re-resolves names against the current run's SourceManager.
 */
struct CachedDiagnostic
{
    int severity = 0; // support::Severity as int
    std::string file; // "<unknown>" for synthesized locations
    int line = 0;
    int column = 0;
    std::string checker;
    std::string rule;
    std::string message;
    std::vector<std::string> trace;
    /** Witness payload (empty unless the run captured provenance). */
    std::vector<CachedWitnessStep> wsteps;
    std::vector<int> wblocks;
    bool wtruncated = false;
};

/**
 * Everything one (function, checker) work unit produced: the diagnostics
 * its private sink collected (in emission order) and the checker's
 * serialized per-function state (Checker::saveState), replayed through
 * Checker::loadState + absorb on a hit so warm runs are byte-identical
 * to cold ones.
 */
struct CachedUnit
{
    std::string checker;
    std::string function;
    /** Opaque Checker::saveState blob (applied count + summaries). */
    std::string state;
    std::vector<CachedDiagnostic> diags;
};

/** Monotonic tallies for one cache's lifetime (always on, lock-free). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
};

/**
 * Persistent, content-addressed store of per-(function, checker)
 * analysis results.
 *
 * Entries are keyed by a 64-bit content hash (engine version, checker
 * identity + options + metal source, protocol-spec fingerprint, function
 * token-stream fingerprint — derived by the caller) and live as one text
 * file per key, `<16-hex>.mcu`, under the cache directory. Every entry
 * ends in an FNV-1a checksum line; lookups that find a truncated,
 * version-mismatched, bit-flipped, or otherwise unparsable entry count
 * it as corrupt, record a warning, and report a miss — the caller falls
 * back to cold analysis, never to stale findings.
 *
 * Thread-safe: lookups and stores touch distinct files per key, stats
 * are atomics, and the warning list is mutex-guarded, so the parallel
 * runner's workers may share one instance.
 *
 * In readonly mode stores are dropped (hit rates still tally), and
 * corrupt entries are left in place for post-mortem instead of being
 * deleted.
 */
class AnalysisCache
{
  public:
    /**
     * Opens (and unless readonly, creates) `dir`. Throws
     * std::runtime_error if the directory cannot be created or is not
     * usable.
     */
    explicit AnalysisCache(std::string dir, bool readonly = false);

    /**
     * A cache with no backing directory: entries live in a mutex-guarded
     * in-process map, in the exact on-disk encoding (encodeUnit bytes,
     * checksum line included), so lookups exercise the same decode +
     * validation path and replay semantics as the persistent store. This
     * is the resident per-unit result store of the checking daemon —
     * fingerprint-keyed invalidation with zero filesystem traffic.
     * `trim` evicts oldest-stored entries first.
     */
    static std::unique_ptr<AnalysisCache> inMemory();

    const std::string& dir() const { return dir_; }
    bool readonly() const { return readonly_; }
    bool memoryBacked() const { return memory_; }

    /** Live entries (memory mode: exact; disk mode: a directory scan). */
    std::uint64_t entryCount() const;

    /** Total encoded bytes currently resident (memory mode only). */
    std::uint64_t residentBytes() const;

    /**
     * Load the entry for `key` into `out`. Returns false (a miss) if the
     * entry does not exist or fails validation.
     */
    bool lookup(std::uint64_t key, CachedUnit& out);

    /** Write the entry for `key`; no-op in readonly mode. */
    void store(std::uint64_t key, const CachedUnit& unit);

    /**
     * Evict least-recently-modified entries until the cache holds at
     * most `max_bytes` of entry files. 0 evicts everything.
     */
    void trim(std::uint64_t max_bytes);

    /** Point-in-time copy of the tallies. */
    CacheStats stats() const;

    /** Drain accumulated warnings (corrupt entries, I/O failures). */
    std::vector<std::string> takeWarnings();

    /** On-disk path for a key (exposed for tests' corruption harness). */
    std::string entryPath(std::uint64_t key) const;

    // ---- serialization (public for tests and the bench) ---------------

    /** Render `unit` in the on-disk format, checksum line included. */
    static std::string encodeUnit(const CachedUnit& unit);

    /**
     * Parse an encoded entry. Returns false with a reason in `error` for
     * anything malformed: bad checksum, wrong format/tool version,
     * truncation, field corruption.
     */
    static bool decodeUnit(const std::string& text, CachedUnit& out,
                           std::string& error);

    /** Strip a Diagnostic down to its storable form. */
    static CachedDiagnostic
    toCached(const support::Diagnostic& diag,
             const support::SourceManager& sm);

    /**
     * Rebuild a Diagnostic, resolving the stored file name through
     * `file_ids` (name -> current file id; "<unknown>" maps to id 0).
     * Returns false if the file name is not registered this run — the
     * caller should treat the whole unit as a miss.
     */
    static bool
    fromCached(const CachedDiagnostic& cached,
               const std::map<std::string, std::int32_t>& file_ids,
               support::Diagnostic& out);

    /** name -> id map over every file registered with `sm`. */
    static std::map<std::string, std::int32_t>
    fileIdsByName(const support::SourceManager& sm);

  private:
    struct MemoryTag
    {
    };
    explicit AnalysisCache(MemoryTag);

    void warn(std::string message);
    void countMiss(bool corrupt_entry, const std::string& path,
                   const std::string& reason);

    std::string dir_;
    bool readonly_ = false;
    bool memory_ = false;

    /** Memory-mode store: key -> (insertion sequence, encoded entry). */
    mutable std::mutex mem_mu_;
    std::map<std::uint64_t, std::pair<std::uint64_t, std::string>> mem_;
    std::uint64_t mem_seq_ = 0;

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stores_{0};
    std::atomic<std::uint64_t> corrupt_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> bytes_read_{0};
    std::atomic<std::uint64_t> bytes_written_{0};

    std::mutex warnings_mu_;
    std::vector<std::string> warnings_;
};

} // namespace mc::cache

#endif // MCHECK_CACHE_ANALYSIS_CACHE_H
