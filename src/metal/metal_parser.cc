#include "metal/metal_parser.h"

#include "lang/lexer.h"
#include "lang/parser.h"
#include "support/text.h"

#include <fstream>
#include <sstream>

namespace mc::metal {

using lang::TokKind;
using lang::Token;

namespace {

/**
 * Splits off the optional `{ ... }` prelude from the head of a metal
 * file. Returns the prelude's inner text and sets `rest_begin` to the
 * offset where the `sm` definition starts.
 */
std::string
extractPrelude(const std::string& text, std::size_t& rest_begin)
{
    std::size_t i = 0;
    auto skip_trivia = [&]() {
        while (i < text.size()) {
            char c = text[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
            } else if (c == '/' && i + 1 < text.size() &&
                       text[i + 1] == '/') {
                while (i < text.size() && text[i] != '\n')
                    ++i;
            } else if (c == '/' && i + 1 < text.size() &&
                       text[i + 1] == '*') {
                i += 2;
                while (i + 1 < text.size() &&
                       !(text[i] == '*' && text[i + 1] == '/'))
                    ++i;
                i += 2;
            } else {
                return;
            }
        }
    };

    skip_trivia();
    rest_begin = i;
    if (i >= text.size() || text[i] != '{')
        return "";

    std::size_t open = i;
    int depth = 0;
    for (; i < text.size(); ++i) {
        if (text[i] == '{')
            ++depth;
        else if (text[i] == '}' && --depth == 0)
            break;
    }
    if (depth != 0)
        throw MetalParseError("unterminated prelude block");
    std::string prelude = text.substr(open + 1, i - open - 1);
    rest_begin = i + 1;
    return std::string(support::trim(prelude));
}

class MetalParser
{
  public:
    MetalParser(const std::string& body, const std::string& origin)
        : origin_(origin)
    {
        file_id_ = sm_src_.addFile(origin, body);
        body_ = sm_src_.fileContents(file_id_);
        lang::Lexer lexer(sm_src_, file_id_);
        tokens_ = lexer.lexAll();
    }

    MetalProgram
    parse()
    {
        MetalProgram program;
        program.patterns = std::make_shared<match::PatternContext>();
        pc_ = program.patterns.get();

        expectIdent("sm");
        program.name = std::string(expectKind(TokKind::Identifier,
                                              "state machine name").text);
        program.sm = std::make_shared<StateMachine>(program.name);
        sm_out_ = program.sm.get();

        expectKind(TokKind::LBrace, "to open sm body");
        while (!check(TokKind::RBrace)) {
            if (check(TokKind::End))
                fail("unexpected end of file in sm body");
            parseItem();
        }
        expectKind(TokKind::RBrace, "to close sm body");
        return program;
    }

  private:
    const Token& peek(int ahead = 0) const
    {
        std::size_t p = pos_ + static_cast<std::size_t>(ahead);
        return p < tokens_.size() ? tokens_[p] : tokens_.back();
    }

    const Token& advance()
    {
        const Token& tok = tokens_[pos_];
        if (pos_ + 1 < tokens_.size())
            ++pos_;
        return tok;
    }

    bool check(TokKind kind) const { return peek().kind == kind; }

    bool checkIdent(std::string_view text) const
    {
        return peek().kind == TokKind::Identifier && peek().text == text;
    }

    bool accept(TokKind kind)
    {
        if (check(kind)) {
            advance();
            return true;
        }
        return false;
    }

    const Token&
    expectKind(TokKind kind, const char* what)
    {
        if (!check(kind)) {
            std::ostringstream os;
            os << "expected " << what << " ('" << lang::tokKindName(kind)
               << "'), found '" << lang::tokKindName(peek().kind) << '\'';
            fail(os.str());
        }
        return advance();
    }

    void
    expectIdent(std::string_view text)
    {
        if (!checkIdent(text))
            fail("expected '" + std::string(text) + "'");
        advance();
    }

    [[noreturn]] void
    fail(const std::string& message) const
    {
        std::ostringstream os;
        os << origin_ << ':' << peek().loc.line << ": " << message;
        throw MetalParseError(os.str());
    }

    std::size_t
    offsetOf(const Token& tok) const
    {
        return static_cast<std::size_t>(tok.text.data() - body_.data());
    }

    /** Raw text of a brace-balanced `{...}` starting at the current '{'. */
    std::string
    takeBracedText()
    {
        const Token& open = peek();
        if (!check(TokKind::LBrace))
            fail("expected '{' to open pattern");
        int depth = 0;
        std::size_t start = offsetOf(open);
        while (true) {
            if (check(TokKind::End))
                fail("unterminated '{' in pattern");
            const Token& tok = advance();
            if (tok.kind == TokKind::LBrace) {
                ++depth;
            } else if (tok.kind == TokKind::RBrace && --depth == 0) {
                std::size_t end = offsetOf(tok) + tok.text.size();
                return std::string(body_.substr(start, end - start));
            }
        }
    }

    /** `==>` is lexed as `==` `>`; both tokens must be present. */
    void
    expectArrow()
    {
        if (!check(TokKind::EqEq) || peek(1).kind != TokKind::Gt)
            fail("expected '==>'");
        advance();
        advance();
    }

    bool
    atArrow() const
    {
        return check(TokKind::EqEq) && peek(1).kind == TokKind::Gt;
    }

    void
    parseItem()
    {
        if (checkIdent("decl")) {
            parseDecl();
        } else if (checkIdent("pat")) {
            parseNamedPattern();
        } else if (check(TokKind::Identifier) &&
                   peek(1).kind == TokKind::Colon) {
            parseStateDef();
        } else {
            fail("expected 'decl', 'pat', or a state definition");
        }
    }

    void
    parseDecl()
    {
        advance(); // decl
        expectKind(TokKind::LBrace, "to open wildcard kind");
        const Token& kind_tok = advance();
        auto kind = match::wildcardKindFromName(kind_tok.text);
        if (!kind)
            fail("unknown wildcard kind '" + std::string(kind_tok.text) +
                 "'");
        expectKind(TokKind::RBrace, "to close wildcard kind");
        do {
            const Token& name =
                expectKind(TokKind::Identifier, "wildcard name");
            wildcards_.push_back(
                match::WildcardDecl{std::string(name.text), *kind});
        } while (accept(TokKind::Comma));
        expectKind(TokKind::Semicolon, "after decl");
    }

    /** One pattern atom: a braced template or a named-pattern reference. */
    match::Pattern
    parsePatternAtom()
    {
        if (check(TokKind::LBrace)) {
            std::string text = takeBracedText();
            // The template compiles through the dialect parser, whose
            // ParseError/LexError must not escape parseMetal's contract:
            // everything malformed surfaces as MetalParseError.
            try {
                return match::Pattern::compile(*pc_, text, wildcards_);
            } catch (const lang::ParseError& e) {
                fail("malformed pattern template: " +
                     std::string(e.what()));
            } catch (const lang::LexError& e) {
                fail("malformed pattern template: " +
                     std::string(e.what()));
            }
        }
        if (check(TokKind::Identifier)) {
            std::string name(advance().text);
            auto it = named_.find(name);
            if (it == named_.end())
                fail("unknown pattern name '" + name + "'");
            return it->second;
        }
        fail("expected a pattern");
    }

    void
    parseNamedPattern()
    {
        advance(); // pat
        const Token& name = expectKind(TokKind::Identifier, "pattern name");
        expectKind(TokKind::Assign, "after pattern name");
        match::Pattern pattern = parsePatternAtom();
        while (accept(TokKind::Pipe))
            pattern.addAlternatives(parsePatternAtom());
        expectKind(TokKind::Semicolon, "after pattern definition");
        named_.emplace(std::string(name.text), std::move(pattern));
    }

    /** Stable rule id from an error message: "data send, zero len" ->
     *  "data-send-zero-len". */
    static std::string
    slugify(const std::string& message)
    {
        std::string slug;
        for (char c : message) {
            if (std::isalnum(static_cast<unsigned char>(c)))
                slug += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
            else if (!slug.empty() && slug.back() != '-')
                slug += '-';
        }
        while (!slug.empty() && slug.back() == '-')
            slug.pop_back();
        return slug;
    }

    /** Parse `{ err("..."); }` (or warn) into `rule`: sets the action and
     *  derives the rule's stable id from the message. */
    void
    parseActionBlock(StateMachine::Rule& rule)
    {
        expectKind(TokKind::LBrace, "to open action");
        bool is_warning = false;
        if (checkIdent("err")) {
            advance();
        } else if (checkIdent("warn")) {
            is_warning = true;
            advance();
        } else {
            fail("expected 'err' or 'warn' in action");
        }
        expectKind(TokKind::LParen, "after err");
        const Token& msg =
            expectKind(TokKind::StringLiteral, "error message");
        expectKind(TokKind::RParen, "after error message");
        accept(TokKind::Semicolon);
        expectKind(TokKind::RBrace, "to close action");

        // Strip the quotes from the literal's spelling.
        std::string text(msg.text.substr(1, msg.text.size() - 2));
        rule.id = slugify(text);
        if (is_warning) {
            rule.action = [text](const ActionContext& action) {
                action.warn(text);
            };
        } else {
            rule.action = [text](const ActionContext& action) {
                action.err(text);
            };
        }
    }

    void
    parseStateDef()
    {
        std::string state(advance().text);
        advance(); // ':'
        do {
            StateMachine::Rule rule;
            rule.pattern = parsePatternAtom();
            expectArrow();
            if (check(TokKind::Identifier)) {
                rule.next_state = std::string(advance().text);
                if (check(TokKind::LBrace))
                    parseActionBlock(rule);
            } else if (check(TokKind::LBrace)) {
                parseActionBlock(rule);
            } else {
                fail("expected a target state or an action after '==>'");
            }
            sm_out_->addRule(state, std::move(rule));
        } while (accept(TokKind::Pipe));
        expectKind(TokKind::Semicolon, "after state definition");
    }

    std::string origin_;
    support::SourceManager sm_src_;
    std::int32_t file_id_ = 0;
    std::string_view body_;
    std::vector<Token> tokens_;
    std::size_t pos_ = 0;

    match::PatternContext* pc_ = nullptr;
    StateMachine* sm_out_ = nullptr;
    std::vector<match::WildcardDecl> wildcards_;
    std::map<std::string, match::Pattern> named_;
};

} // namespace

MetalProgram
parseMetal(const std::string& source, const std::string& origin)
{
    std::size_t rest = 0;
    std::string prelude = extractPrelude(source, rest);
    MetalParser parser(source.substr(rest), origin);
    MetalProgram program = parser.parse();
    program.prelude = std::move(prelude);
    return program;
}

MetalProgram
loadMetalFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw MetalParseError("cannot open metal file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseMetal(buffer.str(), path);
}

int
metalSourceLines(const std::string& source)
{
    int lines = 0;
    bool in_block_comment = false;
    for (const std::string& raw : support::split(source, '\n')) {
        std::string_view line = support::trim(raw);
        if (in_block_comment) {
            auto close = line.find("*/");
            if (close == std::string_view::npos)
                continue;
            line = support::trim(line.substr(close + 2));
            in_block_comment = false;
        }
        // Strip line comments and block comments opened on this line.
        std::string effective;
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (line[i] == '/' && i + 1 < line.size()) {
                if (line[i + 1] == '/')
                    break;
                if (line[i + 1] == '*') {
                    auto close = line.find("*/", i + 2);
                    if (close == std::string_view::npos) {
                        in_block_comment = true;
                        break;
                    }
                    i = close + 1;
                    continue;
                }
            }
            effective += line[i];
        }
        if (!support::trim(effective).empty())
            ++lines;
    }
    return lines;
}

} // namespace mc::metal
