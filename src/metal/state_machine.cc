#include "metal/state_machine.h"

#include "metal/transition_table.h"

namespace mc::metal {

// Out of line: constructing/destroying unique_ptr<CompiledSm> needs the
// complete type.
StateMachine::StateMachine(std::string name)
    : name_(std::move(name)), timer_name_("engine.sm." + name_)
{}

StateMachine::~StateMachine() = default;

const CompiledSm&
StateMachine::compiled() const
{
    std::call_once(compiled_once_,
                   [&] { compiled_ = std::make_unique<CompiledSm>(*this); });
    return *compiled_;
}

void
StateMachine::addRule(const std::string& state, Rule rule)
{
    // The start state is the first state defined — including `all`:
    // Figure 3 of the paper deliberately starts in `all` so that sends
    // seen before any length assignment are ignored.
    if (start_.empty() && state != kStop)
        start_ = state;
    if (rule.id.empty()) {
        rule.id = state + "#" +
                  std::to_string(rules_[state].size());
    }
    rules_[state].push_back(std::move(rule));
}

const std::vector<StateMachine::Rule>&
StateMachine::rulesFor(const std::string& state) const
{
    static const std::vector<Rule> empty;
    auto it = rules_.find(state);
    return it == rules_.end() ? empty : it->second;
}

std::vector<std::string>
StateMachine::states() const
{
    std::vector<std::string> out;
    for (const auto& [state, rules] : rules_)
        out.push_back(state);
    return out;
}

int
StateMachine::ruleCount() const
{
    int n = 0;
    for (const auto& [state, rules] : rules_)
        n += static_cast<int>(rules.size());
    return n;
}

} // namespace mc::metal
