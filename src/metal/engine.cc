#include "metal/engine.h"

#include "metal/path_walker.h"
#include "support/fault_injection.h"
#include "support/metrics.h"
#include "support/trace.h"

#include <set>

namespace mc::metal {

namespace {

/** Walker state: just the SM state name. */
struct SmState
{
    std::string state;

    std::string key() const { return state; }
    bool dead() const { return state == StateMachine::kStop; }
};

} // namespace

SmRunResult
runStateMachine(const StateMachine& sm, const cfg::Cfg& cfg,
                support::DiagnosticSink& sink, const SmRunOptions& options)
{
    // Observability: locals are tallied unconditionally (they are part of
    // SmRunResult anyway); the registry/recorder are only touched when
    // enabled, so a disabled run pays one boolean load here and one at
    // the end.
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    support::TraceRecorder& tracer = support::TraceRecorder::global();
    support::ScopedTimer timer(
        metrics.enabled() ? &metrics.timer("engine.sm." + sm.name())
                          : nullptr);
    support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                            sm.name(), "engine");
    if (tracer.enabled()) {
        if (!options.trace_label.empty())
            span.arg("function", options.trace_label);
        else if (cfg.function)
            span.arg("function", cfg.function->name);
    }

    SmRunResult result;
    // Dedup firings: one (rule, statement) pair fires the action and is
    // counted once, no matter how many paths cross it in the same state.
    std::set<std::pair<std::string, support::SourceLoc>> fired;

    auto try_rules = [&](SmState& st, const lang::Stmt& stmt,
                         const std::set<std::string>& stmt_idents,
                         const std::vector<StateMachine::Rule>& rules)
        -> bool {
        for (const StateMachine::Rule& rule : rules) {
            // Required-identifier prefilter: skip full unification when
            // the statement cannot possibly contain the pattern.
            if (!rule.pattern.couldMatch(stmt_idents))
                continue;
            auto bindings = rule.pattern.matchInStmt(stmt);
            if (!bindings)
                continue;
            if (fired.emplace(rule.id, stmt.loc).second) {
                ++result.firings[rule.id];
                if (rule.action) {
                    ActionContext action_ctx(stmt, *bindings, sink,
                                             sm.name(), rule.id);
                    rule.action(action_ctx);
                }
            }
            if (!rule.next_state.empty() && rule.next_state != st.state) {
                st.state = rule.next_state;
                ++result.transitions;
            }
            return true;
        }
        return false;
    };

    PathWalker<SmState>::Hooks hooks;
    hooks.on_stmt = [&](SmState& st, const lang::Stmt& stmt) {
        std::set<std::string> idents;
        match::Pattern::collectIdents(stmt, idents);
        if (try_rules(st, stmt, idents, sm.rulesFor(st.state)))
            return;
        try_rules(st, stmt, idents, sm.allRules());
    };

    PathWalker<SmState>::WalkOptions walk_options;
    walk_options.max_visits = options.max_visits;
    walk_options.prune_correlated_branches =
        options.prune_correlated_branches;
    PathWalker<SmState> walker(std::move(hooks), walk_options);
    SmState initial;
    initial.state = sm.startState();
    // Keyed by (machine, function): the same walks fault at any --jobs.
    support::fault::probe(
        "walker.walk",
        sm.name() + "/" +
            (!options.trace_label.empty()
                 ? options.trace_label
                 : (cfg.function ? cfg.function->name : std::string())));
    auto walk = walker.walk(cfg, initial);
    result.visits = walk.visits;
    result.truncated = walk.truncated;
    result.cache_hits = walk.cache_hits;
    result.pruned_edges = walk.pruned_edges;
    result.peak_frontier = walk.peak_frontier;
    result.budget_stop = walk.budget_stop;

    if (metrics.enabled()) {
        metrics.counter("engine.runs").add();
        metrics.counter("engine.visits").add(result.visits);
        metrics.counter("engine.cache_hits").add(result.cache_hits);
        metrics.counter("engine.cache_misses").add(result.visits);
        metrics.counter("engine.pruned_paths").add(result.pruned_edges);
        metrics.counter("engine.sm_transitions").add(result.transitions);
        metrics.counter("engine.truncations").add(result.truncated ? 1 : 0);
        metrics.gauge("engine.peak_frontier").observe(result.peak_frontier);
        std::uint64_t fired = 0;
        for (const auto& [rule, n] : result.firings)
            fired += static_cast<std::uint64_t>(n);
        metrics.counter("engine.rule_firings").add(fired);
    }
    if (tracer.enabled())
        span.arg("visits", std::to_string(result.visits));
    return result;
}

} // namespace mc::metal
