#include "metal/engine.h"

#include "metal/path_walker.h"
#include "metal/transition_table.h"
#include "support/fault_injection.h"
#include "support/interner.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "support/witness.h"

#include <atomic>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mc::metal {

namespace {

/**
 * Human-readable step annotation: the rule that fired and what each
 * wildcard bound to. Built identically from table-pool and legacy
 * bindings (same match, same entry order), preserving byte-for-byte
 * witness equality between strategies.
 */
std::string
witnessNote(const std::string& rule_id, const match::Bindings& bindings)
{
    std::string note = "rule " + rule_id;
    const support::SymbolInterner& interner =
        support::SymbolInterner::global();
    for (const auto& [sym, expr] : bindings.entries) {
        note += ", ";
        note += interner.name(sym);
        note += " = ";
        note += lang::exprToString(*expr);
    }
    return note;
}

/**
 * Append one SM step to the current path's trail (recorded BEFORE the
 * rule's action runs, so a diagnostic the action reports already sees
 * the firing step in its witness).
 */
void
recordWitnessStep(const std::string& from, const std::string& to,
                  const support::SourceLoc& loc, std::string note,
                  unsigned limit, SmRunResult& result)
{
    support::WitnessTrail* trail = support::WitnessTrail::current();
    if (!trail)
        return;
    if (trail->addStep(
            support::WitnessStep{from, to, loc, std::move(note)}, limit))
        ++result.witness_steps;
}

std::atomic<MatchStrategy> g_default_strategy{MatchStrategy::Table};

/**
 * Per-thread transition-table memo: cells and skip bitsets are pure
 * functions of (compiled machine, CFG), so re-checking the same
 * (function, checker) unit — bench repeat passes, warm-cache runs, the
 * daemon's successive requests — reuses the filled table instead of
 * re-unifying every touched (statement, state) pair.
 *
 * Keyed by the FlatCfg arena id and the CompiledSm generation, both
 * process-unique and never reused, so a recreated CFG or machine (even
 * at a recycled address) always misses — no ABA, no stale rule
 * pointers served. Thread-local so the lazily-filled cells need no
 * synchronization; the engine's unit scheduler never runs one unit
 * concurrently with itself anyway, and a miss merely rebuilds. Entries
 * for dead CFGs/machines are unreachable and are dropped by the size
 * cap's wholesale clear. The shared_ptr keeps a checked-out table
 * alive across a hypothetical re-entrant eviction.
 */
std::shared_ptr<TransitionTable>
memoizedTable(const CompiledSm& csm, const cfg::Cfg& cfg)
{
    const std::uint64_t flat_id = cfg::flatCfg(cfg).id();
    const std::uint64_t gen = csm.generation();
    // The packed key is collision-free while both counters fit 32 bits
    // (billions of arenas/machines); on the absurd overflow, skip the
    // memo rather than risk serving the wrong table.
    if ((flat_id >> 32) != 0 || (gen >> 32) != 0)
        return std::make_shared<TransitionTable>(csm, cfg);
    static thread_local std::unordered_map<std::uint64_t,
                                           std::shared_ptr<TransitionTable>>
        cache;
    const std::uint64_t key = (flat_id << 32) | gen;
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    if (cache.size() >= 8192)
        cache.clear();
    auto table = std::make_shared<TransitionTable>(csm, cfg);
    cache.emplace(key, table);
    return table;
}

/** Legacy walker state: just the SM state name. */
struct SmState
{
    std::string state;

    std::string key() const { return state; }
    bool dead() const { return state == StateMachine::kStop; }
};

/** Table walker state: dense state index (4-byte key, exact caching). */
struct TableSmState
{
    StateIdx state = 0;
    StateIdx stop = 0;

    std::uint32_t key() const { return state; }
    bool dead() const { return state == stop; }
};

template <typename WalkResult>
void
fillWalkStats(SmRunResult& result, const WalkResult& walk)
{
    result.visits = walk.visits;
    result.truncated = walk.truncated;
    result.cache_hits = walk.cache_hits;
    result.pruned_edges = walk.pruned_edges;
    result.prune_cache_hits = walk.prune_cache_hits;
    result.prune_skipped_nary = walk.prune_skipped_nary;
    result.peak_frontier = walk.peak_frontier;
    result.budget_stop = walk.budget_stop;
}

template <typename State>
typename PathWalker<State>::WalkOptions
walkOptions(const SmRunOptions& options)
{
    typename PathWalker<State>::WalkOptions walk_options;
    walk_options.max_visits = options.max_visits;
    walk_options.prune_strategy = options.prune_strategy;
    return walk_options;
}

/**
 * Table strategy: compile the per-(function, SM) transition table up
 * front, then walk with O(1) cell lookups per statement.
 */
SmRunResult
runTable(const StateMachine& sm, const cfg::Cfg& cfg,
         support::DiagnosticSink& sink, const SmRunOptions& options)
{
    SmRunResult result;
    const CompiledSm& csm = sm.compiled();
    std::shared_ptr<TransitionTable> table_ptr = memoizedTable(csm, cfg);
    TransitionTable& table = *table_ptr;
    const bool wit = support::witnessEnabled();
    const unsigned wlimit = support::witnessLimit();

    // Dedup firings: one (rule, statement) pair fires the action and is
    // counted once, no matter how many paths cross it in the same state.
    // Keyed on the interned rule id so rules sharing an id string share
    // a dedup slot, exactly like the legacy string-keyed set. A run
    // fires a handful of times at most, so a flat vector with linear
    // membership beats a node-based set (same membership semantics;
    // order is never observed).
    struct FiredSet
    {
        std::vector<std::pair<support::SymbolId, support::SourceLoc>>
            seen;

        bool
        insert(support::SymbolId id, const support::SourceLoc& loc)
        {
            for (const auto& [seen_id, seen_loc] : seen)
                if (seen_id == id && seen_loc == loc)
                    return false;
            seen.emplace_back(id, loc);
            return true;
        }
    } fired;

    // Everything the hooks need, bundled so each lambda captures one
    // pointer and stays inside std::function's small-object buffer —
    // zero hook allocations per run.
    struct Ctx
    {
        TransitionTable& table;
        const CompiledSm& csm;
        const StateMachine& sm;
        support::DiagnosticSink& sink;
        SmRunResult& result;
        FiredSet& fired;
        bool wit;
        unsigned wlimit;
    } ctx{table, csm, sm, sink, result, fired, wit, wlimit};

    typename PathWalker<TableSmState>::Hooks hooks;
    hooks.on_stmt_at = [c = &ctx](TableSmState& st, const lang::Stmt& stmt,
                                  int block, std::size_t pos) {
        const TransitionTable::Cell& cell =
            c->table.cell(block, pos, st.state);
        if (!cell.rule)
            return; // no match: fill() left cell.next == state
        bool is_new = c->fired.insert(cell.id_sym, stmt.loc);
        if (c->wit && (is_new || cell.next != st.state))
            recordWitnessStep(c->csm.stateName(st.state),
                              c->csm.stateName(cell.next), stmt.loc,
                              witnessNote(cell.rule->id,
                                          c->table.bindings(cell)),
                              c->wlimit, c->result);
        if (is_new) {
            ++c->result.firings[cell.rule->id];
            if (cell.rule->action) {
                ActionContext action_ctx(stmt, c->table.bindings(cell),
                                         c->sink, c->sm.name(),
                                         cell.rule->id);
                cell.rule->action(action_ctx);
            }
        }
        if (cell.next != st.state) {
            st.state = cell.next;
            ++c->result.transitions;
        }
    };
    // Block-range prefilter: skip a visited block's whole statement
    // loop when the table proves no candidate of the current state can
    // match anything in it. Exact (never rejects a real match), and the
    // walker ignores it while pruning, so diagnostics and counters stay
    // byte-identical to the legacy oracle in every mode.
    hooks.skip_block = [c = &ctx](const TableSmState& st, int block) {
        return c->table.blockSkippable(block, st.state);
    };

    PathWalker<TableSmState> walker(std::move(hooks),
                                    walkOptions<TableSmState>(options));
    TableSmState initial;
    initial.state = csm.start();
    initial.stop = csm.stop();
    fillWalkStats(result, walker.walk(cfg, initial));
    return result;
}

/**
 * Legacy strategy: re-match every rule at every visit. Kept byte-for-byte
 * equivalent to the table strategy as the differential-test reference.
 */
SmRunResult
runLegacy(const StateMachine& sm, const cfg::Cfg& cfg,
          support::DiagnosticSink& sink, const SmRunOptions& options)
{
    SmRunResult result;
    const bool wit = support::witnessEnabled();
    const unsigned wlimit = support::witnessLimit();
    std::set<std::pair<std::string, support::SourceLoc>> fired;

    auto try_rules = [&](SmState& st, const lang::Stmt& stmt,
                         const std::set<std::string>& stmt_idents,
                         const std::vector<StateMachine::Rule>& rules)
        -> bool {
        for (const StateMachine::Rule& rule : rules) {
            // Required-identifier prefilter: skip full unification when
            // the statement cannot possibly contain the pattern.
            if (!rule.pattern.couldMatch(stmt_idents))
                continue;
            auto bindings = rule.pattern.matchInStmt(stmt);
            if (!bindings)
                continue;
            bool is_new = fired.emplace(rule.id, stmt.loc).second;
            bool changes_state =
                !rule.next_state.empty() && rule.next_state != st.state;
            if (wit && (is_new || changes_state))
                recordWitnessStep(st.state,
                                  changes_state ? rule.next_state
                                                : st.state,
                                  stmt.loc, witnessNote(rule.id, *bindings),
                                  wlimit, result);
            if (is_new) {
                ++result.firings[rule.id];
                if (rule.action) {
                    ActionContext action_ctx(stmt, *bindings, sink,
                                             sm.name(), rule.id);
                    rule.action(action_ctx);
                }
            }
            if (changes_state) {
                st.state = rule.next_state;
                ++result.transitions;
            }
            return true;
        }
        return false;
    };

    PathWalker<SmState>::Hooks hooks;
    hooks.on_stmt = [&](SmState& st, const lang::Stmt& stmt) {
        std::set<std::string> idents;
        match::Pattern::collectIdents(stmt, idents);
        if (try_rules(st, stmt, idents, sm.rulesFor(st.state)))
            return;
        try_rules(st, stmt, idents, sm.allRules());
    };

    PathWalker<SmState> walker(std::move(hooks),
                               walkOptions<SmState>(options));
    SmState initial;
    initial.state = sm.startState();
    fillWalkStats(result, walker.walk(cfg, initial));
    return result;
}

} // namespace

const char*
matchStrategyName(MatchStrategy strategy)
{
    return strategy == MatchStrategy::Legacy ? "legacy" : "table";
}

std::optional<MatchStrategy>
parseMatchStrategy(std::string_view text)
{
    if (text == "table")
        return MatchStrategy::Table;
    if (text == "legacy")
        return MatchStrategy::Legacy;
    return std::nullopt;
}

const char*
matchStrategyChoices()
{
    return "'table' or 'legacy'";
}

MatchStrategy
defaultMatchStrategy()
{
    return g_default_strategy.load(std::memory_order_relaxed);
}

void
setDefaultMatchStrategy(MatchStrategy strategy)
{
    g_default_strategy.store(strategy == MatchStrategy::Legacy
                                 ? MatchStrategy::Legacy
                                 : MatchStrategy::Table,
                             std::memory_order_relaxed);
}

SmRunResult
runStateMachine(const StateMachine& sm, const cfg::Cfg& cfg,
                support::DiagnosticSink& sink, const SmRunOptions& options)
{
    // Observability: locals are tallied unconditionally (they are part of
    // SmRunResult anyway); the registry/recorder are only touched when
    // enabled, so a disabled run pays one boolean load here and one at
    // the end.
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    support::TraceRecorder& tracer = support::TraceRecorder::global();
    support::ScopedTimer timer(
        metrics.enabled() ? &metrics.timer(sm.timerName()) : nullptr);
    support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                            sm.name(), "engine");
    if (tracer.enabled()) {
        if (!options.trace_label.empty())
            span.arg("function", options.trace_label);
        else if (cfg.function)
            span.arg("function", cfg.function->name);
    }

    // Keyed by (machine, function): the same walks fault at any --jobs.
    // The key string is only composed when a fault spec is armed.
    if (support::fault::armed())
        support::fault::probe(
            "walker.walk",
            sm.name() + "/" +
                (!options.trace_label.empty()
                     ? options.trace_label
                     : (cfg.function ? cfg.function->name
                                     : std::string())));

    MatchStrategy strategy = options.match_strategy;
    if (strategy == MatchStrategy::Default)
        strategy = defaultMatchStrategy();
    SmRunResult result = strategy == MatchStrategy::Legacy
                             ? runLegacy(sm, cfg, sink, options)
                             : runTable(sm, cfg, sink, options);

    if (metrics.enabled()) {
        metrics.counter("engine.runs").add();
        metrics.counter("engine.visits").add(result.visits);
        metrics.counter("engine.cache_hits").add(result.cache_hits);
        metrics.counter("engine.cache_misses").add(result.visits);
        metrics.counter("engine.pruned_paths").add(result.pruned_edges);
        metrics.counter("engine.sm_transitions").add(result.transitions);
        metrics.counter("engine.truncations").add(result.truncated ? 1 : 0);
        metrics.gauge("engine.peak_frontier").observe(result.peak_frontier);
        std::uint64_t fired = 0;
        for (const auto& [rule, n] : result.firings)
            fired += static_cast<std::uint64_t>(n);
        metrics.counter("engine.rule_firings").add(fired);
        metrics.counter("witness.steps").add(result.witness_steps);
    }
    if (tracer.enabled())
        span.arg("visits", std::to_string(result.visits));
    return result;
}

} // namespace mc::metal
