#include "metal/engine.h"

#include "metal/path_walker.h"

#include <set>

namespace mc::metal {

namespace {

/** Walker state: just the SM state name. */
struct SmState
{
    std::string state;

    std::string key() const { return state; }
    bool dead() const { return state == StateMachine::kStop; }
};

} // namespace

SmRunResult
runStateMachine(const StateMachine& sm, const cfg::Cfg& cfg,
                support::DiagnosticSink& sink, const SmRunOptions& options)
{
    SmRunResult result;
    // Dedup firings: one (rule, statement) pair fires the action and is
    // counted once, no matter how many paths cross it in the same state.
    std::set<std::pair<std::string, support::SourceLoc>> fired;

    auto try_rules = [&](SmState& st, const lang::Stmt& stmt,
                         const std::set<std::string>& stmt_idents,
                         const std::vector<StateMachine::Rule>& rules)
        -> bool {
        for (const StateMachine::Rule& rule : rules) {
            // Required-identifier prefilter: skip full unification when
            // the statement cannot possibly contain the pattern.
            if (!rule.pattern.couldMatch(stmt_idents))
                continue;
            auto bindings = rule.pattern.matchInStmt(stmt);
            if (!bindings)
                continue;
            if (fired.emplace(rule.id, stmt.loc).second) {
                ++result.firings[rule.id];
                if (rule.action) {
                    ActionContext action_ctx(stmt, *bindings, sink,
                                             sm.name(), rule.id);
                    rule.action(action_ctx);
                }
            }
            if (!rule.next_state.empty())
                st.state = rule.next_state;
            return true;
        }
        return false;
    };

    PathWalker<SmState>::Hooks hooks;
    hooks.on_stmt = [&](SmState& st, const lang::Stmt& stmt) {
        std::set<std::string> idents;
        match::Pattern::collectIdents(stmt, idents);
        if (try_rules(st, stmt, idents, sm.rulesFor(st.state)))
            return;
        try_rules(st, stmt, idents, sm.allRules());
    };

    PathWalker<SmState>::WalkOptions walk_options;
    walk_options.max_visits = options.max_visits;
    walk_options.prune_correlated_branches =
        options.prune_correlated_branches;
    PathWalker<SmState> walker(std::move(hooks), walk_options);
    SmState initial;
    initial.state = sm.startState();
    auto walk = walker.walk(cfg, initial);
    result.visits = walk.visits;
    result.truncated = walk.truncated;
    return result;
}

} // namespace mc::metal
