#include "metal/transition_table.h"

#include <algorithm>
#include <atomic>

namespace mc::metal {

namespace {
std::uint64_t
nextCompiledSmGeneration()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}
} // namespace

StateIdx
CompiledSm::internState(const std::string& name)
{
    auto [it, inserted] =
        state_ids_.emplace(name, static_cast<StateIdx>(state_names_.size()));
    if (inserted)
        state_names_.push_back(name);
    return it->second;
}

CompiledSm::CompiledSm(const StateMachine& sm)
    : sm_(&sm), generation_(nextCompiledSmGeneration())
{
    // Index order is deterministic: start first, then stop, then the
    // remaining rule-owning states and transition targets in definition
    // (map) order. Indices never reach output — diagnostics always go
    // through the state/rule *names* — so only stability within this
    // CompiledSm matters.
    start_ = internState(sm.startState());
    stop_ = internState(StateMachine::kStop);
    for (const std::string& state : sm.states()) {
        internState(state);
        for (const StateMachine::Rule& rule : sm.rulesFor(state))
            if (!rule.next_state.empty())
                internState(rule.next_state);
    }

    auto& interner = support::SymbolInterner::global();
    candidates_.resize(state_names_.size());
    for (StateIdx s = 0; s < candidates_.size(); ++s) {
        if (s == stop_)
            continue;
        auto add = [&](const StateMachine::Rule& rule) {
            Candidate cand;
            cand.rule = &rule;
            cand.id_sym = interner.intern(rule.id);
            if (!rule.next_state.empty())
                cand.next = state_ids_.at(rule.next_state);
            candidates_[s].push_back(cand);
        };
        // Own rules first, then `all` rules — the paper's "implicitly
        // applied to other states" order. For the `all` state itself this
        // appends its list twice; first-match-wins makes the second copy
        // unreachable, exactly like the legacy two-call sequence.
        for (const StateMachine::Rule& rule : sm.rulesFor(stateName(s)))
            add(rule);
        for (const StateMachine::Rule& rule : sm.allRules())
            add(rule);
    }

    // Assign mask bits: the sorted distinct required-identifier symbols
    // across every rule, first 64 only (checkers have a handful).
    std::vector<support::SymbolId> req;
    for (const std::vector<Candidate>& list : candidates_)
        for (const Candidate& cand : list)
            cand.rule->pattern.requiredSyms(req);
    std::sort(req.begin(), req.end());
    req.erase(std::unique(req.begin(), req.end()), req.end());
    if (req.size() > 64)
        req.resize(64);
    mask_syms_ = std::move(req);

    std::vector<support::SymbolId> syms;
    for (std::vector<Candidate>& list : candidates_)
        for (Candidate& cand : list) {
            syms.clear();
            if (!cand.rule->pattern.requiredSyms(syms))
                continue; // unfilterable: req_mask stays 0
            std::uint64_t mask = 0;
            bool complete = true;
            for (support::SymbolId sym : syms) {
                std::uint64_t bit = symMask(sym);
                if (!bit) {
                    complete = false;
                    break;
                }
                mask |= bit;
            }
            // The mask is only exact if *every* alternative got a bit.
            cand.req_mask = complete ? mask : 0;
        }

    // Per-state summaries for the block-range prefilter: the union of
    // prefilterable candidates' masks, and whether any candidate is
    // unfilterable (which pins every block as unskippable in that
    // state). A state with no candidates at all (stop, or an orphan
    // target with no own and no `all` rules) ends up with union 0 and
    // no unfilterable flag — every block is skippable there, which is
    // exact: nothing can ever match.
    state_req_union_.assign(stateCount(), 0);
    state_unfilterable_.assign(stateCount(), 0);
    for (StateIdx s = 0; s < stateCount(); ++s)
        for (const Candidate& cand : candidates_[s]) {
            if (cand.req_mask)
                state_req_union_[s] |= cand.req_mask;
            else
                state_unfilterable_[s] = 1;
        }
}

TransitionTable::TransitionTable(const CompiledSm& csm, const cfg::Cfg& cfg)
    : csm_(&csm), flat_(&cfg::flatCfg(cfg)),
      masks_(&flat_->maskIndex(csm.maskSyms())),
      state_count_(csm.stateCount())
{
    // Construction is O(blocks): the arena (flat statement rows, ident
    // spans) and this machine's masks are shared per CFG and were built
    // at most once; all this table owns is the lazily-filled block →
    // cell map and the per-state skip bitsets. Both are sticky — cells
    // and bits, once computed, serve every later walk of this
    // (machine, function) pair (the engine memoizes tables per thread).
    block_cells_.assign(flat_->blockCount(), nullptr);
    skip_words_ = flat_->rangeCount();
    skip_bits_.assign(skip_words_ * state_count_, 0);
    skip_built_.assign(state_count_, 0);
}

TransitionTable::Cell*
TransitionTable::materialize(std::uint32_t block)
{
    const std::size_t need =
        static_cast<std::size_t>(flat_->stmtEnd(block) -
                                 flat_->stmtBegin(block)) *
        state_count_;
    if (slab_size_ - slab_used_ < need) {
        slab_size_ = std::max<std::size_t>(need, 1024);
        slabs_.push_back(std::make_unique<Cell[]>(slab_size_)); // zeroed
        slab_used_ = 0;
    }
    Cell* base = slabs_.back().get() + slab_used_;
    slab_used_ += need;
    block_cells_[block] = base;
    return base;
}

void
TransitionTable::buildSkipBits(StateIdx state)
{
    std::uint64_t* bits =
        skip_bits_.data() + static_cast<std::size_t>(state) * skip_words_;
    skip_built_[state] = 1;
    if (csm_->stateUnfilterable(state))
        return; // all zero: never skip, fall through to per-cell checks
    const std::uint64_t req = csm_->stateReqUnion(state);
    const std::uint32_t blocks = flat_->blockCount();
    for (std::size_t w = 0; w < skip_words_; ++w) {
        // Range sweep: one word per 64-block granule. A granule whose
        // OR'd mask misses the state's union is skippable wholesale.
        if (!(masks_->range_mask[w] & req)) {
            bits[w] = ~std::uint64_t{0};
            continue;
        }
        std::uint64_t word = 0;
        const std::uint32_t lo =
            static_cast<std::uint32_t>(w) << cfg::FlatCfg::kRangeShift;
        const std::uint32_t hi = std::min(lo + 64u, blocks);
        for (std::uint32_t b = lo; b < hi; ++b)
            if (!(masks_->block_mask[b] & req))
                word |= std::uint64_t{1} << (b & 63);
        bits[w] = word;
    }
}

void
TransitionTable::fill(std::uint32_t row, StateIdx state, Cell& cell)
{
    cell.ready = true;
    cell.next = state;
    if (state == csm_->stop())
        return;
    const std::uint64_t mask = masks_->stmt_mask[row];
    const lang::Stmt* stmt = flat_->stmt(row);
    for (const CompiledSm::Candidate& cand : csm_->candidatesFor(state)) {
        if (cand.req_mask) {
            // Exact bitmask prefilter (see Candidate::req_mask).
            if (!(cand.req_mask & mask))
                continue;
        } else if (!cand.rule->pattern.couldMatchIds(
                       flat_->identBegin(row), flat_->identCount(row))) {
            continue;
        }
        auto bindings = cand.rule->pattern.matchInStmt(*stmt);
        if (!bindings)
            continue;
        cell.rule = cand.rule;
        cell.id_sym = cand.id_sym;
        cell.bindings_idx =
            static_cast<std::uint32_t>(bindings_pool_.size());
        bindings_pool_.push_back(std::move(*bindings));
        if (cand.next != CompiledSm::kKeepState && cand.next != state)
            cell.next = cand.next;
        return;
    }
}

} // namespace mc::metal
