#include "metal/transition_table.h"

#include <algorithm>

namespace mc::metal {

StateIdx
CompiledSm::internState(const std::string& name)
{
    auto [it, inserted] =
        state_ids_.emplace(name, static_cast<StateIdx>(state_names_.size()));
    if (inserted)
        state_names_.push_back(name);
    return it->second;
}

CompiledSm::CompiledSm(const StateMachine& sm) : sm_(&sm)
{
    // Index order is deterministic: start first, then stop, then the
    // remaining rule-owning states and transition targets in definition
    // (map) order. Indices never reach output — diagnostics always go
    // through the state/rule *names* — so only stability within this
    // CompiledSm matters.
    start_ = internState(sm.startState());
    stop_ = internState(StateMachine::kStop);
    for (const std::string& state : sm.states()) {
        internState(state);
        for (const StateMachine::Rule& rule : sm.rulesFor(state))
            if (!rule.next_state.empty())
                internState(rule.next_state);
    }

    auto& interner = support::SymbolInterner::global();
    candidates_.resize(state_names_.size());
    for (StateIdx s = 0; s < candidates_.size(); ++s) {
        if (s == stop_)
            continue;
        auto add = [&](const StateMachine::Rule& rule) {
            Candidate cand;
            cand.rule = &rule;
            cand.id_sym = interner.intern(rule.id);
            if (!rule.next_state.empty())
                cand.next = state_ids_.at(rule.next_state);
            candidates_[s].push_back(cand);
        };
        // Own rules first, then `all` rules — the paper's "implicitly
        // applied to other states" order. For the `all` state itself this
        // appends its list twice; first-match-wins makes the second copy
        // unreachable, exactly like the legacy two-call sequence.
        for (const StateMachine::Rule& rule : sm.rulesFor(stateName(s)))
            add(rule);
        for (const StateMachine::Rule& rule : sm.allRules())
            add(rule);
    }

    // Assign mask bits: the sorted distinct required-identifier symbols
    // across every rule, first 64 only (checkers have a handful).
    std::vector<support::SymbolId> req;
    for (const std::vector<Candidate>& list : candidates_)
        for (const Candidate& cand : list)
            cand.rule->pattern.requiredSyms(req);
    std::sort(req.begin(), req.end());
    req.erase(std::unique(req.begin(), req.end()), req.end());
    if (req.size() > 64)
        req.resize(64);
    mask_syms_ = std::move(req);

    std::vector<support::SymbolId> syms;
    for (std::vector<Candidate>& list : candidates_)
        for (Candidate& cand : list) {
            syms.clear();
            if (!cand.rule->pattern.requiredSyms(syms))
                continue; // unfilterable: req_mask stays 0
            std::uint64_t mask = 0;
            bool complete = true;
            for (support::SymbolId sym : syms) {
                std::uint64_t bit = symMask(sym);
                if (!bit) {
                    complete = false;
                    break;
                }
                mask |= bit;
            }
            // The mask is only exact if *every* alternative got a bit.
            cand.req_mask = complete ? mask : 0;
        }
}

TransitionTable::TransitionTable(const CompiledSm& csm, const cfg::Cfg& cfg)
    : csm_(&csm), state_count_(csm.stateCount())
{
    // Prefix sums over block statement counts: (block, pos) addresses a
    // row directly, with no per-run hash map over statement pointers.
    offsets_.resize(cfg.blocks().size());
    std::size_t total = 0;
    for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
        offsets_[b] = total;
        total += cfg.blocks()[b].stmts.size();
    }
    rows_.resize(total);
    std::size_t row = 0;
    for (const cfg::BasicBlock& bb : cfg.blocks())
        for (const lang::Stmt* stmt : bb.stmts)
            rows_[row++].stmt = stmt;
    cells_.resize(total * state_count_);
}

void
TransitionTable::fill(std::size_t row_idx, StateIdx state, Cell& cell)
{
    cell.ready = true;
    cell.next = state;
    if (state == csm_->stop())
        return;
    Row& row = rows_[row_idx];
    if (!row.ids) {
        // The scan itself is cached on the Stmt node; per run we only
        // fold the ids into this machine's prefilter mask.
        row.ids = &lang::stmtIdentIds(*row.stmt);
        std::uint64_t mask = 0;
        for (support::SymbolId sym : *row.ids)
            mask |= csm_->symMask(sym);
        row.mask = mask;
    }
    for (const CompiledSm::Candidate& cand : csm_->candidatesFor(state)) {
        if (cand.req_mask) {
            // Exact bitmask prefilter (see Candidate::req_mask).
            if (!(cand.req_mask & row.mask))
                continue;
        } else if (!cand.rule->pattern.couldMatchIds(*row.ids)) {
            continue;
        }
        auto bindings = cand.rule->pattern.matchInStmt(*row.stmt);
        if (!bindings)
            continue;
        cell.rule = cand.rule;
        cell.id_sym = cand.id_sym;
        cell.bindings_idx =
            static_cast<std::uint32_t>(bindings_pool_.size());
        bindings_pool_.push_back(std::move(*bindings));
        if (cand.next != CompiledSm::kKeepState && cand.next != state)
            cell.next = cand.next;
        return;
    }
}

} // namespace mc::metal
