#ifndef MCHECK_METAL_METAL_PARSER_H
#define MCHECK_METAL_METAL_PARSER_H

#include "metal/state_machine.h"

#include <memory>
#include <string>

namespace mc::metal {

/**
 * A checker loaded from textual metal source: the compiled state machine
 * plus the arena its patterns live in.
 */
struct MetalProgram
{
    std::string name;
    /** Raw text of the optional `{ #include ... }` prelude. */
    std::string prelude;
    std::shared_ptr<match::PatternContext> patterns;
    std::shared_ptr<StateMachine> sm;
};

/** Thrown on malformed metal source. */
class MetalParseError : public std::runtime_error
{
  public:
    explicit MetalParseError(const std::string& message)
        : std::runtime_error(message)
    {}
};

/**
 * Parse a metal checker in the dialect of the paper's Figures 2 and 3:
 *
 *     { #include "flash-includes.h" }       // optional prelude
 *     sm wait_for_db {
 *         decl { scalar } addr, buf;        // wildcard declarations
 *         pat send_data = { PI_SEND(...) }  // named patterns, with
 *                       | { IO_SEND(...) }; //   `|` alternation
 *         start:                            // first state = start state
 *             { WAIT_FOR_DB_FULL(addr); } ==> stop
 *           | { MISCBUS_READ_DB(addr, buf); } ==>
 *                 { err("Buffer not synchronized"); }
 *           ;
 *     }
 *
 * Rules take the form `pattern ==> state`, `pattern ==> { err("..."); }`,
 * or `pattern ==> state { err("..."); }`. Named patterns may be used
 * wherever a braced pattern may. The `all` and `stop` states have the
 * semantics described in StateMachine.
 *
 * @param source Full text of the .metal file.
 * @param origin Name used in error messages.
 */
MetalProgram parseMetal(const std::string& source,
                        const std::string& origin = "<metal>");

/** Convenience: read `path` from disk and parse it. */
MetalProgram loadMetalFile(const std::string& path);

/**
 * Count the non-blank, non-comment source lines of a metal checker —
 * the "LOC" metric of the paper's Table 7.
 */
int metalSourceLines(const std::string& source);

} // namespace mc::metal

#endif // MCHECK_METAL_METAL_PARSER_H
