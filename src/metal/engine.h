#ifndef MCHECK_METAL_ENGINE_H
#define MCHECK_METAL_ENGINE_H

#include "cfg/cfg.h"
#include "metal/feasibility.h"
#include "metal/state_machine.h"
#include "support/budget.h"
#include "support/diagnostics.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>

namespace mc::metal {

/** Outcome of running one state machine over one function. */
struct SmRunResult
{
    /** Rule firings, keyed by rule id, deduplicated per statement. */
    std::map<std::string, int> firings;
    /** (block, state) visits performed (path-walker cache misses). */
    std::uint64_t visits = 0;
    /** True if the visit cap stopped exploration early. */
    bool truncated = false;
    /** Paths folded into an already-visited (block, state) pair. */
    std::uint64_t cache_hits = 0;
    /** Branch edges pruned as contradictory (pruning mode only). */
    std::uint64_t pruned_edges = 0;
    /** Feasibility verdicts answered from the prune-decision cache. */
    std::uint64_t prune_cache_hits = 0;
    /** Branch blocks pruning skipped for fanning out != 2 ways. */
    std::uint64_t prune_skipped_nary = 0;
    /** Largest pending-path frontier reached during the walk. */
    std::uint64_t peak_frontier = 0;
    /** State transitions taken (rule matches that changed the state). */
    std::uint64_t transitions = 0;
    /**
     * Witness steps appended to path trails (0 unless --witness). Both
     * strategies record the same steps, so this is part of the
     * differential contract like visits/transitions.
     */
    std::uint64_t witness_steps = 0;
    /**
     * The per-unit resource budget limit that stopped the walk early
     * (support/budget.h), or None. When set, truncated is also true.
     */
    support::BudgetStop budget_stop = support::BudgetStop::None;
};

/**
 * How the engine matches rules against statements.
 *
 * Both strategies are semantically identical — same diagnostics (byte for
 * byte), same firings, same visit/transition counts. Legacy is retained
 * as the reference implementation for differential testing.
 */
enum class MatchStrategy : std::uint8_t
{
    /** Use the process-wide default (Table unless overridden). */
    Default,
    /** Pre-compile a per-(function, SM) transition table, then walk with
     *  O(1) indexed lookups per statement. */
    Table,
    /** Re-run pattern unification at every path-sensitive visit. */
    Legacy,
};

/** The strategy Default resolves to (initially Table). */
MatchStrategy defaultMatchStrategy();

/** Override the process-wide default (Default resets to Table). */
void setDefaultMatchStrategy(MatchStrategy strategy);

/** Stable CLI spelling ("table", "legacy"; Default → "table"). */
const char* matchStrategyName(MatchStrategy strategy);

/** Parse a CLI spelling; nullopt for anything unknown. */
std::optional<MatchStrategy> parseMatchStrategy(std::string_view text);

/**
 * The valid --match-strategy spellings, for usage and error text:
 * "'table' or 'legacy'". One definition so the flag's contract can't
 * drift from the parser.
 */
const char* matchStrategyChoices();

/** Options controlling one engine run. */
struct SmRunOptions
{
    /** Cap on (block, state) visits. */
    std::uint64_t max_visits = 1u << 22;
    /**
     * Prune statically impossible paths (see PruneStrategy). The paper
     * declines to build this ("the effort seemed unjustified"); the
     * path-pruning ablation measures what it would have bought.
     */
    PruneStrategy prune_strategy = PruneStrategy::Off;
    /**
     * Function name recorded on the run's trace span ("function" arg in
     * the trace viewer). Defaults to the CFG's own function when unset.
     */
    std::string trace_label;
    /** Matching strategy for this run (Default = process default). */
    MatchStrategy match_strategy = MatchStrategy::Default;
};

/**
 * Apply `sm` down every path of `cfg`, reporting err() actions to `sink`.
 *
 * This is the intra-procedural half of xg++: rules fire on the first
 * matching pattern (current state's rules first, then `all` rules);
 * transitions update the path's state; reaching `stop` abandons the path.
 */
SmRunResult runStateMachine(const StateMachine& sm, const cfg::Cfg& cfg,
                            support::DiagnosticSink& sink,
                            const SmRunOptions& options = SmRunOptions());

} // namespace mc::metal

#endif // MCHECK_METAL_ENGINE_H
