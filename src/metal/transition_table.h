#ifndef MCHECK_METAL_TRANSITION_TABLE_H
#define MCHECK_METAL_TRANSITION_TABLE_H

#include "cfg/cfg.h"
#include "cfg/flat_cfg.h"
#include "metal/state_machine.h"
#include "support/interner.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mc::metal {

/** Dense index of an SM state within one CompiledSm. */
using StateIdx = std::uint32_t;

/**
 * Per-StateMachine compiled view: state names and rule ids interned to
 * dense indices, and each state's candidate rules (its own rules followed
 * by the `all` rules — the legacy first-match order) flattened into one
 * list with pre-resolved transition targets and bitmask prefilters.
 *
 * Built once per SM (lazily, via StateMachine::compiled()) after rule
 * construction is complete; Candidate pointers alias the SM's own rule
 * storage, so no rules may be added afterwards.
 */
class CompiledSm
{
  public:
    /** Sentinel target: the rule keeps the walker in its current state. */
    static constexpr StateIdx kKeepState = 0xFFFFFFFFu;

    explicit CompiledSm(const StateMachine& sm);

    struct Candidate
    {
        const StateMachine::Rule* rule = nullptr;
        /**
         * Interned rule id — the firing-dedup key. Distinct Rule objects
         * can share a (slugified) id string; they must then share one
         * dedup slot, which the shared symbol guarantees.
         */
        support::SymbolId id_sym = support::kInvalidSymbol;
        /** Absolute target state, or kKeepState when next_state is "". */
        StateIdx next = kKeepState;
        /**
         * OR of the mask bits of every alternative's required identifier.
         * When nonzero this is an *exact* prefilter: the candidate can
         * match a statement iff `req_mask & statement-mask` is nonzero.
         * Zero means "cannot prefilter" (some alternative has no required
         * identifier, or its symbol fell outside the 64 mask slots) and
         * the caller must fall back to Pattern::couldMatchIds.
         */
        std::uint64_t req_mask = 0;
    };

    const StateMachine& sm() const { return *sm_; }

    /**
     * Process-unique compilation id (monotonic, never reused). Paired
     * with FlatCfg::id() it keys memoized transition tables without
     * pointer ABA: a CompiledSm for a recreated machine — even one
     * allocated at the same address — gets a fresh generation, so a
     * cached table can never be served for the wrong rule storage.
     */
    std::uint64_t generation() const { return generation_; }

    StateIdx start() const { return start_; }
    StateIdx stop() const { return stop_; }
    std::uint32_t stateCount() const
    {
        return static_cast<std::uint32_t>(state_names_.size());
    }
    const std::string& stateName(StateIdx s) const
    {
        return state_names_[s];
    }

    /** Candidates tried, in order, when a statement is seen in state `s`. */
    const std::vector<Candidate>& candidatesFor(StateIdx s) const
    {
        return candidates_[s];
    }

    /**
     * The sorted distinct required-identifier symbols that own mask
     * bits: bit i of every req_mask (and of FlatCfg::MaskIndex masks
     * built from this list) means "mentions maskSyms()[i]".
     */
    const std::vector<support::SymbolId>& maskSyms() const
    {
        return mask_syms_;
    }

    /**
     * OR of req_mask over state `s`'s prefilterable candidates: a
     * statement whose mask misses this union cannot match any of them.
     */
    std::uint64_t stateReqUnion(StateIdx s) const
    {
        return state_req_union_[s];
    }

    /**
     * True when some candidate of `s` has req_mask == 0 — the state
     * cannot be mask-prefiltered, so block skipping must stay off for
     * it (the couldMatchIds fallback still applies per cell).
     */
    bool stateUnfilterable(StateIdx s) const
    {
        return state_unfilterable_[s] != 0;
    }

    /**
     * The mask bit assigned to `sym`, or 0 when `sym` is not one of this
     * machine's required-identifier symbols. At most 64 distinct symbols
     * get bits; every real checker needs a handful.
     */
    std::uint64_t symMask(support::SymbolId sym) const
    {
        // mask_syms_ is sorted; its index is the bit position.
        std::size_t lo = 0, hi = mask_syms_.size();
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (mask_syms_[mid] < sym)
                lo = mid + 1;
            else
                hi = mid;
        }
        return (lo < mask_syms_.size() && mask_syms_[lo] == sym)
                   ? (std::uint64_t{1} << lo)
                   : 0;
    }

  private:
    StateIdx internState(const std::string& name);

    const StateMachine* sm_;
    std::vector<std::string> state_names_;
    std::unordered_map<std::string, StateIdx> state_ids_;
    /** Indexed by StateIdx; the stop state's list is empty. */
    std::vector<std::vector<Candidate>> candidates_;
    /** Sorted distinct required-identifier symbols (≤ 64 get mask bits). */
    std::vector<support::SymbolId> mask_syms_;
    /** Per-state req_mask union / has-unfilterable-candidate flags. */
    std::vector<std::uint64_t> state_req_union_;
    std::vector<std::uint8_t> state_unfilterable_;
    std::uint64_t generation_;
    StateIdx start_ = 0;
    StateIdx stop_ = 0;
};

/**
 * Per-(function, SM) transition table: one cell per (CFG statement, SM
 * state) holding the first matching rule, its wildcard bindings, and the
 * resulting state. The walker's per-visit work is an indexed lookup —
 * statements are addressed by (block id, position in block) against the
 * function's FlatCfg arena, so neither construction nor lookup touches a
 * hash table.
 *
 * Construction is O(blocks), not O(statements × states): cell storage is
 * materialized per block on first touch from zero-initialized slabs, so
 * a run that (like most) visits a handful of blocks never pays for the
 * whole function's cell array. Full pattern unification still runs at
 * most once per (statement, state).
 *
 * blockSkippable() is the block-range prefilter: per state, a bitset
 * over blocks marking those whose identifier sets cannot intersect any
 * candidate rule of that state. Built lazily per state with a
 * range-mask sweep (64 blocks = one word), it lets the walker skip a
 * visited block's entire statement loop — no cells materialized, no
 * per-statement hook calls. The bits are exact, never heuristic: a
 * block is only marked when `stateReqUnion(state)` misses its OR'd
 * statement masks and the state has no unfilterable candidate, so (by
 * the req_mask exactness contract) no candidate can match any statement
 * in it — the PR-5 prefilter-never-rejects property lifted from cells
 * to blocks and ranges.
 */
class TransitionTable
{
  public:
    TransitionTable(const CompiledSm& csm, const cfg::Cfg& cfg);

    /**
     * One (statement, state) slot. Deliberately trivial with an all-zero
     * initial state, so block materialization is a zeroed-slab carve.
     * Bindings of matched cells live in a side pool (bindings()); a cell
     * holds only the pool index.
     */
    struct Cell
    {
        /** First matching rule for (stmt, state), or nullptr. */
        const StateMachine::Rule* rule;
        /** Interned rule id (firing-dedup key); valid when `rule` set. */
        support::SymbolId id_sym;
        /** State after the statement; valid once `ready`. */
        StateIdx next;
        /** Index into the bindings pool; valid when `rule` set. */
        std::uint32_t bindings_idx;
        /** False until this cell's match has been computed. */
        bool ready;
    };

    /**
     * The cell for the `pos`-th statement of block `block` in state
     * `state`, matching on first touch. `block`/`pos` must come from the
     * CFG this table was built for (the walker guarantees this). The
     * reference stays valid for the table's lifetime (cells live in
     * stable slabs).
     */
    const Cell&
    cell(int block, std::size_t pos, StateIdx state)
    {
        const std::uint32_t b = static_cast<std::uint32_t>(block);
        Cell* base = block_cells_[b];
        if (!base)
            base = materialize(b);
        Cell& c = base[pos * state_count_ + state];
        if (!c.ready)
            fill(flat_->stmtBegin(b) + static_cast<std::uint32_t>(pos),
                 state, c);
        return c;
    }

    /**
     * True when no candidate rule of `state` can match any statement of
     * `block` — the walker may skip the block's statement loop outright.
     * Exact (see class comment); O(1) after a lazy per-state build.
     */
    bool
    blockSkippable(int block, StateIdx state)
    {
        const std::uint64_t* bits =
            skip_bits_.data() +
            static_cast<std::size_t>(state) * skip_words_;
        if (!skip_built_[state])
            buildSkipBits(state);
        const std::uint32_t b = static_cast<std::uint32_t>(block);
        return (bits[b >> 6] >> (b & 63)) & 1;
    }

    /** The wildcard bindings of a matched cell (`cell.rule != nullptr`). */
    const match::Bindings& bindings(const Cell& cell) const
    {
        return bindings_pool_[cell.bindings_idx];
    }

  private:
    void fill(std::uint32_t row, StateIdx state, Cell& cell);
    Cell* materialize(std::uint32_t block);
    void buildSkipBits(StateIdx state);

    const CompiledSm* csm_;
    const cfg::FlatCfg* flat_;
    const cfg::FlatCfg::MaskIndex* masks_;
    std::uint32_t state_count_;
    /** Per block: its first cell, or nullptr until materialized. */
    std::vector<Cell*> block_cells_;
    /** Zero-initialized slabs the per-block cell runs are carved from;
     *  growth never moves already-handed-out cells. */
    std::vector<std::unique_ptr<Cell[]>> slabs_;
    std::size_t slab_used_ = 0;
    std::size_t slab_size_ = 0;
    /** skip_words_ words per state; valid once skip_built_[state]. */
    std::vector<std::uint64_t> skip_bits_;
    std::vector<std::uint8_t> skip_built_;
    std::size_t skip_words_ = 0;
    std::vector<match::Bindings> bindings_pool_;
};

} // namespace mc::metal

#endif // MCHECK_METAL_TRANSITION_TABLE_H
