#ifndef MCHECK_METAL_TRANSITION_TABLE_H
#define MCHECK_METAL_TRANSITION_TABLE_H

#include "cfg/cfg.h"
#include "metal/state_machine.h"
#include "support/interner.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mc::metal {

/** Dense index of an SM state within one CompiledSm. */
using StateIdx = std::uint32_t;

/**
 * Per-StateMachine compiled view: state names and rule ids interned to
 * dense indices, and each state's candidate rules (its own rules followed
 * by the `all` rules — the legacy first-match order) flattened into one
 * list with pre-resolved transition targets and bitmask prefilters.
 *
 * Built once per SM (lazily, via StateMachine::compiled()) after rule
 * construction is complete; Candidate pointers alias the SM's own rule
 * storage, so no rules may be added afterwards.
 */
class CompiledSm
{
  public:
    /** Sentinel target: the rule keeps the walker in its current state. */
    static constexpr StateIdx kKeepState = 0xFFFFFFFFu;

    explicit CompiledSm(const StateMachine& sm);

    struct Candidate
    {
        const StateMachine::Rule* rule = nullptr;
        /**
         * Interned rule id — the firing-dedup key. Distinct Rule objects
         * can share a (slugified) id string; they must then share one
         * dedup slot, which the shared symbol guarantees.
         */
        support::SymbolId id_sym = support::kInvalidSymbol;
        /** Absolute target state, or kKeepState when next_state is "". */
        StateIdx next = kKeepState;
        /**
         * OR of the mask bits of every alternative's required identifier.
         * When nonzero this is an *exact* prefilter: the candidate can
         * match a statement iff `req_mask & statement-mask` is nonzero.
         * Zero means "cannot prefilter" (some alternative has no required
         * identifier, or its symbol fell outside the 64 mask slots) and
         * the caller must fall back to Pattern::couldMatchIds.
         */
        std::uint64_t req_mask = 0;
    };

    const StateMachine& sm() const { return *sm_; }
    StateIdx start() const { return start_; }
    StateIdx stop() const { return stop_; }
    std::uint32_t stateCount() const
    {
        return static_cast<std::uint32_t>(state_names_.size());
    }
    const std::string& stateName(StateIdx s) const
    {
        return state_names_[s];
    }

    /** Candidates tried, in order, when a statement is seen in state `s`. */
    const std::vector<Candidate>& candidatesFor(StateIdx s) const
    {
        return candidates_[s];
    }

    /**
     * The mask bit assigned to `sym`, or 0 when `sym` is not one of this
     * machine's required-identifier symbols. At most 64 distinct symbols
     * get bits; every real checker needs a handful.
     */
    std::uint64_t symMask(support::SymbolId sym) const
    {
        // mask_syms_ is sorted; its index is the bit position.
        std::size_t lo = 0, hi = mask_syms_.size();
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (mask_syms_[mid] < sym)
                lo = mid + 1;
            else
                hi = mid;
        }
        return (lo < mask_syms_.size() && mask_syms_[lo] == sym)
                   ? (std::uint64_t{1} << lo)
                   : 0;
    }

  private:
    StateIdx internState(const std::string& name);

    const StateMachine* sm_;
    std::vector<std::string> state_names_;
    std::unordered_map<std::string, StateIdx> state_ids_;
    /** Indexed by StateIdx; the stop state's list is empty. */
    std::vector<std::vector<Candidate>> candidates_;
    /** Sorted distinct required-identifier symbols (≤ 64 get mask bits). */
    std::vector<support::SymbolId> mask_syms_;
    StateIdx start_ = 0;
    StateIdx stop_ = 0;
};

/**
 * Per-(function, SM) transition table: one cell per (CFG statement, SM
 * state) holding the first matching rule, its wildcard bindings, and the
 * resulting state. The walker's per-visit work is an indexed lookup —
 * statements are addressed by (block id, position in block), so neither
 * construction nor lookup touches a hash table.
 *
 * Cells are materialized on first touch and then reused: full pattern
 * unification runs at most once per (statement, state) no matter how many
 * path-sensitive visits cross that statement. A statement's identifier
 * mask (the prefilter input) is computed once per statement per table.
 */
class TransitionTable
{
  public:
    TransitionTable(const CompiledSm& csm, const cfg::Cfg& cfg);

    /**
     * One (statement, state) slot. Deliberately trivial with an all-zero
     * initial state, so the per-run cell array is a single memset-style
     * allocation. Bindings of matched cells live in a side pool
     * (bindings()); a cell holds only the pool index.
     */
    struct Cell
    {
        /** First matching rule for (stmt, state), or nullptr. */
        const StateMachine::Rule* rule;
        /** Interned rule id (firing-dedup key); valid when `rule` set. */
        support::SymbolId id_sym;
        /** State after the statement; valid once `ready`. */
        StateIdx next;
        /** Index into the bindings pool; valid when `rule` set. */
        std::uint32_t bindings_idx;
        /** False until this cell's match has been computed. */
        bool ready;
    };

    /**
     * The cell for the `pos`-th statement of block `block` in state
     * `state`, matching on first touch. `block`/`pos` must come from the
     * CFG this table was built for (the walker guarantees this).
     */
    const Cell&
    cell(int block, std::size_t pos, StateIdx state)
    {
        std::size_t row =
            offsets_[static_cast<std::size_t>(block)] + pos;
        Cell& c = cells_[row * state_count_ + state];
        if (!c.ready)
            fill(row, state, c);
        return c;
    }

    /** The wildcard bindings of a matched cell (`cell.rule != nullptr`). */
    const match::Bindings& bindings(const Cell& cell) const
    {
        return bindings_pool_[cell.bindings_idx];
    }

  private:
    struct Row
    {
        const lang::Stmt* stmt = nullptr;
        /** Cached sorted-unique ident ids (null until first fill). */
        const std::vector<support::SymbolId>* ids = nullptr;
        /** OR of symMask() over the statement's identifiers. */
        std::uint64_t mask = 0;
    };

    void fill(std::size_t row_idx, StateIdx state, Cell& cell);

    const CompiledSm* csm_;
    std::uint32_t state_count_;
    /** offsets_[block id] = row index of that block's first statement. */
    std::vector<std::size_t> offsets_;
    std::vector<Row> rows_;
    /** Row-major: cells_[row * state_count_ + state]. */
    std::vector<Cell> cells_;
    std::vector<match::Bindings> bindings_pool_;
};

} // namespace mc::metal

#endif // MCHECK_METAL_TRANSITION_TABLE_H
