#ifndef MCHECK_METAL_PATH_WALKER_H
#define MCHECK_METAL_PATH_WALKER_H

#include "cfg/cfg.h"
#include "metal/feasibility.h"
#include "support/budget.h"
#include "support/hash.h"
#include "support/interner.h"
#include "support/metrics.h"
#include "support/run_ledger.h"
#include "support/witness.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace mc::metal {

/**
 * Generic path-sensitive traversal with client-defined state.
 *
 * This is xg++'s "apply the extension down every path" core. The walker
 * visits CFG blocks depth-first from the entry, threading a client state
 * value through each path. Exponential blowup is avoided the way xg++
 * avoids it: a (block, state) pair is visited at most once, which is
 * exact for checkers whose behavior depends only on the current state and
 * statement (all of ours).
 *
 * The client state type must provide:
 *   - copy construction (paths fork at branches);
 *   - `key() const` returning either `std::string` or an unsigned
 *     integral of at most 32 bits — a stable encoding used for the
 *     (block, state) visited set. Integral keys are packed with the
 *     block id into one exact 64-bit word (no hashing, no collisions);
 *     string keys are FNV-1a hashed;
 *   - `bool dead() const` — true when this path needs no further
 *     exploration (the metal `stop` state).
 */
template <typename State>
class PathWalker
{
  public:
    struct Hooks
    {
        /** Called for each statement of each visited block, in order. */
        std::function<void(State&, const lang::Stmt&)> on_stmt;
        /**
         * Indexed twin of on_stmt: additionally receives the block id and
         * the statement's position within that block, so clients can
         * address precomputed per-(block, position) tables without any
         * pointer hashing. When set, it is called instead of on_stmt.
         */
        std::function<void(State&, const lang::Stmt&, int, std::size_t)>
            on_stmt_at;
        /**
         * Called when leaving a branch block, once per out-edge, with
         * the branch condition and the index of the taken edge (0 = the
         * true edge for if/while). Lets clients be value-sensitive the
         * way Section 6.1's twelve-line refinement is.
         */
        std::function<void(State&, const lang::Expr&, std::size_t)>
            on_branch;
        /** Called when a path reaches the function's exit block. */
        std::function<void(State&)> on_exit;
    };

    struct Result
    {
        /** Number of (block, state) visits performed (= cache misses). */
        std::uint64_t visits = 0;
        /** True if the visit cap stopped exploration early. */
        bool truncated = false;
        /** Branch edges pruned as contradictory (pruning mode only). */
        std::uint64_t pruned_edges = 0;
        /** Feasibility verdicts answered from the per-(block, facts)
         *  prune-decision cache instead of re-deciding. */
        std::uint64_t prune_cache_hits = 0;
        /** Branch blocks pruning had to skip because they fan out to
         *  other than two successors (switch-lowered branches). */
        std::uint64_t prune_skipped_nary = 0;
        /**
         * Paths abandoned because their (block, state) pair had already
         * been visited — the cache hits that keep 2^N-path functions
         * linear. visits + cache_hits = pairs popped off the work list.
         */
        std::uint64_t cache_hits = 0;
        /** Largest pending-path frontier (work-list depth) reached. */
        std::uint64_t peak_frontier = 0;
        /**
         * Which per-unit resource budget limit stopped the walk, if any
         * (truncated is also set). None for max_visits truncation.
         */
        support::BudgetStop budget_stop = support::BudgetStop::None;
    };

    struct WalkOptions
    {
        std::uint64_t max_visits = 1u << 22;
        /**
         * Prune statically impossible paths (feasibility.h). Correlated
         * rejects re-takes of the syntactically identical condition —
         * the "more elaborate analysis" the paper's Section 5 describes
         * and declines to build. Constraints layers a semantic value
         * domain on top, so `x == 5` followed by `x > 10` is pruned
         * even though the two conditions never render to the same text.
         */
        PruneStrategy prune_strategy = PruneStrategy::Off;
    };

    explicit PathWalker(Hooks hooks, std::uint64_t max_visits = 1u << 22)
        : hooks_(std::move(hooks))
    {
        options_.max_visits = max_visits;
    }

    PathWalker(Hooks hooks, const WalkOptions& options)
        : hooks_(std::move(hooks)), options_(options)
    {}

    /** Walk `cfg` starting from `initial` state at the entry block. */
    Result
    walk(const cfg::Cfg& cfg, const State& initial)
    {
        Result result;
        FeasibilityContext feas(options_.prune_strategy);
        const bool pruning = feas.enabled();
        VisitedSet visited;
        // Witness capture is resolved once per walk: when off, every
        // entry carries an inert trail (a null pointer member), so the
        // per-fork cost is copying one nullptr and the per-statement
        // cost is zero.
        const bool witness_on = support::witnessEnabled();
        const unsigned witness_cap = support::witnessLimit();
        std::vector<Entry> stack;
        stack.push_back(Entry{cfg.entryId(), initial, {},
                              support::WitnessTrail(witness_on)});
        result.peak_frontier = 1;

        while (!stack.empty()) {
            if (stack.size() > result.peak_frontier)
                result.peak_frontier = stack.size();
            Entry entry = std::move(stack.back());
            stack.pop_back();

            if (!visited.insert(visitedKey(entry))) {
                ++result.cache_hits;
                continue;
            }
            // Cap check precedes the count: a capped walk performs (and
            // reports) exactly max_visits fully-processed visits. An
            // earlier version counted first and bailed after, so visits
            // ended at max_visits + 1 with the last visit's block never
            // actually processed.
            if (result.visits >= options_.max_visits) {
                result.truncated = true;
                result.prune_cache_hits = feas.cacheHits();
                publishUnitStats(result);
                return result;
            }
            // The unit's resource budget (installed by the parallel
            // engine's UnitGuard) governs the whole (function, checker)
            // unit across all of its walks: one step per visit, bytes
            // for the frontier entry (including the heap behind the
            // state key and the recorded branch outcomes) plus the
            // 8-byte visited-set key. Like the visit cap, exhaustion
            // truncates gracefully — partial results survive; nothing
            // is thrown.
            if (support::Budget* budget = support::Budget::current()) {
                budget->chargeStep();
                budget->chargeBytes(entryBytes(entry));
                if (budget->exhausted()) {
                    result.truncated = true;
                    result.budget_stop = budget->stop();
                    result.prune_cache_hits = feas.cacheHits();
                    publishUnitStats(result);
                    return result;
                }
            }
            ++result.visits;

            // Record the block on the path segment and expose the trail
            // to statement hooks (and, transitively, to DiagnosticSink
            // reports made from checker actions) for this visit.
            std::optional<support::WitnessTrailScope> witness_scope;
            if (witness_on) {
                entry.trail.addBlock(entry.block, witness_cap);
                witness_scope.emplace(&entry.trail);
            }

            const cfg::BasicBlock& bb = cfg.block(entry.block);
            for (std::size_t si = 0; si < bb.stmts.size(); ++si) {
                const lang::Stmt* stmt = bb.stmts[si];
                if (hooks_.on_stmt_at)
                    hooks_.on_stmt_at(entry.state, *stmt, entry.block, si);
                else if (hooks_.on_stmt)
                    hooks_.on_stmt(entry.state, *stmt);
                if (pruning)
                    feas.invalidate(*stmt, entry.facts);
                if (entry.state.dead())
                    break;
            }
            if (entry.state.dead())
                continue;

            if (entry.block == cfg.exitId()) {
                if (hooks_.on_exit)
                    hooks_.on_exit(entry.state);
                continue;
            }

            // Successor fan-out runs in two phases so that pruned edges
            // are dead on arrival: phase one classifies every out-edge
            // against the path's facts (pure — nothing mutated), phase
            // two forks only the feasible ones. on_branch therefore
            // never fires on a pruned edge — an earlier version ran the
            // hook first and pruned after, so contradictory edges still
            // executed branch transitions, inflating sm_transitions and
            // witness state on paths that were about to be discarded.
            const bool prunable =
                pruning && bb.isBranch() && bb.succs.size() == 2;
            if (pruning && bb.isBranch() && bb.succs.size() != 2)
                ++result.prune_skipped_nary;
            unsigned feasible_mask = ~0u;
            if (prunable) {
                std::uint64_t digest =
                    FeasibilityContext::factsDigest(entry.facts);
                for (std::size_t i = 0; i < 2; ++i) {
                    if (feas.edgeFeasible(entry.block, *bb.branch_cond,
                                          i == 0, entry.facts, digest))
                        continue;
                    feasible_mask &= ~(1u << i);
                    ++result.pruned_edges;
                    // Note the pruned edge on the popped entry's trail
                    // before forking: every surviving sibling path
                    // carries the evidence that its twin was cut.
                    if (witness_on)
                        entry.trail.addStep(
                            support::WitnessStep{
                                "path", "pruned", bb.branch_cond->loc,
                                prunedEdgeNote(bb, i)},
                            witness_cap);
                }
            }
            std::size_t last_live = bb.succs.size();
            for (std::size_t i = 0; i < bb.succs.size(); ++i)
                if (feasible_mask >> i & 1u)
                    last_live = i;
            for (std::size_t i = 0; i < bb.succs.size(); ++i) {
                if (!(feasible_mask >> i & 1u))
                    continue; // contradicts the path's facts
                // The popped entry is dead after this loop, so the last
                // surviving successor steals its state and facts instead
                // of copying them — one fewer deep copy per non-branch
                // block, which is most of a walk.
                Entry next =
                    i == last_live
                        ? Entry{bb.succs[i], std::move(entry.state),
                                std::move(entry.facts),
                                std::move(entry.trail)}
                        : Entry{bb.succs[i], entry.state, entry.facts,
                                entry.trail};
                if (prunable)
                    feas.applyEdge(*bb.branch_cond, i == 0, next.facts);
                if (bb.isBranch() && hooks_.on_branch)
                    hooks_.on_branch(next.state, *bb.branch_cond, i);
                if (next.state.dead())
                    continue;
                stack.push_back(std::move(next));
            }
        }
        result.prune_cache_hits = feas.cacheHits();
        publishUnitStats(result);
        return result;
    }

  private:
    /** Client state plus everything the path's branches established. */
    struct Entry
    {
        int block;
        State state;
        /** Branch outcomes + value constraints (empty when not pruning). */
        PathFacts facts;
        /** Path provenance; inert (one null pointer) unless --witness. */
        support::WitnessTrail trail;
    };

    /** Deterministic annotation for a pruned edge's witness step. */
    static std::string
    prunedEdgeNote(const cfg::BasicBlock& bb, std::size_t edge)
    {
        return "infeasible edge to block " +
               std::to_string(bb.succs[edge]) + ": branch cannot be " +
               (edge == 0 ? "true" : "false") +
               " given earlier branches on this path";
    }

    /**
     * Fold this walk's tallies into the thread's active per-unit ledger
     * accumulator, if any (installed by the unit runners), and into the
     * walker.* metrics. One TLS load and one enabled check per walk;
     * nothing per visit.
     */
    static void
    publishUnitStats(const Result& result)
    {
        if (support::LedgerUnitStats* stats =
                support::LedgerUnitStats::current()) {
            stats->visits += result.visits;
            stats->pruned_edges += result.pruned_edges;
            stats->prune_cache_hits += result.prune_cache_hits;
            stats->prune_skipped_nary += result.prune_skipped_nary;
        }
        support::MetricsRegistry& metrics =
            support::MetricsRegistry::global();
        if (metrics.enabled()) {
            metrics.counter("walker.infeasible_pruned")
                .add(result.pruned_edges);
            metrics.counter("walker.prune_cache_hits")
                .add(result.prune_cache_hits);
            metrics.counter("walker.prune_skipped_nary")
                .add(result.prune_skipped_nary);
        }
    }

    using KeyType = decltype(std::declval<const State&>().key());
    static constexpr bool kIntegralKey =
        std::is_integral_v<KeyType> && sizeof(KeyType) <= 4;

    /**
     * Open-addressing set of 64-bit visited keys: one flat allocation
     * and linear probing instead of a node per (block, state) — the
     * walker's busiest data structure. All-ones is the empty-slot
     * sentinel; it is unreachable for exact integral keys (block ids
     * are non-negative ints), and a key that hashes to it is remapped,
     * which on the digest path is just another hash collision.
     */
    class VisitedSet
    {
      public:
        /** True if `key` was newly inserted, false if already present. */
        bool
        insert(std::uint64_t key)
        {
            if (key == kEmpty)
                key = 0x9e3779b97f4a7c15ull;
            if ((count_ + 1) * 4 > slots_.size() * 3)
                grow();
            std::size_t mask = slots_.size() - 1;
            std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
            while (slots_[i] != kEmpty) {
                if (slots_[i] == key)
                    return false;
                i = (i + 1) & mask;
            }
            slots_[i] = key;
            ++count_;
            return true;
        }

      private:
        static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

        /** splitmix64 finalizer: spreads packed (block << 32 | state)
         *  keys, whose low bits alone are highly regular. */
        static std::uint64_t
        mix(std::uint64_t x)
        {
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ull;
            x ^= x >> 27;
            x *= 0x94d049bb133111ebull;
            x ^= x >> 31;
            return x;
        }

        void
        grow()
        {
            std::size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
            std::vector<std::uint64_t> old = std::move(slots_);
            slots_.assign(cap, kEmpty);
            std::size_t mask = cap - 1;
            for (std::uint64_t key : old) {
                if (key == kEmpty)
                    continue;
                std::size_t i =
                    static_cast<std::size_t>(mix(key)) & mask;
                while (slots_[i] != kEmpty)
                    i = (i + 1) & mask;
                slots_[i] = key;
            }
        }

        std::vector<std::uint64_t> slots_;
        std::size_t count_ = 0;
    };

    /**
     * The visited-set key for an entry. Integral state keys without
     * pruning pack exactly into (block << 32) | key — membership is
     * collision-free, so the engine's semantic counters (visits,
     * cache_hits, transitions) are exact, not probabilistic. String
     * keys, and any walk with pruning enabled (whose key must also
     * encode the path's branch outcomes and value constraints), use a
     * 64-bit FNV-1a digest.
     */
    std::uint64_t
    visitedKey(const Entry& entry) const
    {
        if constexpr (kIntegralKey) {
            if (options_.prune_strategy == PruneStrategy::Off)
                return (static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(entry.block))
                        << 32) |
                       static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(entry.state.key()));
        }
        support::Fnv1a h;
        h.u64(static_cast<std::uint64_t>(entry.block));
        if constexpr (kIntegralKey)
            h.u64(static_cast<std::uint64_t>(entry.state.key()));
        else
            h.str(entry.state.key());
        h.u64(FeasibilityContext::factsDigest(entry.facts));
        return h.value();
    }

    /** Bytes a pending entry pins: the entry itself, its key's heap
     *  footprint, the facts' heap (outcome vector plus constraint
     *  store), the witness trail's bounded payload, and the
     *  visited-set slot. */
    static std::size_t
    entryBytes(const Entry& entry)
    {
        std::size_t bytes = sizeof(Entry) + sizeof(std::uint64_t) +
                            entry.facts.outcomes.capacity() *
                                sizeof(Outcomes::value_type) +
                            entry.facts.constraints.heapBytes() +
                            entry.trail.heapBytes();
        if constexpr (!kIntegralKey)
            bytes += entry.state.key().size();
        return bytes;
    }

    Hooks hooks_;
    WalkOptions options_;
};

} // namespace mc::metal

#endif // MCHECK_METAL_PATH_WALKER_H
