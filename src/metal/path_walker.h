#ifndef MCHECK_METAL_PATH_WALKER_H
#define MCHECK_METAL_PATH_WALKER_H

#include "cfg/cfg.h"
#include "support/budget.h"

#include <cctype>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mc::metal {

/**
 * Generic path-sensitive traversal with client-defined state.
 *
 * This is xg++'s "apply the extension down every path" core. The walker
 * visits CFG blocks depth-first from the entry, threading a client state
 * value through each path. Exponential blowup is avoided the way xg++
 * avoids it: a (block, state) pair is visited at most once, which is
 * exact for checkers whose behavior depends only on the current state and
 * statement (all of ours).
 *
 * The client state type must provide:
 *   - copy construction (paths fork at branches);
 *   - `std::string key() const` — a stable encoding used for the
 *     (block, state) visited set;
 *   - `bool dead() const` — true when this path needs no further
 *     exploration (the metal `stop` state).
 */
template <typename State>
class PathWalker
{
  public:
    struct Hooks
    {
        /** Called for each statement of each visited block, in order. */
        std::function<void(State&, const lang::Stmt&)> on_stmt;
        /**
         * Called when leaving a branch block, once per out-edge, with
         * the branch condition and the index of the taken edge (0 = the
         * true edge for if/while). Lets clients be value-sensitive the
         * way Section 6.1's twelve-line refinement is.
         */
        std::function<void(State&, const lang::Expr&, std::size_t)>
            on_branch;
        /** Called when a path reaches the function's exit block. */
        std::function<void(State&)> on_exit;
    };

    struct Result
    {
        /** Number of (block, state) visits performed (= cache misses). */
        std::uint64_t visits = 0;
        /** True if the visit cap stopped exploration early. */
        bool truncated = false;
        /** Branch edges pruned as contradictory (pruning mode only). */
        std::uint64_t pruned_edges = 0;
        /**
         * Paths abandoned because their (block, state) pair had already
         * been visited — the cache hits that keep 2^N-path functions
         * linear. visits + cache_hits = pairs popped off the work list.
         */
        std::uint64_t cache_hits = 0;
        /** Largest pending-path frontier (work-list depth) reached. */
        std::uint64_t peak_frontier = 0;
        /**
         * Which per-unit resource budget limit stopped the walk, if any
         * (truncated is also set). None for max_visits truncation.
         */
        support::BudgetStop budget_stop = support::BudgetStop::None;
    };

    struct WalkOptions
    {
        std::uint64_t max_visits = 1u << 22;
        /**
         * Prune statically impossible paths through *correlated
         * branches*: when two two-way branches test the syntactically
         * identical (side-effect-free) condition along one path, the
         * second must take the same edge as the first. This is the
         * "more elaborate analysis" the paper's Section 5 describes and
         * declines to build; the path-pruning ablation measures what it
         * buys. Negated conditions (`!c` vs `c`) correlate too.
         */
        bool prune_correlated_branches = false;
    };

    explicit PathWalker(Hooks hooks, std::uint64_t max_visits = 1u << 22)
        : hooks_(std::move(hooks))
    {
        options_.max_visits = max_visits;
    }

    PathWalker(Hooks hooks, const WalkOptions& options)
        : hooks_(std::move(hooks)), options_(options)
    {}

    /** Walk `cfg` starting from `initial` state at the entry block. */
    Result
    walk(const cfg::Cfg& cfg, const State& initial)
    {
        /** Client state plus the path's recorded branch outcomes. */
        struct Entry
        {
            int block;
            State state;
            std::map<std::string, bool> outcomes;
        };

        Result result;
        std::set<std::pair<int, std::string>> visited;
        std::vector<Entry> stack;
        stack.push_back(Entry{cfg.entryId(), initial, {}});
        result.peak_frontier = 1;

        while (!stack.empty()) {
            if (stack.size() > result.peak_frontier)
                result.peak_frontier = stack.size();
            Entry entry = std::move(stack.back());
            stack.pop_back();

            std::string key = entry.state.key();
            if (options_.prune_correlated_branches)
                for (const auto& [cond, value] : entry.outcomes)
                    key += (value ? "|+" : "|-") + cond;
            std::size_t key_size = key.size();
            if (!visited.emplace(entry.block, std::move(key)).second) {
                ++result.cache_hits;
                continue;
            }
            // Cap check precedes the count: a capped walk performs (and
            // reports) exactly max_visits fully-processed visits. An
            // earlier version counted first and bailed after, so visits
            // ended at max_visits + 1 with the last visit's block never
            // actually processed.
            if (result.visits >= options_.max_visits) {
                result.truncated = true;
                return result;
            }
            // The unit's resource budget (installed by the parallel
            // engine's UnitGuard) governs the whole (function, checker)
            // unit across all of its walks: one step per visit, bytes
            // for the visited-set key plus the frontier entry. Like the
            // visit cap, exhaustion truncates gracefully — partial
            // results survive; nothing is thrown.
            if (support::Budget* budget = support::Budget::current()) {
                budget->chargeStep();
                budget->chargeBytes(sizeof(Entry) + key_size);
                if (budget->exhausted()) {
                    result.truncated = true;
                    result.budget_stop = budget->stop();
                    return result;
                }
            }
            ++result.visits;

            const cfg::BasicBlock& bb = cfg.block(entry.block);
            for (const lang::Stmt* stmt : bb.stmts) {
                if (hooks_.on_stmt)
                    hooks_.on_stmt(entry.state, *stmt);
                if (options_.prune_correlated_branches &&
                    !entry.outcomes.empty())
                    invalidateOutcomes(*stmt, entry.outcomes);
                if (entry.state.dead())
                    break;
            }
            if (entry.state.dead())
                continue;

            if (entry.block == cfg.exitId()) {
                if (hooks_.on_exit)
                    hooks_.on_exit(entry.state);
                continue;
            }

            for (std::size_t i = 0; i < bb.succs.size(); ++i) {
                // The popped entry is dead after this loop, so the last
                // successor steals its state and outcomes instead of
                // copying them — one fewer deep copy per non-branch
                // block, which is most of a walk.
                bool last = i + 1 == bb.succs.size();
                Entry next =
                    last ? Entry{bb.succs[i], std::move(entry.state),
                                 std::move(entry.outcomes)}
                         : Entry{bb.succs[i], entry.state, entry.outcomes};
                if (bb.isBranch() && hooks_.on_branch)
                    hooks_.on_branch(next.state, *bb.branch_cond, i);
                if (next.state.dead())
                    continue;
                if (options_.prune_correlated_branches && bb.isBranch() &&
                    bb.succs.size() == 2 &&
                    !recordOutcome(*bb.branch_cond, i == 0,
                                   next.outcomes)) {
                    ++result.pruned_edges;
                    continue; // contradicts an earlier outcome
                }
                stack.push_back(std::move(next));
            }
        }
        return result;
    }

  private:
    /**
     * Record "cond evaluated to `value`" in `outcomes`. Returns false if
     * that contradicts a previously recorded outcome on this path.
     * Conditions with calls or assignments are not correlated (their
     * value can change between tests).
     */
    static bool
    recordOutcome(const lang::Expr& cond, bool value,
                  std::map<std::string, bool>& outcomes)
    {
        const lang::Expr* base = &cond;
        while (base->ekind == lang::ExprKind::Unary &&
               static_cast<const lang::UnaryExpr*>(base)->op ==
                   lang::UnaryOp::Not) {
            base = static_cast<const lang::UnaryExpr*>(base)->operand;
            value = !value;
        }
        bool impure = false;
        lang::forEachSubExpr(*base, [&](const lang::Expr& e) {
            if (e.ekind == lang::ExprKind::Call)
                impure = true;
            if (e.ekind == lang::ExprKind::Binary &&
                lang::isAssignment(
                    static_cast<const lang::BinaryExpr&>(e).op))
                impure = true;
            if (e.ekind == lang::ExprKind::Unary) {
                auto op = static_cast<const lang::UnaryExpr&>(e).op;
                if (op == lang::UnaryOp::PreInc ||
                    op == lang::UnaryOp::PreDec ||
                    op == lang::UnaryOp::PostInc ||
                    op == lang::UnaryOp::PostDec)
                    impure = true;
            }
        });
        if (impure)
            return true;
        std::string text = lang::exprToString(*base);
        auto [it, inserted] = outcomes.emplace(std::move(text), value);
        return inserted || it->second == value;
    }

    /** True if `name` occurs as a whole identifier inside `text`. */
    static bool
    mentionsIdent(const std::string& text, const std::string& name)
    {
        std::size_t pos = 0;
        auto is_word = [](char c) {
            return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
        };
        while ((pos = text.find(name, pos)) != std::string::npos) {
            bool left_ok = pos == 0 || !is_word(text[pos - 1]);
            std::size_t end = pos + name.size();
            bool right_ok = end >= text.size() || !is_word(text[end]);
            if (left_ok && right_ok)
                return true;
            pos = end;
        }
        return false;
    }

    /**
     * Drop recorded outcomes whose condition mentions a variable this
     * statement assigns — the re-test of the condition is no longer
     * correlated with the first.
     */
    static void
    invalidateOutcomes(const lang::Stmt& stmt,
                       std::map<std::string, bool>& outcomes)
    {
        std::vector<std::string> assigned;
        if (stmt.skind == lang::StmtKind::Decl)
            for (const lang::VarDecl* v :
                 static_cast<const lang::DeclStmt&>(stmt).decls)
                assigned.push_back(v->name);
        lang::forEachTopLevelExpr(stmt, [&](const lang::Expr& top) {
            lang::forEachSubExpr(top, [&](const lang::Expr& e) {
                const lang::Expr* target = nullptr;
                if (e.ekind == lang::ExprKind::Binary &&
                    lang::isAssignment(
                        static_cast<const lang::BinaryExpr&>(e).op))
                    target = static_cast<const lang::BinaryExpr&>(e).lhs;
                if (e.ekind == lang::ExprKind::Unary) {
                    auto op = static_cast<const lang::UnaryExpr&>(e).op;
                    if (op == lang::UnaryOp::PreInc ||
                        op == lang::UnaryOp::PreDec ||
                        op == lang::UnaryOp::PostInc ||
                        op == lang::UnaryOp::PostDec)
                        target =
                            static_cast<const lang::UnaryExpr&>(e).operand;
                }
                if (target && target->ekind == lang::ExprKind::Ident)
                    assigned.push_back(
                        static_cast<const lang::IdentExpr*>(target)->name);
            });
        });
        if (assigned.empty())
            return;
        for (auto it = outcomes.begin(); it != outcomes.end();) {
            bool hit = false;
            for (const std::string& name : assigned)
                hit |= mentionsIdent(it->first, name);
            it = hit ? outcomes.erase(it) : ++it;
        }
    }

    Hooks hooks_;
    WalkOptions options_;
};

} // namespace mc::metal

#endif // MCHECK_METAL_PATH_WALKER_H
