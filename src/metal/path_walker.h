#ifndef MCHECK_METAL_PATH_WALKER_H
#define MCHECK_METAL_PATH_WALKER_H

#include "cfg/cfg.h"
#include "metal/feasibility.h"
#include "support/budget.h"
#include "support/hash.h"
#include "support/interner.h"
#include "support/metrics.h"
#include "support/run_ledger.h"
#include "support/witness.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace mc::metal {

/**
 * Generic path-sensitive traversal with client-defined state.
 *
 * This is xg++'s "apply the extension down every path" core. The walker
 * visits CFG blocks depth-first from the entry, threading a client state
 * value through each path. Exponential blowup is avoided the way xg++
 * avoids it: a (block, state) pair is visited at most once, which is
 * exact for checkers whose behavior depends only on the current state and
 * statement (all of ours).
 *
 * The pending-path frontier is struct-of-arrays: block ids, states,
 * path facts, and witness trails live in parallel vectors, with the
 * facts and trail columns only maintained in the modes that use them —
 * the common (no pruning, no witness) walk pushes and pops nothing but
 * an int and a trivially-small state, keeping the pop/probe/fork loop
 * cache-dense.
 *
 * The client state type must provide:
 *   - copy construction (paths fork at branches);
 *   - `key() const` returning either `std::string` or an unsigned
 *     integral of at most 32 bits — a stable encoding used for the
 *     (block, state) visited set. Integral keys are packed with the
 *     block id into one exact 64-bit word (no hashing, no collisions);
 *     string keys are FNV-1a hashed;
 *   - `bool dead() const` — true when this path needs no further
 *     exploration (the metal `stop` state).
 */
template <typename State>
class PathWalker
{
  public:
    struct Hooks
    {
        /** Called for each statement of each visited block, in order. */
        std::function<void(State&, const lang::Stmt&)> on_stmt;
        /**
         * Indexed twin of on_stmt: additionally receives the block id and
         * the statement's position within that block, so clients can
         * address precomputed per-(block, position) tables without any
         * pointer hashing. When set, it is called instead of on_stmt.
         */
        std::function<void(State&, const lang::Stmt&, int, std::size_t)>
            on_stmt_at;
        /**
         * Called when leaving a branch block, once per out-edge, with
         * the branch condition and the index of the taken edge (0 = the
         * true edge for if/while). Lets clients be value-sensitive the
         * way Section 6.1's twelve-line refinement is.
         */
        std::function<void(State&, const lang::Expr&, std::size_t)>
            on_branch;
        /** Called when a path reaches the function's exit block. */
        std::function<void(State&)> on_exit;
        /**
         * Block-range prefilter: called once per visited block (before
         * its statement loop) with the path state and block id. A true
         * return skips the statement loop for this visit — the client
         * guarantees no statement hook would have any effect (see
         * TransitionTable::blockSkippable, whose bits are exact). The
         * visit itself still happens: visited-set insertion, visit
         * counting, budget charging, witness block recording, and
         * successor fan-out are identical, so every semantic counter
         * and all diagnostics are byte-identical with the hook unset.
         * Ignored while pruning — feasibility invalidation is
         * per-statement and must see every statement.
         */
        std::function<bool(const State&, int)> skip_block;
    };

    struct Result
    {
        /** Number of (block, state) visits performed (= cache misses). */
        std::uint64_t visits = 0;
        /** True if the visit cap stopped exploration early. */
        bool truncated = false;
        /** Branch edges pruned as contradictory (pruning mode only). */
        std::uint64_t pruned_edges = 0;
        /** Feasibility verdicts answered from the per-(block, facts)
         *  prune-decision cache instead of re-deciding. */
        std::uint64_t prune_cache_hits = 0;
        /** Branch blocks pruning had to skip because they fan out to
         *  other than two successors (switch-lowered branches). */
        std::uint64_t prune_skipped_nary = 0;
        /**
         * Paths abandoned because their (block, state) pair had already
         * been visited — the cache hits that keep 2^N-path functions
         * linear. visits + cache_hits = pairs popped off the work list.
         */
        std::uint64_t cache_hits = 0;
        /** Largest pending-path frontier (work-list depth) reached. */
        std::uint64_t peak_frontier = 0;
        /**
         * Which per-unit resource budget limit stopped the walk, if any
         * (truncated is also set). None for max_visits truncation.
         */
        support::BudgetStop budget_stop = support::BudgetStop::None;
    };

    struct WalkOptions
    {
        std::uint64_t max_visits = 1u << 22;
        /**
         * Prune statically impossible paths (feasibility.h). Correlated
         * rejects re-takes of the syntactically identical condition —
         * the "more elaborate analysis" the paper's Section 5 describes
         * and declines to build. Constraints layers a semantic value
         * domain on top, so `x == 5` followed by `x > 10` is pruned
         * even though the two conditions never render to the same text.
         */
        PruneStrategy prune_strategy = PruneStrategy::Off;
    };

    explicit PathWalker(Hooks hooks, std::uint64_t max_visits = 1u << 22)
        : hooks_(std::move(hooks))
    {
        options_.max_visits = max_visits;
    }

    PathWalker(Hooks hooks, const WalkOptions& options)
        : hooks_(std::move(hooks)), options_(options)
    {}

    /** Walk `cfg` starting from `initial` state at the entry block. */
    Result
    walk(const cfg::Cfg& cfg, const State& initial)
    {
        Result result;
        FeasibilityContext feas(options_.prune_strategy);
        const bool pruning = feas.enabled();
        // Per-thread scratch: the visited-set slab and the four frontier
        // columns are reused across walks so the typical (small) function
        // costs zero heap allocations per run instead of five or six.
        // Purely an allocation cache — every buffer is cleared on
        // checkout, so results are identical to fresh locals. The in-use
        // guard falls back to fresh locals if a hook ever re-enters
        // walk() on the same thread.
        ScratchLease lease;
        VisitedSet visited(lease->visited_slots);
        // Witness capture is resolved once per walk: when off, every
        // pending path carries an inert trail (a null pointer member),
        // so the per-fork cost is copying one nullptr and the
        // per-statement cost is zero.
        const bool witness_on = support::witnessEnabled();
        const unsigned witness_cap = support::witnessLimit();
        // Block skipping is sound only when statements are effect-free
        // for this path, which pruning breaks (per-statement fact
        // invalidation must run).
        const bool can_skip =
            !pruning && static_cast<bool>(hooks_.skip_block);

        // Struct-of-arrays frontier: the pop/probe/fork loop touches
        // the dense block/state rows; facts and trails are only
        // maintained (and only allocated) in the modes that use them.
        // Push/pop order is identical to the old entry-object stack,
        // so exploration order — and thus peak_frontier — is unchanged.
        std::vector<int>& f_block = lease->f_block;
        std::vector<State>& f_state = lease->f_state;
        std::vector<PathFacts>& f_facts = lease->f_facts;
        std::vector<support::WitnessTrail>& f_trail = lease->f_trail;
        f_block.push_back(cfg.entryId());
        f_state.push_back(initial);
        if (pruning)
            f_facts.emplace_back();
        if (witness_on)
            f_trail.emplace_back(true);
        result.peak_frontier = 1;

        while (!f_block.empty()) {
            if (f_block.size() > result.peak_frontier)
                result.peak_frontier = f_block.size();
            const int block = f_block.back();
            f_block.pop_back();
            State state = std::move(f_state.back());
            f_state.pop_back();
            PathFacts facts;
            if (pruning) {
                facts = std::move(f_facts.back());
                f_facts.pop_back();
            }
            support::WitnessTrail trail(false);
            if (witness_on) {
                trail = std::move(f_trail.back());
                f_trail.pop_back();
            }

            if (!visited.insert(visitedKey(block, state, facts))) {
                ++result.cache_hits;
                continue;
            }
            // Cap check precedes the count: a capped walk performs (and
            // reports) exactly max_visits fully-processed visits. An
            // earlier version counted first and bailed after, so visits
            // ended at max_visits + 1 with the last visit's block never
            // actually processed.
            if (result.visits >= options_.max_visits) {
                result.truncated = true;
                result.prune_cache_hits = feas.cacheHits();
                publishUnitStats(result);
                return result;
            }
            // The unit's resource budget (installed by the parallel
            // engine's UnitGuard) governs the whole (function, checker)
            // unit across all of its walks: one step per visit, bytes
            // for the frontier entry (including the heap behind the
            // state key and the recorded branch outcomes) plus the
            // 8-byte visited-set key. Like the visit cap, exhaustion
            // truncates gracefully — partial results survive; nothing
            // is thrown.
            if (support::Budget* budget = support::Budget::current()) {
                budget->chargeStep();
                budget->chargeBytes(entryBytes(state, facts, trail));
                if (budget->exhausted()) {
                    result.truncated = true;
                    result.budget_stop = budget->stop();
                    result.prune_cache_hits = feas.cacheHits();
                    publishUnitStats(result);
                    return result;
                }
            }
            ++result.visits;

            // Record the block on the path segment and expose the trail
            // to statement hooks (and, transitively, to DiagnosticSink
            // reports made from checker actions) for this visit.
            std::optional<support::WitnessTrailScope> witness_scope;
            if (witness_on) {
                trail.addBlock(block, witness_cap);
                witness_scope.emplace(&trail);
            }

            const cfg::BasicBlock& bb = cfg.block(block);
            // The prefilter consults per-state bits, so it runs after
            // the visit is committed but before any statement work; a
            // skipped block performs zero per-statement hook calls.
            const bool scan =
                !bb.stmts.empty() &&
                !(can_skip && hooks_.skip_block(state, block));
            if (scan) {
                for (std::size_t si = 0; si < bb.stmts.size(); ++si) {
                    const lang::Stmt* stmt = bb.stmts[si];
                    if (hooks_.on_stmt_at)
                        hooks_.on_stmt_at(state, *stmt, block, si);
                    else if (hooks_.on_stmt)
                        hooks_.on_stmt(state, *stmt);
                    if (pruning)
                        feas.invalidate(*stmt, facts);
                    if (state.dead())
                        break;
                }
            }
            if (state.dead())
                continue;

            if (block == cfg.exitId()) {
                if (hooks_.on_exit)
                    hooks_.on_exit(state);
                continue;
            }

            // Successor fan-out runs in two phases so that pruned edges
            // are dead on arrival: phase one classifies every out-edge
            // against the path's facts (pure — nothing mutated), phase
            // two forks only the feasible ones. on_branch therefore
            // never fires on a pruned edge — an earlier version ran the
            // hook first and pruned after, so contradictory edges still
            // executed branch transitions, inflating sm_transitions and
            // witness state on paths that were about to be discarded.
            const bool prunable =
                pruning && bb.isBranch() && bb.succs.size() == 2;
            if (pruning && bb.isBranch() && bb.succs.size() != 2)
                ++result.prune_skipped_nary;
            unsigned feasible_mask = ~0u;
            if (prunable) {
                std::uint64_t digest =
                    FeasibilityContext::factsDigest(facts);
                for (std::size_t i = 0; i < 2; ++i) {
                    if (feas.edgeFeasible(block, *bb.branch_cond,
                                          i == 0, facts, digest))
                        continue;
                    feasible_mask &= ~(1u << i);
                    ++result.pruned_edges;
                    // Note the pruned edge on the popped path's trail
                    // before forking: every surviving sibling path
                    // carries the evidence that its twin was cut.
                    if (witness_on)
                        trail.addStep(
                            support::WitnessStep{
                                "path", "pruned", bb.branch_cond->loc,
                                prunedEdgeNote(bb, i)},
                            witness_cap);
                }
            }
            std::size_t last_live = bb.succs.size();
            for (std::size_t i = 0; i < bb.succs.size(); ++i)
                if (feasible_mask >> i & 1u)
                    last_live = i;
            for (std::size_t i = 0; i < bb.succs.size(); ++i) {
                if (!(feasible_mask >> i & 1u))
                    continue; // contradicts the path's facts
                // The popped path is dead after this loop, so the last
                // surviving successor steals its state and facts instead
                // of copying them — one fewer deep copy per non-branch
                // block, which is most of a walk.
                const bool steal = i == last_live;
                State next_state = steal ? std::move(state) : state;
                PathFacts next_facts;
                if (pruning) {
                    if (steal)
                        next_facts = std::move(facts);
                    else
                        next_facts = facts;
                }
                support::WitnessTrail next_trail(false);
                if (witness_on) {
                    if (steal)
                        next_trail = std::move(trail);
                    else
                        next_trail = trail;
                }
                if (prunable)
                    feas.applyEdge(*bb.branch_cond, i == 0, next_facts);
                if (bb.isBranch() && hooks_.on_branch)
                    hooks_.on_branch(next_state, *bb.branch_cond, i);
                if (next_state.dead())
                    continue;
                f_block.push_back(bb.succs[i]);
                f_state.push_back(std::move(next_state));
                if (pruning)
                    f_facts.push_back(std::move(next_facts));
                if (witness_on)
                    f_trail.push_back(std::move(next_trail));
            }
        }
        result.prune_cache_hits = feas.cacheHits();
        publishUnitStats(result);
        return result;
    }

  private:
    /** Deterministic annotation for a pruned edge's witness step. */
    static std::string
    prunedEdgeNote(const cfg::BasicBlock& bb, std::size_t edge)
    {
        return "infeasible edge to block " +
               std::to_string(bb.succs[edge]) + ": branch cannot be " +
               (edge == 0 ? "true" : "false") +
               " given earlier branches on this path";
    }

    /**
     * Fold this walk's tallies into the thread's active per-unit ledger
     * accumulator, if any (installed by the unit runners), and into the
     * walker.* metrics. One TLS load and one enabled check per walk;
     * nothing per visit.
     */
    static void
    publishUnitStats(const Result& result)
    {
        if (support::LedgerUnitStats* stats =
                support::LedgerUnitStats::current()) {
            stats->visits += result.visits;
            stats->pruned_edges += result.pruned_edges;
            stats->prune_cache_hits += result.prune_cache_hits;
            stats->prune_skipped_nary += result.prune_skipped_nary;
        }
        support::MetricsRegistry& metrics =
            support::MetricsRegistry::global();
        if (metrics.enabled()) {
            metrics.counter("walker.infeasible_pruned")
                .add(result.pruned_edges);
            metrics.counter("walker.prune_cache_hits")
                .add(result.prune_cache_hits);
            metrics.counter("walker.prune_skipped_nary")
                .add(result.prune_skipped_nary);
        }
    }

    using KeyType = decltype(std::declval<const State&>().key());
    static constexpr bool kIntegralKey =
        std::is_integral_v<KeyType> && sizeof(KeyType) <= 4;

    /**
     * Reusable per-thread walk buffers. The walker's fixed per-run cost
     * used to be dominated by first-touch heap allocations (the visited
     * slab plus four frontier columns); leasing them from thread-local
     * storage amortizes that across every walk a thread performs. Holds
     * no results — everything is cleared on checkout.
     */
    struct Scratch
    {
        std::vector<std::uint64_t> visited_slots;
        std::vector<int> f_block;
        std::vector<State> f_state;
        std::vector<PathFacts> f_facts;
        std::vector<support::WitnessTrail> f_trail;
        bool in_use = false;
    };

    /**
     * RAII checkout of the thread's Scratch. If a statement hook
     * re-enters walk() on the same thread (no current client does), the
     * nested lease falls back to a fresh heap-allocated Scratch, so
     * reuse is an optimization that can never alias two live walks.
     */
    class ScratchLease
    {
      public:
        ScratchLease()
        {
            Scratch& tls = threadScratch();
            if (!tls.in_use) {
                tls.in_use = true;
                scratch_ = &tls;
                owned_ = false;
            } else {
                scratch_ = new Scratch();
                owned_ = true;
            }
            scratch_->f_block.clear();
            scratch_->f_state.clear();
            scratch_->f_facts.clear();
            scratch_->f_trail.clear();
        }

        ScratchLease(const ScratchLease&) = delete;
        ScratchLease& operator=(const ScratchLease&) = delete;

        ~ScratchLease()
        {
            if (owned_)
                delete scratch_;
            else
                scratch_->in_use = false;
        }

        Scratch* operator->() const { return scratch_; }

      private:
        static Scratch&
        threadScratch()
        {
            static thread_local Scratch s;
            return s;
        }

        Scratch* scratch_;
        bool owned_;
    };

    /**
     * Open-addressing set of 64-bit visited keys: one flat allocation
     * and linear probing instead of a node per (block, state) — the
     * walker's busiest data structure. All-ones is the empty-slot
     * sentinel; it is unreachable for exact integral keys (block ids
     * are non-negative ints), and a key that hashes to it is remapped,
     * which on the digest path is just another hash collision.
     */
    class VisitedSet
    {
      public:
        /**
         * Borrows `slots` (normally the thread Scratch's slab) as
         * backing storage. A small slab from the previous walk is wiped
         * and reused in place; one that grew past 4096 slots is
         * released so a single huge function does not tax every later
         * walk on this thread with a proportionally large clear.
         */
        explicit VisitedSet(std::vector<std::uint64_t>& slots)
            : slots_(slots)
        {
            if (slots_.size() > 4096)
                std::vector<std::uint64_t>().swap(slots_);
            else
                std::fill(slots_.begin(), slots_.end(), kEmpty);
        }

        /** True if `key` was newly inserted, false if already present. */
        bool
        insert(std::uint64_t key)
        {
            if (key == kEmpty)
                key = 0x9e3779b97f4a7c15ull;
            if ((count_ + 1) * 4 > slots_.size() * 3)
                grow();
            std::size_t mask = slots_.size() - 1;
            std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
            while (slots_[i] != kEmpty) {
                if (slots_[i] == key)
                    return false;
                i = (i + 1) & mask;
            }
            slots_[i] = key;
            ++count_;
            return true;
        }

      private:
        static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

        /** splitmix64 finalizer: spreads packed (block << 32 | state)
         *  keys, whose low bits alone are highly regular. */
        static std::uint64_t
        mix(std::uint64_t x)
        {
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ull;
            x ^= x >> 27;
            x *= 0x94d049bb133111ebull;
            x ^= x >> 31;
            return x;
        }

        void
        grow()
        {
            std::size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
            std::vector<std::uint64_t> old = std::move(slots_);
            slots_.assign(cap, kEmpty);
            std::size_t mask = cap - 1;
            for (std::uint64_t key : old) {
                if (key == kEmpty)
                    continue;
                std::size_t i =
                    static_cast<std::size_t>(mix(key)) & mask;
                while (slots_[i] != kEmpty)
                    i = (i + 1) & mask;
                slots_[i] = key;
            }
        }

        std::vector<std::uint64_t>& slots_;
        std::size_t count_ = 0;
    };

    /**
     * The visited-set key for an entry. Integral state keys without
     * pruning pack exactly into (block << 32) | key — membership is
     * collision-free, so the engine's semantic counters (visits,
     * cache_hits, transitions) are exact, not probabilistic. String
     * keys, and any walk with pruning enabled (whose key must also
     * encode the path's branch outcomes and value constraints), use a
     * 64-bit FNV-1a digest.
     */
    std::uint64_t
    visitedKey(int block, const State& state,
               const PathFacts& facts) const
    {
        if constexpr (kIntegralKey) {
            if (options_.prune_strategy == PruneStrategy::Off)
                return (static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(block))
                        << 32) |
                       static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(state.key()));
        }
        support::Fnv1a h;
        h.u64(static_cast<std::uint64_t>(block));
        if constexpr (kIntegralKey)
            h.u64(static_cast<std::uint64_t>(state.key()));
        else
            h.str(state.key());
        h.u64(FeasibilityContext::factsDigest(facts));
        return h.value();
    }

    /** Bytes a pending path pins: its frontier row (one slot in each
     *  parallel array), its key's heap footprint, the facts' heap
     *  (outcome vector plus constraint store), the witness trail's
     *  bounded payload, and the visited-set slot. */
    static std::size_t
    entryBytes(const State& state, const PathFacts& facts,
               const support::WitnessTrail& trail)
    {
        std::size_t bytes = sizeof(int) + sizeof(State) +
                            sizeof(PathFacts) +
                            sizeof(support::WitnessTrail) +
                            sizeof(std::uint64_t) +
                            facts.outcomes.capacity() *
                                sizeof(Outcomes::value_type) +
                            facts.constraints.heapBytes() +
                            trail.heapBytes();
        if constexpr (!kIntegralKey)
            bytes += state.key().size();
        return bytes;
    }

    Hooks hooks_;
    WalkOptions options_;
};

} // namespace mc::metal

#endif // MCHECK_METAL_PATH_WALKER_H
