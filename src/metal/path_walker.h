#ifndef MCHECK_METAL_PATH_WALKER_H
#define MCHECK_METAL_PATH_WALKER_H

#include "cfg/cfg.h"
#include "support/budget.h"
#include "support/hash.h"
#include "support/interner.h"
#include "support/run_ledger.h"
#include "support/witness.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mc::metal {

/**
 * Generic path-sensitive traversal with client-defined state.
 *
 * This is xg++'s "apply the extension down every path" core. The walker
 * visits CFG blocks depth-first from the entry, threading a client state
 * value through each path. Exponential blowup is avoided the way xg++
 * avoids it: a (block, state) pair is visited at most once, which is
 * exact for checkers whose behavior depends only on the current state and
 * statement (all of ours).
 *
 * The client state type must provide:
 *   - copy construction (paths fork at branches);
 *   - `key() const` returning either `std::string` or an unsigned
 *     integral of at most 32 bits — a stable encoding used for the
 *     (block, state) visited set. Integral keys are packed with the
 *     block id into one exact 64-bit word (no hashing, no collisions);
 *     string keys are FNV-1a hashed;
 *   - `bool dead() const` — true when this path needs no further
 *     exploration (the metal `stop` state).
 */
template <typename State>
class PathWalker
{
  public:
    struct Hooks
    {
        /** Called for each statement of each visited block, in order. */
        std::function<void(State&, const lang::Stmt&)> on_stmt;
        /**
         * Indexed twin of on_stmt: additionally receives the block id and
         * the statement's position within that block, so clients can
         * address precomputed per-(block, position) tables without any
         * pointer hashing. When set, it is called instead of on_stmt.
         */
        std::function<void(State&, const lang::Stmt&, int, std::size_t)>
            on_stmt_at;
        /**
         * Called when leaving a branch block, once per out-edge, with
         * the branch condition and the index of the taken edge (0 = the
         * true edge for if/while). Lets clients be value-sensitive the
         * way Section 6.1's twelve-line refinement is.
         */
        std::function<void(State&, const lang::Expr&, std::size_t)>
            on_branch;
        /** Called when a path reaches the function's exit block. */
        std::function<void(State&)> on_exit;
    };

    struct Result
    {
        /** Number of (block, state) visits performed (= cache misses). */
        std::uint64_t visits = 0;
        /** True if the visit cap stopped exploration early. */
        bool truncated = false;
        /** Branch edges pruned as contradictory (pruning mode only). */
        std::uint64_t pruned_edges = 0;
        /**
         * Paths abandoned because their (block, state) pair had already
         * been visited — the cache hits that keep 2^N-path functions
         * linear. visits + cache_hits = pairs popped off the work list.
         */
        std::uint64_t cache_hits = 0;
        /** Largest pending-path frontier (work-list depth) reached. */
        std::uint64_t peak_frontier = 0;
        /**
         * Which per-unit resource budget limit stopped the walk, if any
         * (truncated is also set). None for max_visits truncation.
         */
        support::BudgetStop budget_stop = support::BudgetStop::None;
    };

    struct WalkOptions
    {
        std::uint64_t max_visits = 1u << 22;
        /**
         * Prune statically impossible paths through *correlated
         * branches*: when two two-way branches test the syntactically
         * identical (side-effect-free) condition along one path, the
         * second must take the same edge as the first. This is the
         * "more elaborate analysis" the paper's Section 5 describes and
         * declines to build; the path-pruning ablation measures what it
         * buys. Negated conditions (`!c` vs `c`) correlate too.
         */
        bool prune_correlated_branches = false;
    };

    explicit PathWalker(Hooks hooks, std::uint64_t max_visits = 1u << 22)
        : hooks_(std::move(hooks))
    {
        options_.max_visits = max_visits;
    }

    PathWalker(Hooks hooks, const WalkOptions& options)
        : hooks_(std::move(hooks)), options_(options)
    {}

    /** Walk `cfg` starting from `initial` state at the entry block. */
    Result
    walk(const cfg::Cfg& cfg, const State& initial)
    {
        Result result;
        CondTable conds;
        VisitedSet visited;
        // Witness capture is resolved once per walk: when off, every
        // entry carries an inert trail (a null pointer member), so the
        // per-fork cost is copying one nullptr and the per-statement
        // cost is zero.
        const bool witness_on = support::witnessEnabled();
        const unsigned witness_cap = support::witnessLimit();
        std::vector<Entry> stack;
        stack.push_back(Entry{cfg.entryId(), initial, {},
                              support::WitnessTrail(witness_on)});
        result.peak_frontier = 1;

        while (!stack.empty()) {
            if (stack.size() > result.peak_frontier)
                result.peak_frontier = stack.size();
            Entry entry = std::move(stack.back());
            stack.pop_back();

            if (!visited.insert(visitedKey(entry))) {
                ++result.cache_hits;
                continue;
            }
            // Cap check precedes the count: a capped walk performs (and
            // reports) exactly max_visits fully-processed visits. An
            // earlier version counted first and bailed after, so visits
            // ended at max_visits + 1 with the last visit's block never
            // actually processed.
            if (result.visits >= options_.max_visits) {
                result.truncated = true;
                publishUnitStats(result);
                return result;
            }
            // The unit's resource budget (installed by the parallel
            // engine's UnitGuard) governs the whole (function, checker)
            // unit across all of its walks: one step per visit, bytes
            // for the frontier entry (including the heap behind the
            // state key and the recorded branch outcomes) plus the
            // 8-byte visited-set key. Like the visit cap, exhaustion
            // truncates gracefully — partial results survive; nothing
            // is thrown.
            if (support::Budget* budget = support::Budget::current()) {
                budget->chargeStep();
                budget->chargeBytes(entryBytes(entry));
                if (budget->exhausted()) {
                    result.truncated = true;
                    result.budget_stop = budget->stop();
                    publishUnitStats(result);
                    return result;
                }
            }
            ++result.visits;

            // Record the block on the path segment and expose the trail
            // to statement hooks (and, transitively, to DiagnosticSink
            // reports made from checker actions) for this visit.
            std::optional<support::WitnessTrailScope> witness_scope;
            if (witness_on) {
                entry.trail.addBlock(entry.block, witness_cap);
                witness_scope.emplace(&entry.trail);
            }

            const cfg::BasicBlock& bb = cfg.block(entry.block);
            for (std::size_t si = 0; si < bb.stmts.size(); ++si) {
                const lang::Stmt* stmt = bb.stmts[si];
                if (hooks_.on_stmt_at)
                    hooks_.on_stmt_at(entry.state, *stmt, entry.block, si);
                else if (hooks_.on_stmt)
                    hooks_.on_stmt(entry.state, *stmt);
                if (options_.prune_correlated_branches &&
                    !entry.outcomes.empty())
                    conds.invalidateOutcomes(*stmt, entry.outcomes);
                if (entry.state.dead())
                    break;
            }
            if (entry.state.dead())
                continue;

            if (entry.block == cfg.exitId()) {
                if (hooks_.on_exit)
                    hooks_.on_exit(entry.state);
                continue;
            }

            for (std::size_t i = 0; i < bb.succs.size(); ++i) {
                // The popped entry is dead after this loop, so the last
                // successor steals its state and outcomes instead of
                // copying them — one fewer deep copy per non-branch
                // block, which is most of a walk.
                bool last = i + 1 == bb.succs.size();
                Entry next =
                    last ? Entry{bb.succs[i], std::move(entry.state),
                                 std::move(entry.outcomes),
                                 std::move(entry.trail)}
                         : Entry{bb.succs[i], entry.state, entry.outcomes,
                                 entry.trail};
                if (bb.isBranch() && hooks_.on_branch)
                    hooks_.on_branch(next.state, *bb.branch_cond, i);
                if (next.state.dead())
                    continue;
                if (options_.prune_correlated_branches && bb.isBranch() &&
                    bb.succs.size() == 2 &&
                    !conds.recordOutcome(*bb.branch_cond, i == 0,
                                         next.outcomes)) {
                    ++result.pruned_edges;
                    continue; // contradicts an earlier outcome
                }
                stack.push_back(std::move(next));
            }
        }
        publishUnitStats(result);
        return result;
    }

  private:
    /** Recorded branch outcomes: (condition id, value), sorted by id. */
    using Outcomes = std::vector<std::pair<std::uint32_t, bool>>;

    /** Client state plus the path's recorded branch outcomes. */
    struct Entry
    {
        int block;
        State state;
        Outcomes outcomes;
        /** Path provenance; inert (one null pointer) unless --witness. */
        support::WitnessTrail trail;
    };

    /**
     * Fold this walk's tallies into the thread's active per-unit ledger
     * accumulator, if any (installed by the unit runners). One TLS load
     * per walk; nothing per visit.
     */
    static void
    publishUnitStats(const Result& result)
    {
        if (support::LedgerUnitStats* stats =
                support::LedgerUnitStats::current())
            stats->visits += result.visits;
    }

    using KeyType = decltype(std::declval<const State&>().key());
    static constexpr bool kIntegralKey =
        std::is_integral_v<KeyType> && sizeof(KeyType) <= 4;

    /**
     * Open-addressing set of 64-bit visited keys: one flat allocation
     * and linear probing instead of a node per (block, state) — the
     * walker's busiest data structure. All-ones is the empty-slot
     * sentinel; it is unreachable for exact integral keys (block ids
     * are non-negative ints), and a key that hashes to it is remapped,
     * which on the digest path is just another hash collision.
     */
    class VisitedSet
    {
      public:
        /** True if `key` was newly inserted, false if already present. */
        bool
        insert(std::uint64_t key)
        {
            if (key == kEmpty)
                key = 0x9e3779b97f4a7c15ull;
            if ((count_ + 1) * 4 > slots_.size() * 3)
                grow();
            std::size_t mask = slots_.size() - 1;
            std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
            while (slots_[i] != kEmpty) {
                if (slots_[i] == key)
                    return false;
                i = (i + 1) & mask;
            }
            slots_[i] = key;
            ++count_;
            return true;
        }

      private:
        static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

        /** splitmix64 finalizer: spreads packed (block << 32 | state)
         *  keys, whose low bits alone are highly regular. */
        static std::uint64_t
        mix(std::uint64_t x)
        {
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ull;
            x ^= x >> 27;
            x *= 0x94d049bb133111ebull;
            x ^= x >> 31;
            return x;
        }

        void
        grow()
        {
            std::size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
            std::vector<std::uint64_t> old = std::move(slots_);
            slots_.assign(cap, kEmpty);
            std::size_t mask = cap - 1;
            for (std::uint64_t key : old) {
                if (key == kEmpty)
                    continue;
                std::size_t i =
                    static_cast<std::size_t>(mix(key)) & mask;
                while (slots_[i] != kEmpty)
                    i = (i + 1) & mask;
                slots_[i] = key;
            }
        }

        std::vector<std::uint64_t> slots_;
        std::size_t count_ = 0;
    };

    /**
     * The visited-set key for an entry. Integral state keys without
     * pruning pack exactly into (block << 32) | key — membership is
     * collision-free, so the engine's semantic counters (visits,
     * cache_hits, transitions) are exact, not probabilistic. String
     * keys, and any walk with pruning enabled (whose key must also
     * encode the path's branch outcomes), use a 64-bit FNV-1a digest.
     */
    std::uint64_t
    visitedKey(const Entry& entry) const
    {
        if constexpr (kIntegralKey) {
            if (!options_.prune_correlated_branches)
                return (static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(entry.block))
                        << 32) |
                       static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(entry.state.key()));
        }
        support::Fnv1a h;
        h.u64(static_cast<std::uint64_t>(entry.block));
        if constexpr (kIntegralKey)
            h.u64(static_cast<std::uint64_t>(entry.state.key()));
        else
            h.str(entry.state.key());
        for (const auto& [cond, value] : entry.outcomes) {
            h.u64(cond);
            h.u8(value ? 1 : 0);
        }
        return h.value();
    }

    /** Bytes a pending entry pins: the entry itself, its key's heap
     *  footprint, the outcome vector's heap, the witness trail's bounded
     *  payload, and the visited-set slot. */
    static std::size_t
    entryBytes(const Entry& entry)
    {
        std::size_t bytes = sizeof(Entry) + sizeof(std::uint64_t) +
                            entry.outcomes.capacity() *
                                sizeof(typename Outcomes::value_type) +
                            entry.trail.heapBytes();
        if constexpr (!kIntegralKey)
            bytes += entry.state.key().size();
        return bytes;
    }

    /**
     * Canonicalizes branch conditions to dense ids for outcome tracking.
     *
     * Two conditions share an id iff they render to the same source text
     * (after stripping `!` prefixes) — the same equivalence the legacy
     * string-keyed outcome map used. Per condition id the table keeps the
     * interned word tokens of that text, so assignment invalidation is a
     * sorted-id intersection instead of a substring scan. All caches are
     * per-walk; ids never escape the walk.
     */
    class CondTable
    {
      public:
        /**
         * Record "cond evaluated to `value`" in `outcomes`. Returns
         * false if that contradicts a previously recorded outcome on
         * this path. Conditions with calls or assignments are not
         * correlated (their value can change between tests).
         */
        bool
        recordOutcome(const lang::Expr& cond, bool value,
                      Outcomes& outcomes)
        {
            const CondInfo& info = condInfo(cond);
            if (info.impure)
                return true;
            if (info.flip)
                value = !value;
            auto it = std::lower_bound(
                outcomes.begin(), outcomes.end(), info.id,
                [](const auto& e, std::uint32_t id) { return e.first < id; });
            if (it != outcomes.end() && it->first == info.id)
                return it->second == value;
            outcomes.insert(it, {info.id, value});
            return true;
        }

        /**
         * Drop recorded outcomes whose condition mentions a variable
         * this statement assigns — the re-test of the condition is no
         * longer correlated with the first.
         */
        void
        invalidateOutcomes(const lang::Stmt& stmt, Outcomes& outcomes)
        {
            const std::vector<support::SymbolId>& assigned =
                assignedIdents(stmt);
            if (assigned.empty())
                return;
            outcomes.erase(
                std::remove_if(
                    outcomes.begin(), outcomes.end(),
                    [&](const std::pair<std::uint32_t, bool>& outcome) {
                        const std::vector<support::SymbolId>& toks =
                            tokens_[outcome.first];
                        for (support::SymbolId name : assigned)
                            if (std::binary_search(toks.begin(),
                                                   toks.end(), name))
                                return true;
                        return false;
                    }),
                outcomes.end());
        }

      private:
        struct CondInfo
        {
            std::uint32_t id = 0;
            /** Parity of stripped `!` prefixes on the original node. */
            bool flip = false;
            bool impure = false;
        };

        const CondInfo&
        condInfo(const lang::Expr& cond)
        {
            auto cached = by_node_.find(&cond);
            if (cached != by_node_.end())
                return cached->second;

            CondInfo info;
            const lang::Expr* base = &cond;
            while (base->ekind == lang::ExprKind::Unary &&
                   static_cast<const lang::UnaryExpr*>(base)->op ==
                       lang::UnaryOp::Not) {
                base = static_cast<const lang::UnaryExpr*>(base)->operand;
                info.flip = !info.flip;
            }
            lang::forEachSubExpr(*base, [&](const lang::Expr& e) {
                if (e.ekind == lang::ExprKind::Call)
                    info.impure = true;
                if (e.ekind == lang::ExprKind::Binary &&
                    lang::isAssignment(
                        static_cast<const lang::BinaryExpr&>(e).op))
                    info.impure = true;
                if (e.ekind == lang::ExprKind::Unary) {
                    auto op = static_cast<const lang::UnaryExpr&>(e).op;
                    if (op == lang::UnaryOp::PreInc ||
                        op == lang::UnaryOp::PreDec ||
                        op == lang::UnaryOp::PostInc ||
                        op == lang::UnaryOp::PostDec)
                        info.impure = true;
                }
            });
            if (!info.impure) {
                std::string text = lang::exprToString(*base);
                auto [it, inserted] = text_ids_.emplace(
                    std::move(text),
                    static_cast<std::uint32_t>(tokens_.size()));
                if (inserted)
                    tokens_.push_back(wordTokens(it->first));
                info.id = it->second;
            }
            return by_node_.emplace(&cond, info).first->second;
        }

        /**
         * The interned maximal [A-Za-z0-9_] runs of `text`, sorted and
         * deduplicated. Membership of an identifier in this set is
         * exactly the legacy whole-word substring test: every whole-word
         * occurrence is a maximal run and vice versa.
         */
        static std::vector<support::SymbolId>
        wordTokens(const std::string& text)
        {
            std::vector<support::SymbolId> out;
            auto& interner = support::SymbolInterner::global();
            auto is_word = [](char c) {
                return std::isalnum(static_cast<unsigned char>(c)) ||
                       c == '_';
            };
            std::size_t i = 0;
            while (i < text.size()) {
                if (!is_word(text[i])) {
                    ++i;
                    continue;
                }
                std::size_t start = i;
                while (i < text.size() && is_word(text[i]))
                    ++i;
                out.push_back(interner.intern(
                    std::string_view(text).substr(start, i - start)));
            }
            std::sort(out.begin(), out.end());
            out.erase(std::unique(out.begin(), out.end()), out.end());
            return out;
        }

        /** Interned names this statement assigns (cached per stmt). */
        const std::vector<support::SymbolId>&
        assignedIdents(const lang::Stmt& stmt)
        {
            auto cached = assigned_.find(&stmt);
            if (cached != assigned_.end())
                return cached->second;

            std::vector<support::SymbolId> assigned;
            auto& interner = support::SymbolInterner::global();
            if (stmt.skind == lang::StmtKind::Decl)
                for (const lang::VarDecl* v :
                     static_cast<const lang::DeclStmt&>(stmt).decls)
                    assigned.push_back(interner.intern(v->name));
            lang::forEachTopLevelExpr(stmt, [&](const lang::Expr& top) {
                lang::forEachSubExpr(top, [&](const lang::Expr& e) {
                    const lang::Expr* target = nullptr;
                    if (e.ekind == lang::ExprKind::Binary &&
                        lang::isAssignment(
                            static_cast<const lang::BinaryExpr&>(e).op))
                        target = static_cast<const lang::BinaryExpr&>(e).lhs;
                    if (e.ekind == lang::ExprKind::Unary) {
                        auto op = static_cast<const lang::UnaryExpr&>(e).op;
                        if (op == lang::UnaryOp::PreInc ||
                            op == lang::UnaryOp::PreDec ||
                            op == lang::UnaryOp::PostInc ||
                            op == lang::UnaryOp::PostDec)
                            target = static_cast<const lang::UnaryExpr&>(e)
                                         .operand;
                    }
                    if (target && target->ekind == lang::ExprKind::Ident)
                        assigned.push_back(interner.intern(
                            static_cast<const lang::IdentExpr*>(target)
                                ->name));
                });
            });
            return assigned_.emplace(&stmt, std::move(assigned))
                .first->second;
        }

        /** Canonical condition text -> id; id indexes tokens_. */
        std::map<std::string, std::uint32_t> text_ids_;
        std::vector<std::vector<support::SymbolId>> tokens_;
        std::unordered_map<const lang::Expr*, CondInfo> by_node_;
        std::unordered_map<const lang::Stmt*,
                           std::vector<support::SymbolId>>
            assigned_;
    };

    Hooks hooks_;
    WalkOptions options_;
};

} // namespace mc::metal

#endif // MCHECK_METAL_PATH_WALKER_H
