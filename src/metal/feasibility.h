#ifndef MCHECK_METAL_FEASIBILITY_H
#define MCHECK_METAL_FEASIBILITY_H

#include "lang/ast.h"
#include "support/hash.h"
#include "support/interner.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mc::metal {

/**
 * How the path walker prunes statically infeasible paths.
 *
 * The paper's Section 5 attributes most false positives to paths the
 * flow-insensitive walk cannot rule out and declines to build the "more
 * elaborate analysis" that would; these strategies are that analysis, in
 * two strengths. Each strategy only ever *removes* paths relative to the
 * weaker one, so diagnostics shrink monotonically:
 * findings(Constraints) subseteq findings(Correlated) subseteq
 * findings(Off).
 */
enum class PruneStrategy : std::uint8_t
{
    /** No pruning — walk every syntactic path (the paper's tool). */
    Off = 0,
    /**
     * Correlated branches only: two two-way branches testing the
     * syntactically identical (side-effect-free) condition along one
     * path must take the same edge. Purely textual; `x == 5` and
     * `x > 10` never correlate.
     */
    Correlated = 1,
    /**
     * Correlated plus a semantic constraint domain: per-path facts
     * about interned symbols (equality/disequality with integer
     * constants, small intervals) derived from comparisons against
     * literals, so `x == 5` followed by `x > 10` is pruned even though
     * the two conditions never render to the same text.
     */
    Constraints = 2,
};

/** Stable CLI spelling ("off", "correlated", "constraints"). */
const char* pruneStrategyName(PruneStrategy strategy);

/** Parse a CLI spelling; nullopt for anything unknown. */
std::optional<PruneStrategy> parsePruneStrategy(std::string_view text);

/** Recorded branch outcomes: (condition id, value), sorted by id. */
using Outcomes = std::vector<std::pair<std::uint32_t, bool>>;

/**
 * Canonicalizes branch conditions to dense ids for outcome tracking.
 *
 * Two conditions share an id iff they render to the same source text
 * (after stripping `!` prefixes) — the same equivalence the legacy
 * string-keyed outcome map used. Per condition id the table keeps the
 * interned word tokens of that text, so assignment invalidation is a
 * sorted-id intersection instead of a substring scan. All caches are
 * per-walk; ids never escape the walk.
 */
class CondTable
{
  public:
    /**
     * Would recording "cond evaluated to `value`" contradict an outcome
     * already on this path? Pure: `outcomes` is not modified. Conditions
     * with calls or assignments are never correlated (their value can
     * change between tests), so they are always feasible.
     */
    bool checkOutcome(const lang::Expr& cond, bool value,
                      const Outcomes& outcomes);

    /**
     * Record "cond evaluated to `value`" in `outcomes`. Returns false if
     * that contradicts a previously recorded outcome on this path.
     */
    bool recordOutcome(const lang::Expr& cond, bool value,
                       Outcomes& outcomes);

    /**
     * Drop recorded outcomes whose condition mentions a variable this
     * statement assigns — the re-test of the condition is no longer
     * correlated with the first.
     */
    void invalidateOutcomes(const lang::Stmt& stmt, Outcomes& outcomes);

    /** Interned names this statement assigns (cached per stmt). */
    const std::vector<support::SymbolId>&
    assignedIdents(const lang::Stmt& stmt);

  private:
    struct CondInfo
    {
        std::uint32_t id = 0;
        /** Parity of stripped `!` prefixes on the original node. */
        bool flip = false;
        bool impure = false;
    };

    const CondInfo& condInfo(const lang::Expr& cond);

    static std::vector<support::SymbolId>
    wordTokens(const std::string& text);

    /** Canonical condition text -> id; id indexes tokens_. */
    std::map<std::string, std::uint32_t> text_ids_;
    std::vector<std::vector<support::SymbolId>> tokens_;
    std::unordered_map<const lang::Expr*, CondInfo> by_node_;
    std::unordered_map<const lang::Stmt*, std::vector<support::SymbolId>>
        assigned_;
};

/** Comparison operators the constraint domain understands. */
enum class CmpOp : std::uint8_t
{
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
};

/** The operator the *false* edge of a `sym OP lit` branch asserts. */
CmpOp negateCmp(CmpOp op);

/**
 * A branch condition reduced to `sym OP literal`, when it has that
 * shape: a plain identifier compared against an integer literal, a
 * character literal, a negated integer literal, or an enum constant
 * (either operand order; `!` prefixes fold into `flip`). A bare
 * identifier is truthiness: `sym != 0`. Anything else is unsupported
 * and contributes no constraints.
 */
struct CondAtom
{
    bool supported = false;
    support::SymbolId sym = support::kInvalidSymbol;
    /** Operator asserted when the branch takes its true edge. */
    CmpOp op = CmpOp::Eq;
    std::int64_t literal = 0;
    /** Parity of stripped `!` prefixes (flips the taken edge). */
    bool flip = false;
};

/** Classify `cond` into an atom (no caching; see FeasibilityContext). */
CondAtom classifyCond(const lang::Expr& cond);

/**
 * Everything a path knows about one symbol's value: an interval plus a
 * small set of excluded values. The domain is deliberately tiny — it
 * exists to kill contradictions like `x == 5` then `x > 10`, not to be
 * an abstract interpreter. Losing precision (a full disequality set)
 * is always sound: fewer facts means fewer pruned paths.
 */
struct ValueFact
{
    static constexpr std::size_t kMaxDisequalities = 8;

    std::int64_t lo = INT64_MIN;
    std::int64_t hi = INT64_MAX;
    /** Excluded values strictly inside (lo, hi), sorted, capped. */
    std::vector<std::int64_t> not_equal;

    /** Conjoin `OP literal`. False iff the fact became unsatisfiable. */
    bool assume(CmpOp op, std::int64_t literal);

    /** Would conjoining `OP literal` stay satisfiable? Pure. */
    bool feasible(CmpOp op, std::int64_t literal) const;

    bool unconstrained() const
    {
        return lo == INT64_MIN && hi == INT64_MAX && not_equal.empty();
    }

  private:
    /** Trim bounds against not_equal until both are admissible. */
    bool normalize();
};

/**
 * The per-path constraint store: symbol -> ValueFact, sorted by symbol
 * id so the digest is canonical. Paths fork at branches, so this is
 * copied like the outcome vector; it stays tiny (a handful of symbols
 * per path in practice).
 */
class ConstraintSet
{
  public:
    /** Conjoin `sym OP literal`. False iff the path became infeasible. */
    bool assume(support::SymbolId sym, CmpOp op, std::int64_t literal);

    /** Would conjoining `sym OP literal` stay satisfiable? Pure. */
    bool feasible(support::SymbolId sym, CmpOp op,
                  std::int64_t literal) const;

    /** Forget everything known about `sym` (it was reassigned). */
    void invalidate(support::SymbolId sym);

    bool empty() const { return facts_.empty(); }

    /** Fold the canonical encoding of every fact into `h`. */
    void hashInto(support::Fnv1a& h) const;

    /** Heap bytes behind this set (budget accounting). */
    std::size_t heapBytes() const;

  private:
    std::vector<std::pair<support::SymbolId, ValueFact>> facts_;
};

/**
 * What a path has learned: the syntactic branch outcomes (Correlated
 * and up) plus the semantic constraint store (Constraints only, empty
 * otherwise). Forked with the client state at every branch.
 */
struct PathFacts
{
    Outcomes outcomes;
    ConstraintSet constraints;

    bool empty() const
    {
        return outcomes.empty() && constraints.empty();
    }
};

/**
 * Per-walk feasibility oracle: owns the condition table, the per-node
 * atom cache, and the prune-decision cache, and implements the
 * layering of the two domains behind one strategy knob.
 *
 * The walker asks questions in two phases so that hooks never run on a
 * pruned edge: first the pure `edgeFeasible` for every out-edge of a
 * branch (no facts mutated), then `applyEdge` on the surviving forks.
 */
class FeasibilityContext
{
  public:
    explicit FeasibilityContext(PruneStrategy strategy)
        : strategy_(strategy)
    {}

    PruneStrategy strategy() const { return strategy_; }
    bool enabled() const { return strategy_ != PruneStrategy::Off; }

    /**
     * A digest of everything `edgeFeasible` can depend on, besides the
     * condition itself. Computed once per popped entry and shared by
     * both edge queries, the prune cache, and the walker's visited key.
     */
    static std::uint64_t factsDigest(const PathFacts& facts);

    /**
     * Would taking the edge where `cond` evaluates to `value` contradict
     * `facts`? Pure. Decisions are cached per (block, edge, digest):
     * identical incoming facts at the same branch answer from the cache
     * (a hash-collision here is the same probabilistic contract as the
     * walker's digested visited set).
     */
    bool edgeFeasible(int block, const lang::Expr& cond, bool value,
                      const PathFacts& facts, std::uint64_t digest);

    /**
     * Record the taken edge into `facts`. Call only on edges
     * `edgeFeasible` accepted; contradictions are ignored here.
     */
    void applyEdge(const lang::Expr& cond, bool value, PathFacts& facts);

    /**
     * Drop facts `stmt` invalidates: recorded outcomes mentioning an
     * assigned variable (the existing invalidateOutcomes machinery) and
     * constraint entries for assigned or address-taken symbols.
     */
    void invalidate(const lang::Stmt& stmt, PathFacts& facts);

    /** Prune decisions answered from the (block, digest) cache. */
    std::uint64_t cacheHits() const { return cache_hits_; }

  private:
    const CondAtom& atom(const lang::Expr& cond);

    /** Symbols whose address `stmt` takes (cached per stmt). */
    const std::vector<support::SymbolId>&
    addrTakenIdents(const lang::Stmt& stmt);

    PruneStrategy strategy_;
    CondTable conds_;
    std::unordered_map<const lang::Expr*, CondAtom> atoms_;
    std::unordered_map<const lang::Stmt*, std::vector<support::SymbolId>>
        addr_taken_;
    std::unordered_map<std::uint64_t, bool> decisions_;
    std::uint64_t cache_hits_ = 0;
};

} // namespace mc::metal

#endif // MCHECK_METAL_FEASIBILITY_H
