#ifndef MCHECK_METAL_STATE_MACHINE_H
#define MCHECK_METAL_STATE_MACHINE_H

#include "match/pattern.h"
#include "support/diagnostics.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mc::metal {

class CompiledSm;

/**
 * Context handed to a rule action when its pattern matches.
 *
 * Mirrors metal's action escapes: the statement that triggered the match,
 * the wildcard bindings, and an `err()` facility that reports through the
 * run's DiagnosticSink.
 */
class ActionContext
{
  public:
    ActionContext(const lang::Stmt& stmt, const match::Bindings& bindings,
                  support::DiagnosticSink& sink, std::string checker,
                  std::string rule_id)
        : stmt_(stmt), bindings_(bindings), sink_(sink),
          checker_(std::move(checker)), rule_id_(std::move(rule_id))
    {}

    const lang::Stmt& stmt() const { return stmt_; }
    const match::Bindings& bindings() const { return bindings_; }

    /** metal's err(): report an error at the matched statement. */
    void
    err(const std::string& message) const
    {
        sink_.error(stmt_.loc, checker_, rule_id_, message);
    }

    /** Report a warning instead of an error. */
    void
    warn(const std::string& message) const
    {
        sink_.warning(stmt_.loc, checker_, rule_id_, message);
    }

  private:
    const lang::Stmt& stmt_;
    const match::Bindings& bindings_;
    support::DiagnosticSink& sink_;
    std::string checker_;
    std::string rule_id_;
};

/**
 * A metal state machine: named states, each with an ordered rule list.
 *
 * Semantics follow the paper:
 *  - execution starts in the first state defined;
 *  - on each statement, the current state's rules are tried in order and
 *    the first whose pattern matches fires (transition + action);
 *  - rules of the special `all` state are "implicitly applied to other
 *    states" — they are tried after the current state's own rules;
 *  - transitioning to the reserved `stop` state ends checking of the
 *    current path.
 */
class StateMachine
{
  public:
    /** Reserved state names. */
    static constexpr const char* kStop = "stop";
    static constexpr const char* kAll = "all";

    struct Rule
    {
        match::Pattern pattern;
        /** Target state; empty string = stay in the current state. */
        std::string next_state;
        /** Optional action run on match. */
        std::function<void(const ActionContext&)> action;
        /** Stable id for deduplication and tests. */
        std::string id;
    };

    explicit StateMachine(std::string name);
    ~StateMachine();

    const std::string& name() const { return name_; }

    /**
     * Metrics timer name for this SM's engine runs ("engine.sm." + name),
     * pre-built here so runStateMachine does not concatenate it per call.
     */
    const std::string& timerName() const { return timer_name_; }

    /**
     * Add a rule under `state`. The first non-`all` state mentioned
     * becomes the start state.
     */
    void addRule(const std::string& state, Rule rule);

    /** Explicitly set the start state (otherwise first defined). */
    void setStartState(const std::string& state) { start_ = state; }

    const std::string& startState() const { return start_; }

    /** Rules for `state` (not including `all` rules). */
    const std::vector<Rule>& rulesFor(const std::string& state) const;

    /** Rules of the `all` state. */
    const std::vector<Rule>& allRules() const { return rulesFor(kAll); }

    /** All states that have rules (including `all` if used). */
    std::vector<std::string> states() const;

    int ruleCount() const;

    /**
     * The compiled (interned, flattened) view of this SM, built lazily on
     * first use and cached. Thread-safe: the engine shares one SM across
     * worker lanes read-only. Call only after rule construction is done —
     * the compiled view aliases the rule storage.
     */
    const CompiledSm& compiled() const;

  private:
    std::string name_;
    std::string timer_name_;
    std::string start_;
    std::map<std::string, std::vector<Rule>> rules_;
    mutable std::once_flag compiled_once_;
    mutable std::unique_ptr<CompiledSm> compiled_;
};

} // namespace mc::metal

#endif // MCHECK_METAL_STATE_MACHINE_H
