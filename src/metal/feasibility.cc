#include "metal/feasibility.h"

#include <algorithm>
#include <cctype>

namespace mc::metal {

const char*
pruneStrategyName(PruneStrategy strategy)
{
    switch (strategy) {
    case PruneStrategy::Off:
        return "off";
    case PruneStrategy::Correlated:
        return "correlated";
    case PruneStrategy::Constraints:
        return "constraints";
    }
    return "off";
}

std::optional<PruneStrategy>
parsePruneStrategy(std::string_view text)
{
    if (text == "off")
        return PruneStrategy::Off;
    if (text == "correlated")
        return PruneStrategy::Correlated;
    if (text == "constraints")
        return PruneStrategy::Constraints;
    return std::nullopt;
}

// --------------------------------------------------------------------
// CondTable

bool
CondTable::checkOutcome(const lang::Expr& cond, bool value,
                        const Outcomes& outcomes)
{
    const CondInfo& info = condInfo(cond);
    if (info.impure)
        return true;
    if (info.flip)
        value = !value;
    auto it = std::lower_bound(
        outcomes.begin(), outcomes.end(), info.id,
        [](const auto& e, std::uint32_t id) { return e.first < id; });
    if (it != outcomes.end() && it->first == info.id)
        return it->second == value;
    return true;
}

bool
CondTable::recordOutcome(const lang::Expr& cond, bool value,
                         Outcomes& outcomes)
{
    const CondInfo& info = condInfo(cond);
    if (info.impure)
        return true;
    if (info.flip)
        value = !value;
    auto it = std::lower_bound(
        outcomes.begin(), outcomes.end(), info.id,
        [](const auto& e, std::uint32_t id) { return e.first < id; });
    if (it != outcomes.end() && it->first == info.id)
        return it->second == value;
    outcomes.insert(it, {info.id, value});
    return true;
}

void
CondTable::invalidateOutcomes(const lang::Stmt& stmt, Outcomes& outcomes)
{
    const std::vector<support::SymbolId>& assigned = assignedIdents(stmt);
    if (assigned.empty())
        return;
    outcomes.erase(
        std::remove_if(
            outcomes.begin(), outcomes.end(),
            [&](const std::pair<std::uint32_t, bool>& outcome) {
                const std::vector<support::SymbolId>& toks =
                    tokens_[outcome.first];
                for (support::SymbolId name : assigned)
                    if (std::binary_search(toks.begin(), toks.end(),
                                           name))
                        return true;
                return false;
            }),
        outcomes.end());
}

const CondTable::CondInfo&
CondTable::condInfo(const lang::Expr& cond)
{
    auto cached = by_node_.find(&cond);
    if (cached != by_node_.end())
        return cached->second;

    CondInfo info;
    const lang::Expr* base = &cond;
    while (base->ekind == lang::ExprKind::Unary &&
           static_cast<const lang::UnaryExpr*>(base)->op ==
               lang::UnaryOp::Not) {
        base = static_cast<const lang::UnaryExpr*>(base)->operand;
        info.flip = !info.flip;
    }
    lang::forEachSubExpr(*base, [&](const lang::Expr& e) {
        if (e.ekind == lang::ExprKind::Call)
            info.impure = true;
        if (e.ekind == lang::ExprKind::Binary &&
            lang::isAssignment(
                static_cast<const lang::BinaryExpr&>(e).op))
            info.impure = true;
        if (e.ekind == lang::ExprKind::Unary) {
            auto op = static_cast<const lang::UnaryExpr&>(e).op;
            if (op == lang::UnaryOp::PreInc ||
                op == lang::UnaryOp::PreDec ||
                op == lang::UnaryOp::PostInc ||
                op == lang::UnaryOp::PostDec)
                info.impure = true;
        }
    });
    if (!info.impure) {
        std::string text = lang::exprToString(*base);
        auto [it, inserted] = text_ids_.emplace(
            std::move(text), static_cast<std::uint32_t>(tokens_.size()));
        if (inserted)
            tokens_.push_back(wordTokens(it->first));
        info.id = it->second;
    }
    return by_node_.emplace(&cond, info).first->second;
}

/**
 * The interned maximal [A-Za-z0-9_] runs of `text`, sorted and
 * deduplicated. Membership of an identifier in this set is exactly the
 * legacy whole-word substring test: every whole-word occurrence is a
 * maximal run and vice versa.
 */
std::vector<support::SymbolId>
CondTable::wordTokens(const std::string& text)
{
    std::vector<support::SymbolId> out;
    auto& interner = support::SymbolInterner::global();
    auto is_word = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    std::size_t i = 0;
    while (i < text.size()) {
        if (!is_word(text[i])) {
            ++i;
            continue;
        }
        std::size_t start = i;
        while (i < text.size() && is_word(text[i]))
            ++i;
        out.push_back(interner.intern(
            std::string_view(text).substr(start, i - start)));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

const std::vector<support::SymbolId>&
CondTable::assignedIdents(const lang::Stmt& stmt)
{
    auto cached = assigned_.find(&stmt);
    if (cached != assigned_.end())
        return cached->second;

    std::vector<support::SymbolId> assigned;
    auto& interner = support::SymbolInterner::global();
    if (stmt.skind == lang::StmtKind::Decl)
        for (const lang::VarDecl* v :
             static_cast<const lang::DeclStmt&>(stmt).decls)
            assigned.push_back(interner.intern(v->name));
    lang::forEachTopLevelExpr(stmt, [&](const lang::Expr& top) {
        lang::forEachSubExpr(top, [&](const lang::Expr& e) {
            const lang::Expr* target = nullptr;
            if (e.ekind == lang::ExprKind::Binary &&
                lang::isAssignment(
                    static_cast<const lang::BinaryExpr&>(e).op))
                target = static_cast<const lang::BinaryExpr&>(e).lhs;
            if (e.ekind == lang::ExprKind::Unary) {
                auto op = static_cast<const lang::UnaryExpr&>(e).op;
                if (op == lang::UnaryOp::PreInc ||
                    op == lang::UnaryOp::PreDec ||
                    op == lang::UnaryOp::PostInc ||
                    op == lang::UnaryOp::PostDec)
                    target =
                        static_cast<const lang::UnaryExpr&>(e).operand;
            }
            if (target && target->ekind == lang::ExprKind::Ident)
                assigned.push_back(interner.intern(
                    static_cast<const lang::IdentExpr*>(target)->name));
        });
    });
    return assigned_.emplace(&stmt, std::move(assigned)).first->second;
}

// --------------------------------------------------------------------
// Constraint domain

CmpOp
negateCmp(CmpOp op)
{
    switch (op) {
    case CmpOp::Eq:
        return CmpOp::Ne;
    case CmpOp::Ne:
        return CmpOp::Eq;
    case CmpOp::Lt:
        return CmpOp::Ge;
    case CmpOp::Le:
        return CmpOp::Gt;
    case CmpOp::Gt:
        return CmpOp::Le;
    case CmpOp::Ge:
        return CmpOp::Lt;
    }
    return op;
}

namespace {

/** `expr` as an integer literal the domain can compare against: an int
 *  or char literal, a unary-negated literal, or an enum constant whose
 *  value Sema resolved. */
std::optional<std::int64_t>
literalValue(const lang::Expr& expr)
{
    switch (expr.ekind) {
    case lang::ExprKind::IntLit:
        return static_cast<const lang::IntLitExpr&>(expr).value;
    case lang::ExprKind::CharLit:
        return static_cast<const lang::CharLitExpr&>(expr).value;
    case lang::ExprKind::Unary: {
        const auto& un = static_cast<const lang::UnaryExpr&>(expr);
        if (un.op == lang::UnaryOp::Neg && un.operand) {
            if (auto v = literalValue(*un.operand))
                return *v == INT64_MIN ? std::optional<std::int64_t>()
                                       : std::optional<std::int64_t>(-*v);
        }
        return std::nullopt;
    }
    case lang::ExprKind::Ident: {
        const auto& id = static_cast<const lang::IdentExpr&>(expr);
        if (id.decl && id.decl->dkind == lang::DeclKind::EnumConst)
            return static_cast<const lang::EnumConstDecl*>(id.decl)
                ->value;
        return std::nullopt;
    }
    default:
        return std::nullopt;
    }
}

/** `expr` as a trackable variable: a plain identifier that is not
 *  itself a constant (enum constants compare, they don't vary). */
const lang::IdentExpr*
trackableIdent(const lang::Expr& expr)
{
    if (expr.ekind != lang::ExprKind::Ident)
        return nullptr;
    const auto& id = static_cast<const lang::IdentExpr&>(expr);
    if (id.decl && id.decl->dkind == lang::DeclKind::EnumConst)
        return nullptr;
    return &id;
}

CmpOp
mirrorCmp(CmpOp op)
{
    switch (op) {
    case CmpOp::Lt:
        return CmpOp::Gt;
    case CmpOp::Le:
        return CmpOp::Ge;
    case CmpOp::Gt:
        return CmpOp::Lt;
    case CmpOp::Ge:
        return CmpOp::Le;
    default:
        return op; // Eq/Ne are symmetric
    }
}

std::optional<CmpOp>
cmpFromBinary(lang::BinaryOp op)
{
    switch (op) {
    case lang::BinaryOp::Eq:
        return CmpOp::Eq;
    case lang::BinaryOp::Ne:
        return CmpOp::Ne;
    case lang::BinaryOp::Lt:
        return CmpOp::Lt;
    case lang::BinaryOp::Le:
        return CmpOp::Le;
    case lang::BinaryOp::Gt:
        return CmpOp::Gt;
    case lang::BinaryOp::Ge:
        return CmpOp::Ge;
    default:
        return std::nullopt;
    }
}

} // namespace

CondAtom
classifyCond(const lang::Expr& cond)
{
    CondAtom atom;
    const lang::Expr* base = &cond;
    while (base->ekind == lang::ExprKind::Unary &&
           static_cast<const lang::UnaryExpr*>(base)->op ==
               lang::UnaryOp::Not) {
        base = static_cast<const lang::UnaryExpr*>(base)->operand;
        atom.flip = !atom.flip;
    }
    // Bare identifier: C truthiness, `sym != 0`.
    if (const lang::IdentExpr* id = trackableIdent(*base)) {
        atom.supported = true;
        atom.sym = lang::identSymbol(*id);
        atom.op = CmpOp::Ne;
        atom.literal = 0;
        return atom;
    }
    if (base->ekind != lang::ExprKind::Binary)
        return atom;
    const auto& bin = static_cast<const lang::BinaryExpr&>(*base);
    std::optional<CmpOp> op = cmpFromBinary(bin.op);
    if (!op || !bin.lhs || !bin.rhs)
        return atom;
    if (const lang::IdentExpr* id = trackableIdent(*bin.lhs)) {
        if (auto lit = literalValue(*bin.rhs)) {
            atom.supported = true;
            atom.sym = lang::identSymbol(*id);
            atom.op = *op;
            atom.literal = *lit;
            return atom;
        }
    }
    if (const lang::IdentExpr* id = trackableIdent(*bin.rhs)) {
        if (auto lit = literalValue(*bin.lhs)) {
            atom.supported = true;
            atom.sym = lang::identSymbol(*id);
            atom.op = mirrorCmp(*op);
            atom.literal = *lit;
            return atom;
        }
    }
    return atom;
}

// --------------------------------------------------------------------
// ValueFact

bool
ValueFact::normalize()
{
    // Drop excluded values that fell outside the interval, then keep
    // nudging a bound inward while it is itself excluded. Each erase is
    // O(set size), and the set is capped, so this terminates quickly.
    not_equal.erase(std::remove_if(not_equal.begin(), not_equal.end(),
                                   [&](std::int64_t v) {
                                       return v < lo || v > hi;
                                   }),
                    not_equal.end());
    bool moved = true;
    while (moved && lo <= hi) {
        moved = false;
        auto at_lo =
            std::lower_bound(not_equal.begin(), not_equal.end(), lo);
        if (at_lo != not_equal.end() && *at_lo == lo) {
            not_equal.erase(at_lo);
            if (lo == INT64_MAX)
                return false;
            ++lo;
            moved = true;
        }
        auto at_hi =
            std::lower_bound(not_equal.begin(), not_equal.end(), hi);
        if (lo <= hi && at_hi != not_equal.end() && *at_hi == hi) {
            not_equal.erase(at_hi);
            if (hi == INT64_MIN)
                return false;
            --hi;
            moved = true;
        }
    }
    return lo <= hi;
}

bool
ValueFact::assume(CmpOp op, std::int64_t literal)
{
    switch (op) {
    case CmpOp::Eq:
        if (literal < lo || literal > hi)
            return false;
        if (std::binary_search(not_equal.begin(), not_equal.end(),
                               literal))
            return false;
        lo = hi = literal;
        not_equal.clear();
        return true;
    case CmpOp::Ne: {
        auto it =
            std::lower_bound(not_equal.begin(), not_equal.end(), literal);
        if (it == not_equal.end() || *it != literal) {
            // A full set forgets the new exclusion — sound (weaker
            // facts prune fewer paths), and keeps copies O(1).
            if (not_equal.size() < kMaxDisequalities)
                not_equal.insert(it, literal);
        }
        return normalize();
    }
    case CmpOp::Lt:
        if (literal == INT64_MIN)
            return false;
        hi = std::min(hi, literal - 1);
        return normalize();
    case CmpOp::Le:
        hi = std::min(hi, literal);
        return normalize();
    case CmpOp::Gt:
        if (literal == INT64_MAX)
            return false;
        lo = std::max(lo, literal + 1);
        return normalize();
    case CmpOp::Ge:
        lo = std::max(lo, literal);
        return normalize();
    }
    return true;
}

bool
ValueFact::feasible(CmpOp op, std::int64_t literal) const
{
    ValueFact scratch = *this;
    return scratch.assume(op, literal);
}

// --------------------------------------------------------------------
// ConstraintSet

bool
ConstraintSet::assume(support::SymbolId sym, CmpOp op,
                      std::int64_t literal)
{
    auto it = std::lower_bound(
        facts_.begin(), facts_.end(), sym,
        [](const auto& e, support::SymbolId s) { return e.first < s; });
    if (it == facts_.end() || it->first != sym)
        it = facts_.insert(it, {sym, ValueFact{}});
    if (!it->second.assume(op, literal))
        return false;
    // An unconstrained fact (everything forgotten) carries no
    // information; dropping it keeps the digest canonical.
    if (it->second.unconstrained())
        facts_.erase(it);
    return true;
}

bool
ConstraintSet::feasible(support::SymbolId sym, CmpOp op,
                        std::int64_t literal) const
{
    auto it = std::lower_bound(
        facts_.begin(), facts_.end(), sym,
        [](const auto& e, support::SymbolId s) { return e.first < s; });
    if (it == facts_.end() || it->first != sym)
        return true; // nothing known: any comparison can hold
    return it->second.feasible(op, literal);
}

void
ConstraintSet::invalidate(support::SymbolId sym)
{
    auto it = std::lower_bound(
        facts_.begin(), facts_.end(), sym,
        [](const auto& e, support::SymbolId s) { return e.first < s; });
    if (it != facts_.end() && it->first == sym)
        facts_.erase(it);
}

void
ConstraintSet::hashInto(support::Fnv1a& h) const
{
    for (const auto& [sym, fact] : facts_) {
        h.u64(sym);
        h.i64(fact.lo);
        h.i64(fact.hi);
        h.u64(fact.not_equal.size());
        for (std::int64_t v : fact.not_equal)
            h.i64(v);
    }
}

std::size_t
ConstraintSet::heapBytes() const
{
    std::size_t bytes =
        facts_.capacity() *
        sizeof(std::pair<support::SymbolId, ValueFact>);
    for (const auto& [sym, fact] : facts_)
        bytes += fact.not_equal.capacity() * sizeof(std::int64_t);
    return bytes;
}

// --------------------------------------------------------------------
// FeasibilityContext

std::uint64_t
FeasibilityContext::factsDigest(const PathFacts& facts)
{
    support::Fnv1a h;
    for (const auto& [cond, value] : facts.outcomes) {
        h.u64(cond);
        h.u8(value ? 1 : 0);
    }
    facts.constraints.hashInto(h);
    return h.value();
}

bool
FeasibilityContext::edgeFeasible(int block, const lang::Expr& cond,
                                 bool value, const PathFacts& facts,
                                 std::uint64_t digest)
{
    if (facts.empty())
        return true; // nothing known, nothing to contradict
    std::uint64_t key = support::Fnv1a()
                            .u64(static_cast<std::uint64_t>(block))
                            .u8(value ? 1 : 0)
                            .u64(digest)
                            .value();
    auto cached = decisions_.find(key);
    if (cached != decisions_.end()) {
        ++cache_hits_;
        return cached->second;
    }
    bool ok = conds_.checkOutcome(cond, value, facts.outcomes);
    if (ok && strategy_ == PruneStrategy::Constraints) {
        const CondAtom& a = atom(cond);
        if (a.supported) {
            bool taken = a.flip ? !value : value;
            CmpOp op = taken ? a.op : negateCmp(a.op);
            ok = facts.constraints.feasible(a.sym, op, a.literal);
        }
    }
    decisions_.emplace(key, ok);
    return ok;
}

void
FeasibilityContext::applyEdge(const lang::Expr& cond, bool value,
                              PathFacts& facts)
{
    conds_.recordOutcome(cond, value, facts.outcomes);
    if (strategy_ == PruneStrategy::Constraints) {
        const CondAtom& a = atom(cond);
        if (a.supported) {
            bool taken = a.flip ? !value : value;
            CmpOp op = taken ? a.op : negateCmp(a.op);
            facts.constraints.assume(a.sym, op, a.literal);
        }
    }
}

void
FeasibilityContext::invalidate(const lang::Stmt& stmt, PathFacts& facts)
{
    if (facts.empty())
        return;
    if (!facts.outcomes.empty())
        conds_.invalidateOutcomes(stmt, facts.outcomes);
    if (strategy_ == PruneStrategy::Constraints &&
        !facts.constraints.empty()) {
        for (support::SymbolId sym : conds_.assignedIdents(stmt))
            facts.constraints.invalidate(sym);
        // Address-taken symbols can be written through the pointer by
        // anything that runs later; the syntactic domain tolerates that
        // hole (its conditions must re-render identically to correlate)
        // but the semantic domain drops the symbol to stay conservative.
        for (support::SymbolId sym : addrTakenIdents(stmt))
            facts.constraints.invalidate(sym);
    }
}

const CondAtom&
FeasibilityContext::atom(const lang::Expr& cond)
{
    auto cached = atoms_.find(&cond);
    if (cached != atoms_.end())
        return cached->second;
    return atoms_.emplace(&cond, classifyCond(cond)).first->second;
}

const std::vector<support::SymbolId>&
FeasibilityContext::addrTakenIdents(const lang::Stmt& stmt)
{
    auto cached = addr_taken_.find(&stmt);
    if (cached != addr_taken_.end())
        return cached->second;
    std::vector<support::SymbolId> taken;
    lang::forEachTopLevelExpr(stmt, [&](const lang::Expr& top) {
        lang::forEachSubExpr(top, [&](const lang::Expr& e) {
            if (e.ekind != lang::ExprKind::Unary)
                return;
            const auto& un = static_cast<const lang::UnaryExpr&>(e);
            if (un.op != lang::UnaryOp::AddrOf || !un.operand ||
                un.operand->ekind != lang::ExprKind::Ident)
                return;
            taken.push_back(lang::identSymbol(
                *static_cast<const lang::IdentExpr*>(un.operand)));
        });
    });
    return addr_taken_.emplace(&stmt, std::move(taken)).first->second;
}

} // namespace mc::metal
