# Cache-determinism harness: run mccheck cold, warm, warm-after-touch,
# and warm-again over the same inputs and require byte-identical stdout
# plus the expected hit/miss counts at each temperature.
#
# Usage:
#   cmake -DMCCHECK=<path> -DPROTOCOL=<name> -DFORMAT=<text|json|sarif>
#         -DJOBS=<n> -DWORKDIR=<scratch dir> [-DMODE=protocol]
#         -P compare_cache.cmake
#
# File mode (the default) emits the protocol's corpus to disk first, so
# the touch step can append a declaration to one source and prove that
# exactly that file's (function, checker) units — and nothing else —
# re-analyze. MODE=protocol checks the generated in-memory protocol
# instead (no touch step there: its sources never land on disk), which
# exercises the --protocol code path end to end. Either way, the corpus
# protocols carry intentional bugs, so mccheck exits 1 (findings); the
# harness only requires every run to agree with the first.
foreach(var MCCHECK PROTOCOL FORMAT JOBS WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "compare_cache.cmake: -D${var}=... is required")
    endif()
endforeach()
if(NOT DEFINED MODE)
    set(MODE files)
endif()

# Scratch state from a previous (possibly failed) run must not leak in.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})
set(cache_dir ${WORKDIR}/cache)
set(metrics_flags)

if(MODE STREQUAL "protocol")
    set(check_args --protocol ${PROTOCOL})
else()
    execute_process(
        COMMAND ${MCCHECK} --emit-corpus ${PROTOCOL} ${WORKDIR}/corpus
        RESULT_VARIABLE rc_emit
        ERROR_VARIABLE err_emit)
    if(NOT rc_emit EQUAL 0)
        message(FATAL_ERROR
            "--emit-corpus ${PROTOCOL} failed (rc=${rc_emit}): ${err_emit}")
    endif()
    file(GLOB_RECURSE sources ${WORKDIR}/corpus/*.c)
    list(SORT sources)
    list(LENGTH sources nsources)
    if(nsources EQUAL 0)
        message(FATAL_ERROR "--emit-corpus ${PROTOCOL} wrote no .c files")
    endif()
    set(check_args ${sources})
endif()

# run(<tag>): one mccheck invocation against the shared cache, capturing
# stdout/rc into out_<tag>/rc_<tag> and the metrics report (the cache.*
# counters the assertions below read) into ${WORKDIR}/<tag>.metrics.json.
function(run tag)
    execute_process(
        COMMAND ${MCCHECK} ${check_args} --format ${FORMAT} --jobs ${JOBS}
                --cache ${cache_dir}
                --metrics ${WORKDIR}/${tag}.metrics.json
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    set(out_${tag} "${out}" PARENT_SCOPE)
    set(err_${tag} "${err}" PARENT_SCOPE)
    set(rc_${tag} "${rc}" PARENT_SCOPE)
endfunction()

# metrics_require(<tag> <regex> <what>): assert the run's metrics report
# matches, with the report echoed on failure.
function(metrics_require tag regex what)
    file(READ ${WORKDIR}/${tag}.metrics.json report)
    if(NOT report MATCHES "${regex}")
        message(FATAL_ERROR
            "${PROTOCOL} (${FORMAT}, jobs=${JOBS}, ${tag} run): expected "
            "${what} (regex: ${regex})\nmetrics: ${report}")
    endif()
endfunction()

run(cold)
if(out_cold STREQUAL "")
    message(FATAL_ERROR
        "cold run produced no stdout for ${PROTOCOL} (${FORMAT}); the "
        "comparison is vacuous (rc=${rc_cold}, stderr: ${err_cold})")
endif()
metrics_require(cold "\"cache.misses\": [1-9]" "cold-run cache misses")
metrics_require(cold "\"cache.stores\": [1-9]" "cold-run cache stores")

run(warm)
metrics_require(warm "\"cache.hits\": [1-9]" "warm-run cache hits")
metrics_require(warm "\"cache.misses\": 0[,\n ]" "zero warm-run misses")

set(runs warm)
if(MODE STREQUAL "files")
    # Appending a declaration adds tokens to exactly one translation
    # unit: its functions' fingerprints change, everyone else's replay.
    list(GET sources 0 probe)
    file(APPEND ${probe} "int mc_cache_touch_probe;\n")
    run(touched)
    metrics_require(touched "\"cache.hits\": [1-9]"
        "post-touch hits for the untouched files")
    metrics_require(touched "\"cache.misses\": [1-9]"
        "post-touch misses for the touched file")
    run(warm2)
    metrics_require(warm2 "\"cache.misses\": 0[,\n ]"
        "zero misses once the touched result is stored")
    list(APPEND runs touched warm2)
endif()

foreach(tag IN LISTS runs)
    if(NOT rc_cold EQUAL rc_${tag})
        message(FATAL_ERROR
            "exit codes differ for ${PROTOCOL} (${FORMAT}, jobs=${JOBS}): "
            "cold -> ${rc_cold}, ${tag} -> ${rc_${tag}}\n"
            "stderr(${tag}): ${err_${tag}}")
    endif()
    if(NOT out_cold STREQUAL out_${tag})
        message(FATAL_ERROR
            "stdout differs between the cold and ${tag} runs for "
            "${PROTOCOL} (${FORMAT}, jobs=${JOBS}); the cache's "
            "byte-identical-replay guarantee is broken")
    endif()
endforeach()

message(STATUS
    "${PROTOCOL} (${FORMAT}, jobs=${JOBS}): cold/warm/touched runs agree "
    "byte-for-byte")
