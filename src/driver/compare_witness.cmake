# Witness-determinism harness: with --witness on, the machine-readable
# output (witness objects included) must be byte-identical whatever
# --jobs says, whichever --match-strategy matched, and whether the
# findings were computed cold or replayed from a warm cache.
#
# Usage:
#   cmake -DMCCHECK=<path> -DPROTOCOL=<name> -DWORKDIR=<scratch dir>
#         -P compare_witness.cmake
#
# The corpus protocols carry intentional bugs, so mccheck exits 1
# (findings); the harness requires every run to agree with the first and
# the output to actually carry witnesses (a vacuous pass is a failure).
foreach(var MCCHECK PROTOCOL WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "compare_witness.cmake: -D${var}=... is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})
set(cache_dir ${WORKDIR}/cache)

# run(<tag> <args...>): one witness-enabled JSON run; extra args select
# the jobs / strategy / cache axis under test.
function(run tag)
    execute_process(
        COMMAND ${MCCHECK} --protocol ${PROTOCOL} --format json --witness
                ${ARGN}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    set(out_${tag} "${out}" PARENT_SCOPE)
    set(err_${tag} "${err}" PARENT_SCOPE)
    set(rc_${tag} "${rc}" PARENT_SCOPE)
endfunction()

run(base --jobs 1 --match-strategy table)
if(out_base STREQUAL "")
    message(FATAL_ERROR
        "witness run produced no stdout for ${PROTOCOL} "
        "(rc=${rc_base}, stderr: ${err_base})")
endif()
if(NOT out_base MATCHES "\"witness\"")
    message(FATAL_ERROR
        "witness-enabled JSON for ${PROTOCOL} carries no \"witness\" "
        "object; the comparison is vacuous:\n${out_base}")
endif()

run(jobs4 --jobs 4 --match-strategy table)
run(legacy --jobs 4 --match-strategy legacy)
run(cold --jobs 4 --match-strategy table --cache ${cache_dir})
run(warm --jobs 4 --match-strategy table --cache ${cache_dir})

foreach(tag jobs4 legacy cold warm)
    if(NOT rc_base EQUAL rc_${tag})
        message(FATAL_ERROR
            "exit codes differ for ${PROTOCOL} with --witness: "
            "base -> ${rc_base}, ${tag} -> ${rc_${tag}}\n"
            "stderr(${tag}): ${err_${tag}}")
    endif()
    if(NOT out_base STREQUAL out_${tag})
        message(FATAL_ERROR
            "stdout differs between the base and ${tag} runs for "
            "${PROTOCOL} with --witness; witness bytes must be identical "
            "across jobs, match strategies, and cache temperature")
    endif()
endforeach()

message(STATUS
    "${PROTOCOL} (--witness): jobs 1/4, table/legacy, cold/warm agree "
    "byte-for-byte")
