/**
 * @file
 * mccheck — the command-line front end.
 *
 * Usage:
 *     mccheck --protocol <name>          check a generated paper protocol
 *     mccheck --emit-corpus <name> <dir> write its sources to disk
 *     mccheck --list                     list known protocols
 *     mccheck --metal <c.metal> <f.c>... run a user-written metal checker
 *     mccheck <file.c>...                check FLASH-dialect sources
 *
 * Observability options (combine with any checking mode):
 *     --metrics <out.json>   write the MetricsRegistry report
 *     --trace <out.json>     write a Chrome trace-event file
 *     --witness              attach witness paths (SM transition history
 *                            + CFG block path) to findings
 *     --witness-limit <n>    cap witness steps/blocks (default 16)
 *     --ledger <out.jsonl>   append a per-unit run ledger
 *     --format text|json|sarif   diagnostic output encoding
 *     --jobs <n>             checking concurrency (default: all cores)
 *
 * Caching (combine with --protocol, --metal, or file checking):
 *     --cache <dir>          persistent per-(function, checker) result
 *                            cache; unchanged units replay instead of
 *                            re-walking paths
 *     --cache-readonly       consult the cache but never write it
 *     --cache-limit-mb <n>   evict oldest entries past n MiB after a run
 *
 * Robustness (see docs/robustness.md):
 *     --unit-timeout-ms <n>  per-(function, checker) wall-clock budget
 *     --unit-max-steps <n>   per-unit path-walker step budget
 *     --fail-fast            abort the run on the first unit failure
 *     --keep-going           contain unit failures (default)
 *     --inject-fault <s:n>   arm a fault-injection probe (testing)
 *
 * Exit codes:
 *     0  clean — every unit analyzed completely, no errors found
 *     1  findings — checkers reported at least one error
 *     2  degraded — analysis incomplete somewhere (a parse error
 *        recovered into a poisoned declaration, a contained unit
 *        failure, or a budget truncation); takes precedence over 1
 *     3  fatal — usage errors, unreadable inputs, --fail-fast aborts,
 *        or an escaped internal error
 *
 * Output is deterministic for any --jobs value and for warm vs. cold
 * cache runs: diagnostics are ordered by (file, line, column, checker,
 * rule) at emission, the parallel runner merges worker results in the
 * sequential visit order, and cached units replay their stored
 * diagnostics and checker state through that same merge path — so the
 * rendered text/JSON/SARIF bytes never depend on thread scheduling or
 * cache temperature. Cache status goes to stderr only. Degraded runs
 * keep the guarantee: poisoned declarations, "analysis incomplete"
 * markers, and keyed fault injection are all scheduling-independent.
 *
 * When checking loose files, every CamelCase function is treated as a
 * hardware handler unless its name starts with "Sw" (software handler);
 * lowercase-named functions are plain routines — the FLASH naming
 * conventions the corpus also uses.
 */
#include "cache/analysis_cache.h"
#include "cfg/cfg.h"
#include "checkers/parallel.h"
#include "checkers/registry.h"
#include "checkers/unit_guard.h"
#include "corpus/generator.h"
#include "lang/fingerprint.h"
#include "metal/engine.h"
#include "metal/metal_parser.h"
#include "support/budget.h"
#include "support/fault_injection.h"
#include "support/hash.h"
#include "support/metrics.h"
#include "support/run_ledger.h"
#include "support/text.h"
#include "support/thread_pool.h"
#include "support/trace.h"
#include "support/version.h"
#include "support/witness.h"

#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>

namespace {

using namespace mc;

const char* const kUsage =
    "usage: mccheck [options] --protocol <name> | --list |\n"
    "       mccheck [options] --emit-corpus <name> <dir> |\n"
    "       mccheck [options] --metal <c.metal> <file.c>... |\n"
    "       mccheck [options] <file.c>...\n"
    "\n"
    "modes:\n"
    "  --protocol <name>        generate and check a paper protocol\n"
    "  --list                   list known protocols\n"
    "  --emit-corpus <name> <d> write a protocol's sources under <d>\n"
    "  --metal <c.metal> ...    run a user metal checker over sources\n"
    "  <file.c>...              check FLASH-dialect sources\n"
    "\n"
    "options:\n"
    "  --format <text|json|sarif>  diagnostic output encoding\n"
    "  --metrics <out.json>        write engine/checker metrics report\n"
    "                              (timers carry count/mean/min/max;\n"
    "                              histograms carry p50/p95/max)\n"
    "  --trace <out.json>          write Chrome trace-event JSON\n"
    "                              (open in chrome://tracing or Perfetto)\n"
    "  --witness                   record each finding's provenance: the\n"
    "                              SM transitions and CFG block path that\n"
    "                              led to it (text back-trace, JSON\n"
    "                              'witness', SARIF codeFlows); output is\n"
    "                              byte-identical for any --jobs value,\n"
    "                              either match strategy, warm or cold\n"
    "                              cache\n"
    "  --witness-limit <n>         cap witness steps/blocks per finding\n"
    "                              (default 16; truncation is marked)\n"
    "  --ledger <out.jsonl>        append one JSON line per (function,\n"
    "                              checker) unit — wall time, visits,\n"
    "                              cache status, budget/failure state —\n"
    "                              plus run_start/run_end manifests (see\n"
    "                              tools/ledger_schema.json)\n"
    "  --jobs <n>                  run checkers on n threads (default:\n"
    "                              hardware concurrency; output is\n"
    "                              byte-identical for any n)\n"
    "  --cache <dir>               reuse analysis results for unchanged\n"
    "                              (function, checker) units; output is\n"
    "                              byte-identical warm or cold\n"
    "  --match-strategy <s>        SM matching strategy: 'table'\n"
    "                              (pre-compiled transition tables, the\n"
    "                              default) or 'legacy' (re-match per\n"
    "                              visit); output is byte-identical\n"
    "                              either way\n"
    "  --prune-paths <s>           path-feasibility pruning: 'off'\n"
    "                              (the default; walk every syntactic\n"
    "                              path like the paper's tool),\n"
    "                              'correlated' (re-tests of the same\n"
    "                              condition take the same edge), or\n"
    "                              'constraints' (adds a semantic value\n"
    "                              domain: x == 5 then x > 10 prunes);\n"
    "                              each strategy's output is\n"
    "                              byte-identical for any --jobs value,\n"
    "                              warm or cold cache\n"
    "  --cache-readonly            read the cache but never write it\n"
    "  --cache-limit-mb <n>        evict oldest cache entries beyond n\n"
    "                              MiB after the run\n"
    "  --unit-timeout-ms <n>       wall-clock budget per (function,\n"
    "                              checker) unit; exhausted units are\n"
    "                              truncated, not killed\n"
    "  --unit-max-steps <n>        path-walker step budget per unit\n"
    "  --fail-fast                 abort on the first unit failure\n"
    "                              (exit 3) instead of containing it\n"
    "  --keep-going                contain unit failures and keep\n"
    "                              checking (default)\n"
    "  --inject-fault <site:n>     arm a fault-injection probe (also\n"
    "                              via MCCHECK_FAULT_INJECT)\n"
    "  --help                      show this help\n"
    "  --version                   print version and exit\n"
    "\n"
    "exit codes: 0 clean, 1 findings, 2 degraded (incomplete analysis;\n"
    "wins over 1), 3 fatal (usage, unreadable input, --fail-fast)\n";

/** Parsed command line: one mode plus cross-cutting options. */
struct CliOptions
{
    enum class Mode
    {
        Help,
        Version,
        List,
        Protocol,
        EmitCorpus,
        Metal,
        Files,
    };

    Mode mode = Mode::Files;
    std::string protocol;
    std::string emit_dir;
    std::string metal_path;
    std::vector<std::string> files;
    std::string metrics_path;
    std::string trace_path;
    /** Attach witness paths (provenance) to findings. */
    bool witness = false;
    /** Witness step/block cap; 0 = the built-in default. */
    unsigned long witness_limit = 0;
    /** Run-ledger JSONL path; empty = ledger off. */
    std::string ledger_path;
    support::OutputFormat format = support::OutputFormat::Text;
    /** Checking concurrency; 0 = one lane per hardware thread. */
    unsigned jobs = 0;
    /** Analysis cache directory; empty = caching off. */
    std::string cache_dir;
    bool cache_readonly = false;
    /** Cache size cap in MiB enforced after the run; 0 = unlimited. */
    unsigned long cache_limit_mb = 0;
    /** Per-unit wall-clock budget in ms; 0 = unlimited. */
    unsigned long unit_timeout_ms = 0;
    /** Per-unit path-walker step budget; 0 = unlimited. */
    unsigned long unit_max_steps = 0;
    /** Path-feasibility pruning strategy for every checker's walks. */
    metal::PruneStrategy prune_strategy = metal::PruneStrategy::Off;
    /** Abort on the first contained unit failure instead of degrading. */
    bool fail_fast = false;
    /** Fault-injection spec ("site:n"); empty = use the env var only. */
    std::string inject_fault;
};

/** Print `what` plus usage to stderr; used for every CLI error. */
int
usageError(const std::string& what)
{
    std::cerr << "mccheck: " << what << '\n' << kUsage;
    return 3;
}

/**
 * Parse a whole-string decimal count for `flag` into `out`. Reports
 * exactly why a value was rejected — the stoul failure modes
 * (non-numeric, out of range) used to be swallowed by a bare catch and
 * surfaced as a generic usage error.
 */
bool
parseCount(const std::string& flag, const std::string& value,
           unsigned long& out)
{
    std::size_t used = 0;
    try {
        out = std::stoul(value, &used);
    } catch (const std::invalid_argument&) {
        std::cerr << "mccheck: " << flag << ": '" << value
                  << "' is not a number\n";
        return false;
    } catch (const std::out_of_range&) {
        std::cerr << "mccheck: " << flag << ": '" << value
                  << "' is out of range for unsigned long\n";
        return false;
    }
    if (used != value.size()) {
        std::cerr << "mccheck: " << flag << ": trailing characters in '"
                  << value << "'\n";
        return false;
    }
    return true;
}

/**
 * Parse argv into `out`. Returns -1 on success or the exit code to
 * return immediately (usage errors).
 */
int
parseArgs(const std::vector<std::string>& args, CliOptions& out)
{
    auto need_value = [&](std::size_t i, const std::string& flag,
                          std::string& value) -> bool {
        if (i + 1 >= args.size())
            return false;
        value = args[i + 1];
        (void)flag;
        return true;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (arg == "--help" || arg == "-h") {
            out.mode = CliOptions::Mode::Help;
            return -1;
        }
        if (arg == "--version") {
            out.mode = CliOptions::Mode::Version;
            return -1;
        }
        if (arg == "--list") {
            out.mode = CliOptions::Mode::List;
        } else if (arg == "--protocol") {
            if (!need_value(i, arg, out.protocol))
                return usageError("--protocol needs a protocol name");
            out.mode = CliOptions::Mode::Protocol;
            ++i;
        } else if (arg == "--emit-corpus") {
            if (i + 2 >= args.size())
                return usageError(
                    "--emit-corpus needs a protocol name and a directory");
            out.protocol = args[i + 1];
            out.emit_dir = args[i + 2];
            out.mode = CliOptions::Mode::EmitCorpus;
            i += 2;
        } else if (arg == "--metal") {
            if (!need_value(i, arg, out.metal_path))
                return usageError("--metal needs a .metal file");
            out.mode = CliOptions::Mode::Metal;
            ++i;
        } else if (arg == "--metrics") {
            if (!need_value(i, arg, out.metrics_path))
                return usageError("--metrics needs an output path");
            ++i;
        } else if (arg == "--trace") {
            if (!need_value(i, arg, out.trace_path))
                return usageError("--trace needs an output path");
            ++i;
        } else if (arg == "--witness") {
            out.witness = true;
        } else if (arg == "--witness-limit") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--witness-limit needs a step count");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--witness-limit needs a positive step count, "
                    "got '" + value + "'");
            out.witness_limit = parsed;
            ++i;
        } else if (arg == "--ledger") {
            if (!need_value(i, arg, out.ledger_path))
                return usageError("--ledger needs an output path");
            ++i;
        } else if (arg == "--jobs") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--jobs needs a positive thread count");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0 ||
                parsed > 1024)
                return usageError("--jobs needs a thread count in 1..1024, "
                                  "got '" + value + "'");
            out.jobs = static_cast<unsigned>(parsed);
            ++i;
        } else if (arg == "--match-strategy") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--match-strategy needs a value "
                                  "(table or legacy)");
            if (value == "table") {
                metal::setDefaultMatchStrategy(
                    metal::MatchStrategy::Table);
            } else if (value == "legacy") {
                metal::setDefaultMatchStrategy(
                    metal::MatchStrategy::Legacy);
            } else {
                return usageError("--match-strategy must be 'table' or "
                                  "'legacy', got '" + value + "'");
            }
            ++i;
        } else if (arg == "--prune-paths") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--prune-paths needs a value (off, "
                                  "correlated, or constraints)");
            std::optional<metal::PruneStrategy> strategy =
                metal::parsePruneStrategy(value);
            if (!strategy)
                return usageError("--prune-paths must be 'off', "
                                  "'correlated', or 'constraints', got '" +
                                  value + "'");
            out.prune_strategy = *strategy;
            ++i;
        } else if (arg == "--cache") {
            if (!need_value(i, arg, out.cache_dir))
                return usageError("--cache needs a directory");
            ++i;
        } else if (arg == "--cache-readonly") {
            out.cache_readonly = true;
        } else if (arg == "--cache-limit-mb") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--cache-limit-mb needs a size in MiB");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--cache-limit-mb needs a positive size in MiB, "
                    "got '" + value + "'");
            out.cache_limit_mb = parsed;
            ++i;
        } else if (arg == "--unit-timeout-ms") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--unit-timeout-ms needs a duration");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--unit-timeout-ms needs a positive duration in "
                    "milliseconds, got '" + value + "'");
            out.unit_timeout_ms = parsed;
            ++i;
        } else if (arg == "--unit-max-steps") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--unit-max-steps needs a step count");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--unit-max-steps needs a positive step count, "
                    "got '" + value + "'");
            out.unit_max_steps = parsed;
            ++i;
        } else if (arg == "--fail-fast") {
            out.fail_fast = true;
        } else if (arg == "--keep-going") {
            out.fail_fast = false;
        } else if (arg == "--inject-fault") {
            if (!need_value(i, arg, out.inject_fault))
                return usageError("--inject-fault needs a <site>:<n> spec");
            ++i;
        } else if (arg == "--format") {
            std::string name;
            if (!need_value(i, arg, name))
                return usageError("--format needs text, json, or sarif");
            if (!support::parseOutputFormat(name, out.format))
                return usageError("unknown format '" + name +
                                  "' (expected text, json, or sarif)");
            ++i;
        } else if (support::startsWith(arg, "-") && arg != "-") {
            return usageError("unknown option '" + arg + "'");
        } else {
            out.files.push_back(arg);
        }
    }
    return -1;
}

int
listProtocols()
{
    for (const corpus::ProtocolProfile& profile : corpus::paperProfiles())
        std::cout << profile.name << '\n';
    return 0;
}

/** Per-unit resource limits from the CLI budget flags. */
support::BudgetLimits
unitBudget(const CliOptions& opts)
{
    support::BudgetLimits limits;
    limits.deadline = std::chrono::milliseconds(opts.unit_timeout_ms);
    limits.max_steps = opts.unit_max_steps;
    return limits;
}

/**
 * Map a finished run to the documented exit scheme: degraded (2) wins
 * over findings (1) — an incomplete analysis can neither prove nor
 * refute cleanliness, and the caller must not mistake "no errors
 * reported" for "no errors present".
 */
int
exitCode(bool degraded, const support::DiagnosticSink& sink)
{
    if (degraded)
        return 2;
    return sink.count(support::Severity::Error) > 0 ? 1 : 0;
}

/**
 * Surface recovered frontend failures (parse/lex errors that poisoned a
 * declaration) as ordinary diagnostics so they reach every output
 * format, SARIF included, through the same sorted emission path.
 */
void
reportFrontendIssues(const lang::Program& program,
                     support::DiagnosticSink& sink)
{
    for (const lang::TranslationUnit& unit : program.units())
        for (const lang::ParseIssue& issue : unit.issues)
            sink.error(issue.loc, "frontend", issue.rule, issue.message);
}

/** Final error/warning tallies for the ledger's run_end summary. */
int g_run_errors = 0;
int g_run_warnings = 0;

/** Render run stats + diagnostics in the selected format. */
void
emitFindings(const CliOptions& opts, const support::DiagnosticSink& sink,
             const support::SourceManager* sm,
             const std::vector<checkers::CheckerRunStats>* stats)
{
    g_run_errors = sink.count(support::Severity::Error);
    g_run_warnings = sink.count(support::Severity::Warning);
    if (opts.format == support::OutputFormat::Text) {
        sink.print(std::cout, sm);
        if (stats) {
            std::cout << '\n';
            std::vector<std::vector<std::string>> rows;
            for (const auto& s : *stats) {
                std::ostringstream ms;
                ms.precision(2);
                ms << std::fixed << s.wall_ms;
                rows.push_back({s.checker, std::to_string(s.errors),
                                std::to_string(s.warnings),
                                std::to_string(s.applied), ms.str()});
            }
            std::cout << support::formatTable(
                {"checker", "errors", "warnings", "applied", "wall_ms"},
                rows);
        }
    } else {
        sink.write(std::cout, opts.format, sm);
    }
}

int
checkProtocol(const CliOptions& opts, cache::AnalysisCache* cache)
{
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName(opts.protocol));
    support::TraceRecorder& tracer = support::TraceRecorder::global();
    support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                            "protocol:" + opts.protocol, "driver");
    checkers::CheckerSetOptions copts;
    copts.prune_strategy = opts.prune_strategy;
    auto set = checkers::makeAllCheckers(copts);
    support::DiagnosticSink sink;
    reportFrontendIssues(*loaded.program, sink);
    checkers::RunHealth health;
    checkers::ParallelRunOptions prun;
    prun.jobs = opts.jobs;
    prun.cache = cache;
    prun.unit_budget = unitBudget(opts);
    prun.fail_fast = opts.fail_fast;
    prun.health = &health;
    prun.checker_options = copts;
    auto stats = checkers::runCheckersParallel(
        *loaded.program, loaded.gen.spec, set.pointers(), sink, prun);
    span.finish();
    emitFindings(opts, sink, &loaded.program->sourceManager(), &stats);
    return exitCode(loaded.program->degraded() ||
                        health.unit_failures > 0 ||
                        health.budget_truncations > 0,
                    sink);
}

int
emitCorpus(const std::string& name, const std::string& dir)
{
    corpus::GeneratedProtocol gen =
        corpus::generateProtocol(corpus::profileByName(name));
    for (const corpus::GeneratedFile& file : gen.files) {
        std::filesystem::path path =
            std::filesystem::path(dir) / file.name;
        std::filesystem::create_directories(path.parent_path());
        std::ofstream out(path);
        out << file.source;
    }
    std::cout << "wrote " << gen.files.size() << " files ("
              << gen.totalLoc() << " LOC) under " << dir << '\n';
    return 0;
}

/** Load dialect sources into `program`; returns false on error. */
bool
loadSources(lang::Program& program, const std::vector<std::string>& paths)
{
    for (const std::string& path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "mccheck: cannot open " << path << '\n';
            return false;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        try {
            program.addSource(path, buffer.str());
        } catch (const lang::ParseError& e) {
            std::cerr << path << ':' << e.loc().line << ':'
                      << e.loc().column << ": parse error: " << e.what()
                      << '\n';
            return false;
        } catch (const lang::LexError& e) {
            std::cerr << path << ':' << e.loc().line << ": lex error: "
                      << e.what() << '\n';
            return false;
        }
    }
    return true;
}

/** Run one user-written metal checker over dialect sources. */
int
runMetalChecker(const CliOptions& opts, cache::AnalysisCache* cache)
{
    metal::MetalProgram checker;
    std::string metal_source;
    try {
        checker = metal::loadMetalFile(opts.metal_path);
        std::ifstream metal_in(opts.metal_path);
        std::ostringstream metal_buf;
        metal_buf << metal_in.rdbuf();
        metal_source = metal_buf.str();
    } catch (const metal::MetalParseError& e) {
        std::cerr << "mccheck: " << e.what() << '\n';
        return 3;
    }
    lang::Program program(/*recover=*/true);
    if (!loadSources(program, opts.files))
        return 3;

    // Fan functions out across the pool, each into a private sink; merge
    // in program function order so the shared sink sees the same
    // diagnostic sequence a sequential loop would produce. The parsed
    // state machine is shared read-only across lanes. Each function runs
    // under a UnitGuard with the CLI budget, mirroring the parallel
    // checker runner's containment: a walk that throws is replaced by an
    // "analysis incomplete" warning and the run degrades instead of
    // dying.
    //
    // With a cache, each function's walk outcome (its private sink's
    // diagnostics) is keyed by the metal source text plus the function's
    // token-stream fingerprint, so re-checks after an edit replay every
    // untouched function. Functions in degraded units have no
    // fingerprint and bypass the cache entirely.
    const std::vector<const lang::FunctionDecl*>& fns =
        program.functions();
    const std::string unit_checker = "metal:" + checker.name;
    using Clock = std::chrono::steady_clock;
    std::vector<support::DiagnosticSink> fn_sinks(fns.size());
    std::vector<char> fn_failed(fns.size(), 0);
    std::vector<char> fn_hit(fns.size(), 0);
    std::vector<Clock::duration> fn_elapsed(fns.size(),
                                            Clock::duration::zero());
    std::vector<support::LedgerUnitStats> fn_walk_stats(fns.size());
    std::vector<support::BudgetStop> fn_stop(fns.size(),
                                             support::BudgetStop::None);
    std::map<std::string, std::uint64_t> fn_fps;
    std::map<std::string, std::int32_t> file_ids;
    std::vector<std::uint64_t> keys(fns.size(), 0);
    if (cache) {
        fn_fps = lang::fingerprintFunctions(program);
        file_ids =
            cache::AnalysisCache::fileIdsByName(program.sourceManager());
    }
    support::ThreadPool pool(opts.jobs);
    pool.parallelFor(fns.size(), [&](std::size_t f) {
        Clock::time_point t0 = Clock::now();
        auto fp = fn_fps.find(fns[f]->name);
        if (cache && fp != fn_fps.end()) {
            // Witness capture changes the cached bytes, so witness-on
            // and witness-off runs (and different caps) key separately.
            keys[f] = support::Fnv1a()
                          .i64(cache::kCacheFormatVersion)
                          .str(support::kToolVersion)
                          .str(unit_checker)
                          .str(metal_source)
                          .u8(support::witnessEnabled() ? 1 : 0)
                          .u64(support::witnessLimit())
                          .u8(static_cast<std::uint8_t>(
                              opts.prune_strategy))
                          .u64(fp->second)
                          .value();
            cache::CachedUnit unit;
            if (cache->lookup(keys[f], unit) &&
                unit.function == fns[f]->name) {
                bool ok = true;
                std::vector<support::Diagnostic> replayed;
                for (const cache::CachedDiagnostic& cached : unit.diags) {
                    support::Diagnostic d;
                    if (!cache::AnalysisCache::fromCached(cached, file_ids,
                                                          d)) {
                        ok = false;
                        break;
                    }
                    replayed.push_back(std::move(d));
                }
                if (ok) {
                    for (support::Diagnostic& d : replayed)
                        fn_sinks[f].report(std::move(d));
                    fn_hit[f] = 1;
                    fn_elapsed[f] = Clock::now() - t0;
                    return;
                }
            }
        }
        const std::string label = fns[f]->name + "/" + unit_checker;
        support::DiagnosticSink scratch;
        support::LedgerUnitStats unit_stats;
        support::LedgerUnitScope stats_scope(&unit_stats);
        checkers::UnitGuard guard(label, unitBudget(opts),
                                  opts.fail_fast);
        checkers::UnitOutcome outcome = guard.run([&] {
            support::fault::probe("checker.unit", label);
            cfg::Cfg cfg = cfg::CfgBuilder::build(*fns[f]);
            metal::SmRunOptions run_options;
            run_options.prune_strategy = opts.prune_strategy;
            metal::runStateMachine(*checker.sm, cfg, scratch,
                                   run_options);
        });
        fn_elapsed[f] = Clock::now() - t0;
        fn_walk_stats[f] = unit_stats;
        fn_stop[f] = outcome.budget_stop;
        if (outcome.failed) {
            fn_failed[f] = 1;
            fn_sinks[f].warning(fns[f]->loc, "engine", "unit-failure",
                                "analysis incomplete: " + unit_checker +
                                    " failed on '" + fns[f]->name +
                                    "': " + outcome.error);
            return;
        }
        for (const support::Diagnostic& d : scratch.diagnostics())
            fn_sinks[f].report(d);
        if (outcome.budget_stop != support::BudgetStop::None)
            fn_sinks[f].warning(
                fns[f]->loc, "engine", "budget-exhausted",
                "analysis truncated: " + unit_checker + " on '" +
                    fns[f]->name + "' exhausted its " +
                    support::budgetStopName(outcome.budget_stop) +
                    " budget");
        if (cache && !cache->readonly() && keys[f] != 0 &&
            outcome.budget_stop == support::BudgetStop::None) {
            cache::CachedUnit unit;
            unit.checker = unit_checker;
            unit.function = fns[f]->name;
            for (const support::Diagnostic& d : fn_sinks[f].diagnostics())
                unit.diags.push_back(cache::AnalysisCache::toCached(
                    d, program.sourceManager()));
            cache->store(keys[f], unit);
        }
    });
    support::DiagnosticSink sink;
    reportFrontendIssues(program, sink);
    support::RunLedger& ledger = support::RunLedger::global();
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    std::set<std::int32_t> degraded_files;
    if (ledger.enabled())
        for (const lang::TranslationUnit& tu : program.units())
            if (!tu.issues.empty())
                degraded_files.insert(tu.file_id);
    std::uint64_t failures = 0;
    std::uint64_t truncations = 0;
    std::uint64_t witness_truncations = 0;
    for (std::size_t f = 0; f < fns.size(); ++f) {
        for (const support::Diagnostic& d : fn_sinks[f].diagnostics()) {
            witness_truncations += d.witness.truncated ? 1 : 0;
            sink.report(d);
        }
        failures += fn_failed[f] ? 1 : 0;
        truncations +=
            fn_stop[f] != support::BudgetStop::None ? 1 : 0;
        if (ledger.enabled()) {
            support::LedgerUnitEvent event;
            event.function = fns[f]->name;
            event.checker = unit_checker;
            event.wall_ms = std::chrono::duration<double, std::milli>(
                                fn_elapsed[f])
                                .count();
            event.visits = fn_walk_stats[f].visits;
            event.pruned_edges = fn_walk_stats[f].pruned_edges;
            event.prune_cache_hits = fn_walk_stats[f].prune_cache_hits;
            event.prune_skipped_nary =
                fn_walk_stats[f].prune_skipped_nary;
            event.cache = !cache ? "off" : fn_hit[f] ? "hit" : "miss";
            event.budget_stop = support::budgetStopName(fn_stop[f]);
            event.truncated = fn_stop[f] != support::BudgetStop::None;
            event.failed = fn_failed[f] != 0;
            event.degraded_parse =
                degraded_files.count(fns[f]->loc.file_id) != 0;
            ledger.unit(event);
        }
        if (metrics.enabled() && !fn_hit[f]) {
            metrics.histogram("unit.wall_ns")
                .observe(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        fn_elapsed[f])
                        .count()));
            metrics.histogram("unit.visits")
                .observe(fn_walk_stats[f].visits);
        }
    }
    if (metrics.enabled()) {
        metrics.counter("engine.unit_failures").add(failures);
        metrics.counter("budget.truncations").add(truncations);
        metrics.counter("witness.truncations").add(witness_truncations);
    }
    emitFindings(opts, sink, &program.sourceManager(), nullptr);
    if (opts.format == support::OutputFormat::Text)
        std::cout << "sm '" << checker.name << "': "
                  << sink.count(support::Severity::Error) << " error(s), "
                  << sink.count(support::Severity::Warning)
                  << " warning(s)\n";
    return exitCode(program.degraded() || failures > 0 ||
                        truncations > 0,
                    sink);
}

int
checkFiles(const CliOptions& opts, cache::AnalysisCache* cache)
{
    lang::Program program(/*recover=*/true);
    if (!loadSources(program, opts.files))
        return 3;

    flash::ProtocolSpec spec;
    spec.name = "<cli>";
    for (const lang::FunctionDecl* fn : program.functions()) {
        flash::HandlerSpec hs;
        hs.name = fn->name;
        bool camel_case =
            !fn->name.empty() &&
            std::isupper(static_cast<unsigned char>(fn->name[0]));
        if (!camel_case)
            hs.kind = flash::HandlerKind::Normal;
        else if (support::startsWith(fn->name, "Sw"))
            hs.kind = flash::HandlerKind::Software;
        else
            hs.kind = flash::HandlerKind::Hardware;
        spec.addHandler(hs);
    }

    checkers::CheckerSetOptions copts;
    copts.prune_strategy = opts.prune_strategy;
    auto set = checkers::makeAllCheckers(copts);
    support::DiagnosticSink sink;
    reportFrontendIssues(program, sink);
    checkers::RunHealth health;
    checkers::ParallelRunOptions prun;
    prun.jobs = opts.jobs;
    prun.cache = cache;
    prun.unit_budget = unitBudget(opts);
    prun.fail_fast = opts.fail_fast;
    prun.health = &health;
    prun.checker_options = copts;
    auto stats = checkers::runCheckersParallel(program, spec,
                                               set.pointers(), sink, prun);
    emitFindings(opts, sink, &program.sourceManager(), nullptr);
    if (opts.format == support::OutputFormat::Text)
        std::cout << sink.count(support::Severity::Error) << " error(s), "
                  << sink.count(support::Severity::Warning)
                  << " warning(s)\n";
    (void)stats;
    return exitCode(program.degraded() || health.unit_failures > 0 ||
                        health.budget_truncations > 0,
                    sink);
}

/** Write metrics / trace reports if requested. Returns false on I/O error. */
bool
writeObservabilityOutputs(const CliOptions& opts)
{
    bool ok = true;
    if (!opts.metrics_path.empty()) {
        std::ofstream out(opts.metrics_path);
        if (!out) {
            std::cerr << "mccheck: cannot write " << opts.metrics_path
                      << '\n';
            ok = false;
        } else {
            support::MetricsRegistry::global().writeJson(out);
        }
    }
    if (!opts.trace_path.empty()) {
        std::ofstream out(opts.trace_path);
        if (!out) {
            std::cerr << "mccheck: cannot write " << opts.trace_path
                      << '\n';
            ok = false;
        } else {
            support::TraceRecorder::global().writeJson(out);
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        std::cerr << kUsage;
        return 3;
    }

    CliOptions opts;
    if (int rc = parseArgs(args, opts); rc >= 0)
        return rc;

    // Arm fault injection before any probe site can run. The CLI flag
    // wins over the environment variable.
    if (!opts.inject_fault.empty()) {
        if (!support::fault::arm(opts.inject_fault))
            return usageError(
                "--inject-fault needs <site>:<n> with n >= 1, got '" +
                opts.inject_fault +
                "' (or this build has MCHECK_FAULT_INJECTION off)");
    } else {
        support::fault::armFromEnv();
    }

    if (opts.mode == CliOptions::Mode::Help) {
        std::cout << kUsage;
        return 0;
    }
    if (opts.mode == CliOptions::Mode::Version) {
        std::cout << support::kToolName << ' ' << support::kToolVersion
                  << '\n';
        return 0;
    }

    if (!opts.metrics_path.empty())
        support::MetricsRegistry::global().setEnabled(true);
    if (!opts.trace_path.empty())
        support::TraceRecorder::global().setEnabled(true);
    support::setWitnessConfig(opts.witness,
                              static_cast<unsigned>(opts.witness_limit));
    if (!opts.ledger_path.empty()) {
        support::RunLedger& ledger = support::RunLedger::global();
        if (!ledger.open(opts.ledger_path)) {
            std::cerr << "mccheck: cannot write " << opts.ledger_path
                      << '\n';
            return 3;
        }
        ledger.runStart(args, opts.witness, support::witnessLimit(),
                        opts.jobs);
    }

    // The cache touches stderr only: findings on stdout must stay
    // byte-identical between cold and warm runs.
    std::unique_ptr<cache::AnalysisCache> cache;
    if (!opts.cache_dir.empty()) {
        try {
            cache = std::make_unique<cache::AnalysisCache>(
                opts.cache_dir, opts.cache_readonly);
        } catch (const std::exception& e) {
            std::cerr << "mccheck: " << e.what() << '\n';
            return 3;
        }
    }

    try {
        int rc = 0;
        switch (opts.mode) {
          case CliOptions::Mode::List:
            rc = listProtocols();
            break;
          case CliOptions::Mode::Protocol:
            rc = checkProtocol(opts, cache.get());
            break;
          case CliOptions::Mode::EmitCorpus:
            rc = emitCorpus(opts.protocol, opts.emit_dir);
            break;
          case CliOptions::Mode::Metal:
            if (opts.files.empty())
                return usageError("--metal needs source files to check");
            rc = runMetalChecker(opts, cache.get());
            break;
          case CliOptions::Mode::Files:
            if (opts.files.empty())
                return usageError("no input files");
            rc = checkFiles(opts, cache.get());
            break;
          case CliOptions::Mode::Help:
          case CliOptions::Mode::Version:
            break;
        }
        if (cache) {
            if (opts.cache_limit_mb > 0)
                cache->trim(opts.cache_limit_mb * 1024ull * 1024ull);
            for (const std::string& warning : cache->takeWarnings())
                std::cerr << "mccheck: cache: " << warning << '\n';
            const cache::CacheStats cs = cache->stats();
            std::cerr << "mccheck: cache: " << cs.hits << " hit(s), "
                      << cs.misses << " miss(es), " << cs.stores
                      << " stored, " << cs.evictions << " evicted\n";
        }
        if (!writeObservabilityOutputs(opts))
            rc = 3;
        support::RunLedger::global().runEnd(rc, g_run_errors,
                                            g_run_warnings);
        return rc;
    } catch (const std::exception& e) {
        // Anything that escapes containment — including --fail-fast
        // rethrows and fault-injection probes outside any UnitGuard —
        // is fatal.
        std::cerr << "mccheck: " << e.what() << '\n';
        return 3;
    }
}
