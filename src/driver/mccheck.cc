/**
 * @file
 * mccheck — the command-line front end.
 *
 * Usage:
 *     mccheck --protocol <name>          check a generated paper protocol
 *     mccheck --emit-corpus <name> <dir> write its sources to disk
 *     mccheck --list                     list known protocols
 *     mccheck --metal <c.metal> <f.c>... run a user-written metal checker
 *     mccheck <file.c>...                check FLASH-dialect sources
 *
 * When checking loose files, every CamelCase function is treated as a
 * hardware handler unless its name starts with "Sw" (software handler);
 * lowercase-named functions are plain routines — the FLASH naming
 * conventions the corpus also uses.
 */
#include "cfg/cfg.h"
#include "checkers/registry.h"
#include "corpus/generator.h"
#include "metal/engine.h"
#include "metal/metal_parser.h"
#include "support/text.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace {

using namespace mc;

int
listProtocols()
{
    for (const corpus::ProtocolProfile& profile : corpus::paperProfiles())
        std::cout << profile.name << '\n';
    return 0;
}

int
checkProtocol(const std::string& name)
{
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName(name));
    auto set = checkers::makeAllCheckers();
    support::DiagnosticSink sink;
    auto stats = checkers::runCheckers(*loaded.program, loaded.gen.spec,
                                       set.pointers(), sink);
    sink.print(std::cout, &loaded.program->sourceManager());
    std::cout << '\n';
    std::vector<std::vector<std::string>> rows;
    for (const auto& s : stats)
        rows.push_back({s.checker, std::to_string(s.errors),
                        std::to_string(s.warnings),
                        std::to_string(s.applied)});
    std::cout << support::formatTable(
        {"checker", "errors", "warnings", "applied"}, rows);
    return sink.count(support::Severity::Error) > 0 ? 2 : 0;
}

int
emitCorpus(const std::string& name, const std::string& dir)
{
    corpus::GeneratedProtocol gen =
        corpus::generateProtocol(corpus::profileByName(name));
    for (const corpus::GeneratedFile& file : gen.files) {
        std::filesystem::path path =
            std::filesystem::path(dir) / file.name;
        std::filesystem::create_directories(path.parent_path());
        std::ofstream out(path);
        out << file.source;
    }
    std::cout << "wrote " << gen.files.size() << " files ("
              << gen.totalLoc() << " LOC) under " << dir << '\n';
    return 0;
}

/** Load dialect sources into `program`; returns false on error. */
bool
loadSources(lang::Program& program, const std::vector<std::string>& paths)
{
    for (const std::string& path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "mccheck: cannot open " << path << '\n';
            return false;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        try {
            program.addSource(path, buffer.str());
        } catch (const lang::ParseError& e) {
            std::cerr << path << ':' << e.loc().line << ':'
                      << e.loc().column << ": parse error: " << e.what()
                      << '\n';
            return false;
        } catch (const lang::LexError& e) {
            std::cerr << path << ':' << e.loc().line << ": lex error: "
                      << e.what() << '\n';
            return false;
        }
    }
    return true;
}

/** Run one user-written metal checker over dialect sources. */
int
runMetalChecker(const std::string& metal_path,
                const std::vector<std::string>& sources)
{
    metal::MetalProgram checker;
    try {
        checker = metal::loadMetalFile(metal_path);
    } catch (const metal::MetalParseError& e) {
        std::cerr << "mccheck: " << e.what() << '\n';
        return 1;
    }
    lang::Program program;
    if (!loadSources(program, sources))
        return 1;

    support::DiagnosticSink sink;
    for (const lang::FunctionDecl* fn : program.functions()) {
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
        metal::runStateMachine(*checker.sm, cfg, sink);
    }
    sink.print(std::cout, &program.sourceManager());
    std::cout << "sm '" << checker.name << "': "
              << sink.count(support::Severity::Error) << " error(s), "
              << sink.count(support::Severity::Warning)
              << " warning(s)\n";
    return sink.count(support::Severity::Error) > 0 ? 2 : 0;
}

int
checkFiles(const std::vector<std::string>& paths)
{
    lang::Program program;
    if (!loadSources(program, paths))
        return 1;

    flash::ProtocolSpec spec;
    spec.name = "<cli>";
    for (const lang::FunctionDecl* fn : program.functions()) {
        flash::HandlerSpec hs;
        hs.name = fn->name;
        bool camel_case =
            !fn->name.empty() &&
            std::isupper(static_cast<unsigned char>(fn->name[0]));
        if (!camel_case)
            hs.kind = flash::HandlerKind::Normal;
        else if (support::startsWith(fn->name, "Sw"))
            hs.kind = flash::HandlerKind::Software;
        else
            hs.kind = flash::HandlerKind::Hardware;
        spec.addHandler(hs);
    }

    auto set = checkers::makeAllCheckers();
    support::DiagnosticSink sink;
    checkers::runCheckers(program, spec, set.pointers(), sink);
    sink.print(std::cout, &program.sourceManager());
    std::cout << sink.count(support::Severity::Error) << " error(s), "
              << sink.count(support::Severity::Warning)
              << " warning(s)\n";
    return sink.count(support::Severity::Error) > 0 ? 2 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        if (args.empty() || args[0] == "--help") {
            std::cout << "usage: mccheck --protocol <name> | --list |\n"
                         "       mccheck --emit-corpus <name> <dir> |\n"
                         "       mccheck --metal <c.metal> <file.c>... |\n"
                         "       mccheck <file.c>...\n";
            return args.empty() ? 1 : 0;
        }
        if (args[0] == "--list")
            return listProtocols();
        if (args[0] == "--protocol" && args.size() == 2)
            return checkProtocol(args[1]);
        if (args[0] == "--emit-corpus" && args.size() == 3)
            return emitCorpus(args[1], args[2]);
        if (args[0] == "--metal" && args.size() >= 3)
            return runMetalChecker(
                args[1],
                std::vector<std::string>(args.begin() + 2, args.end()));
        return checkFiles(args);
    } catch (const std::exception& e) {
        std::cerr << "mccheck: " << e.what() << '\n';
        return 1;
    }
}
