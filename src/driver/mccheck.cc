/**
 * @file
 * mccheck — the command-line front end.
 *
 * Usage:
 *     mccheck --protocol <name>          check a generated paper protocol
 *     mccheck --emit-corpus <name> <dir> write its sources to disk
 *     mccheck --list                     list known protocols
 *     mccheck --metal <c.metal> <f.c>... run a user-written metal checker
 *     mccheck <file.c>...                check FLASH-dialect sources
 *
 * Observability options (combine with any checking mode):
 *     --metrics <out.json>   write the MetricsRegistry report
 *     --trace <out.json>     write a Chrome trace-event file
 *     --witness              attach witness paths (SM transition history
 *                            + CFG block path) to findings
 *     --witness-limit <n>    cap witness steps/blocks (default 16)
 *     --ledger <out.jsonl>   append a per-unit run ledger
 *     --format text|json|sarif   diagnostic output encoding
 *     --jobs <n>             checking concurrency (default: all cores)
 *
 * Caching (combine with --protocol, --metal, or file checking):
 *     --cache <dir>          persistent per-(function, checker) result
 *                            cache; unchanged units replay instead of
 *                            re-walking paths
 *     --cache-readonly       consult the cache but never write it
 *     --cache-limit-mb <n>   evict oldest entries past n MiB after a run
 *
 * Robustness (see docs/robustness.md):
 *     --unit-timeout-ms <n>  per-(function, checker) wall-clock budget
 *     --unit-max-steps <n>   per-unit path-walker step budget
 *     --fail-fast            abort the run on the first unit failure
 *     --keep-going           contain unit failures (default)
 *     --inject-fault <s:n>   arm a fault-injection probe (testing)
 *
 * Exit codes:
 *     0  clean — every unit analyzed completely, no errors found
 *     1  findings — checkers reported at least one error
 *     2  degraded — analysis incomplete somewhere (a parse error
 *        recovered into a poisoned declaration, a contained unit
 *        failure, or a budget truncation); takes precedence over 1
 *     3  fatal — usage errors, unreadable inputs, --fail-fast aborts,
 *        or an escaped internal error
 *
 * The checking pipeline itself lives in src/server/check_request.cc,
 * shared with the mccheckd daemon: this file only parses argv into a
 * server::CheckRequest and runs it against fresh (non-resident) state.
 * Output is deterministic for any --jobs value and for warm vs. cold
 * cache runs — see that file for the ordering guarantees. Cache status
 * goes to stderr only.
 *
 * When checking loose files, every CamelCase function is treated as a
 * hardware handler unless its name starts with "Sw" (software handler);
 * lowercase-named functions are plain routines — the FLASH naming
 * conventions the corpus also uses.
 */
#include "cache/analysis_cache.h"
#include "corpus/generator.h"
#include "metal/engine.h"
#include "server/check_request.h"
#include "server/daemon.h"
#include "support/fault_injection.h"
#include "support/metrics.h"
#include "support/run_ledger.h"
#include "support/text.h"
#include "support/trace.h"
#include "support/version.h"
#include "support/witness.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include <unistd.h>

namespace {

using namespace mc;

const char* const kUsage =
    "usage: mccheck [options] --protocol <name> | --list |\n"
    "       mccheck [options] --emit-corpus <name> <dir> |\n"
    "       mccheck [options] --metal <c.metal> <file.c>... |\n"
    "       mccheck [options] <file.c>...\n"
    "\n"
    "modes:\n"
    "  --protocol <name>        generate and check a paper protocol\n"
    "  --list                   list known protocols\n"
    "  --emit-corpus <name> <d> write a protocol's sources under <d>\n"
    "  --metal <c.metal> ...    run a user metal checker over sources\n"
    "  <file.c>...              check FLASH-dialect sources\n"
    "\n"
    "options:\n"
    "  --format <text|json|sarif>  diagnostic output encoding\n"
    "  --metrics <out.json>        write engine/checker metrics report\n"
    "                              (timers carry count/mean/min/max;\n"
    "                              histograms carry p50/p95/max)\n"
    "  --trace <out.json>          write Chrome trace-event JSON\n"
    "                              (open in chrome://tracing or Perfetto)\n"
    "  --witness                   record each finding's provenance: the\n"
    "                              SM transitions and CFG block path that\n"
    "                              led to it (text back-trace, JSON\n"
    "                              'witness', SARIF codeFlows); output is\n"
    "                              byte-identical for any --jobs value,\n"
    "                              either match strategy, warm or cold\n"
    "                              cache\n"
    "  --witness-limit <n>         cap witness steps/blocks per finding\n"
    "                              (default 16; truncation is marked)\n"
    "  --ledger <out.jsonl>        append one JSON line per (function,\n"
    "                              checker) unit — wall time, visits,\n"
    "                              cache status, budget/failure state —\n"
    "                              plus run_start/run_end manifests (see\n"
    "                              tools/ledger_schema.json)\n"
    "  --jobs <n>                  run checkers on n threads (default:\n"
    "                              hardware concurrency; output is\n"
    "                              byte-identical for any n)\n"
    "  --cache <dir>               reuse analysis results for unchanged\n"
    "                              (function, checker) units; output is\n"
    "                              byte-identical warm or cold\n"
    "  --match-strategy <s>        SM matching strategy: 'table'\n"
    "                              (pre-compiled transition tables, the\n"
    "                              default) or 'legacy' (re-match per\n"
    "                              visit); output is byte-identical\n"
    "                              either way\n"
    "  --prune-paths <s>           path-feasibility pruning: 'off'\n"
    "                              (the default; walk every syntactic\n"
    "                              path like the paper's tool),\n"
    "                              'correlated' (re-tests of the same\n"
    "                              condition take the same edge), or\n"
    "                              'constraints' (adds a semantic value\n"
    "                              domain: x == 5 then x > 10 prunes);\n"
    "                              each strategy's output is\n"
    "                              byte-identical for any --jobs value,\n"
    "                              warm or cold cache\n"
    "  --cache-readonly            read the cache but never write it\n"
    "  --cache-limit-mb <n>        evict oldest cache entries beyond n\n"
    "                              MiB after the run\n"
    "  --unit-timeout-ms <n>       wall-clock budget per (function,\n"
    "                              checker) unit; exhausted units are\n"
    "                              truncated, not killed\n"
    "  --unit-max-steps <n>        path-walker step budget per unit\n"
    "  --fail-fast                 abort on the first unit failure\n"
    "                              (exit 3) instead of containing it\n"
    "  --keep-going                contain unit failures and keep\n"
    "                              checking (default)\n"
    "  --inject-fault <site:n>     arm a fault-injection probe (also\n"
    "                              via MCCHECK_FAULT_INJECT)\n"
    "  --shards <n>                run (function, checker) units in n\n"
    "                              supervised worker processes; output\n"
    "                              is byte-identical to an in-process\n"
    "                              run at any n, even when workers crash\n"
    "                              and are respawned (--protocol and\n"
    "                              file checking; see docs/sharding.md)\n"
    "  --shard-batch-units <n>     units per shard work batch\n"
    "                              (default 16)\n"
    "  --shard-batch-timeout-ms <n> kill + respawn a worker holding one\n"
    "                              batch longer than n ms (default: no\n"
    "                              deadline; heartbeat supervision still\n"
    "                              applies)\n"
    "  --shard-backoff-ms <n>      worker respawn backoff base, doubled\n"
    "                              per consecutive crash and capped\n"
    "                              (default 50; timing only, never\n"
    "                              output bytes)\n"
    "  --shard-worker              internal: serve check_units batches\n"
    "                              on stdin/stdout for a --shards\n"
    "                              coordinator\n"
    "  --help                      show this help\n"
    "  --version                   print version and exit\n"
    "\n"
    "exit codes: 0 clean, 1 findings, 2 degraded (incomplete analysis;\n"
    "wins over 1), 3 fatal (usage, unreadable input, --fail-fast)\n";

/** Parsed command line: one mode plus cross-cutting options. */
struct CliOptions
{
    enum class Mode
    {
        Help,
        Version,
        List,
        Protocol,
        EmitCorpus,
        Metal,
        Files,
        /** Serve check_units batches on stdin/stdout (internal). */
        ShardWorker,
    };

    Mode mode = Mode::Files;
    std::string protocol;
    std::string emit_dir;
    std::string metal_path;
    std::vector<std::string> files;
    std::string metrics_path;
    std::string trace_path;
    /** Attach witness paths (provenance) to findings. */
    bool witness = false;
    /** Witness step/block cap; 0 = the built-in default. */
    unsigned long witness_limit = 0;
    /** Run-ledger JSONL path; empty = ledger off. */
    std::string ledger_path;
    support::OutputFormat format = support::OutputFormat::Text;
    /** Checking concurrency; 0 = one lane per hardware thread. */
    unsigned jobs = 0;
    /** Analysis cache directory; empty = caching off. */
    std::string cache_dir;
    bool cache_readonly = false;
    /** Cache size cap in MiB enforced after the run; 0 = unlimited. */
    unsigned long cache_limit_mb = 0;
    /** Per-unit wall-clock budget in ms; 0 = unlimited. */
    unsigned long unit_timeout_ms = 0;
    /** Per-unit path-walker step budget; 0 = unlimited. */
    unsigned long unit_max_steps = 0;
    /** Path-feasibility pruning strategy for every checker's walks. */
    metal::PruneStrategy prune_strategy = metal::PruneStrategy::Off;
    /** SM matching strategy (both produce identical bytes). */
    metal::MatchStrategy match_strategy = metal::MatchStrategy::Table;
    /** Abort on the first contained unit failure instead of degrading. */
    bool fail_fast = false;
    /** Fault-injection spec ("site:n"); empty = use the env var only. */
    std::string inject_fault;
    /** Shard worker processes; 0 = in-process checking. */
    unsigned shards = 0;
    /** Units per shard work batch. */
    unsigned long shard_batch_units = 16;
    /** Per-batch wall-clock deadline in ms (0 = none). */
    unsigned long shard_batch_timeout_ms = 0;
    /** Worker respawn backoff base in ms. */
    unsigned long shard_backoff_ms = 50;
};

/** Print `what` plus usage to stderr; used for every CLI error. */
int
usageError(const std::string& what)
{
    std::cerr << "mccheck: " << what << '\n' << kUsage;
    return 3;
}

/**
 * Parse a whole-string decimal count for `flag` into `out`. Reports
 * exactly why a value was rejected — the stoul failure modes
 * (non-numeric, out of range) used to be swallowed by a bare catch and
 * surfaced as a generic usage error.
 */
bool
parseCount(const std::string& flag, const std::string& value,
           unsigned long& out)
{
    std::size_t used = 0;
    try {
        out = std::stoul(value, &used);
    } catch (const std::invalid_argument&) {
        std::cerr << "mccheck: " << flag << ": '" << value
                  << "' is not a number\n";
        return false;
    } catch (const std::out_of_range&) {
        std::cerr << "mccheck: " << flag << ": '" << value
                  << "' is out of range for unsigned long\n";
        return false;
    }
    if (used != value.size()) {
        std::cerr << "mccheck: " << flag << ": trailing characters in '"
                  << value << "'\n";
        return false;
    }
    return true;
}

/**
 * Parse argv into `out`. Returns -1 on success or the exit code to
 * return immediately (usage errors).
 */
int
parseArgs(const std::vector<std::string>& args, CliOptions& out)
{
    auto need_value = [&](std::size_t i, const std::string& flag,
                          std::string& value) -> bool {
        if (i + 1 >= args.size())
            return false;
        value = args[i + 1];
        (void)flag;
        return true;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (arg == "--help" || arg == "-h") {
            out.mode = CliOptions::Mode::Help;
            return -1;
        }
        if (arg == "--version") {
            out.mode = CliOptions::Mode::Version;
            return -1;
        }
        if (arg == "--list") {
            out.mode = CliOptions::Mode::List;
        } else if (arg == "--protocol") {
            if (!need_value(i, arg, out.protocol))
                return usageError("--protocol needs a protocol name");
            out.mode = CliOptions::Mode::Protocol;
            ++i;
        } else if (arg == "--emit-corpus") {
            if (i + 2 >= args.size())
                return usageError(
                    "--emit-corpus needs a protocol name and a directory");
            out.protocol = args[i + 1];
            out.emit_dir = args[i + 2];
            out.mode = CliOptions::Mode::EmitCorpus;
            i += 2;
        } else if (arg == "--metal") {
            if (!need_value(i, arg, out.metal_path))
                return usageError("--metal needs a .metal file");
            out.mode = CliOptions::Mode::Metal;
            ++i;
        } else if (arg == "--metrics") {
            if (!need_value(i, arg, out.metrics_path))
                return usageError("--metrics needs an output path");
            ++i;
        } else if (arg == "--trace") {
            if (!need_value(i, arg, out.trace_path))
                return usageError("--trace needs an output path");
            ++i;
        } else if (arg == "--witness") {
            out.witness = true;
        } else if (arg == "--witness-limit") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--witness-limit needs a step count");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--witness-limit needs a positive step count, "
                    "got '" + value + "'");
            out.witness_limit = parsed;
            ++i;
        } else if (arg == "--ledger") {
            if (!need_value(i, arg, out.ledger_path))
                return usageError("--ledger needs an output path");
            ++i;
        } else if (arg == "--jobs") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--jobs needs a positive thread count");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0 ||
                parsed > 1024)
                return usageError("--jobs needs a thread count in 1..1024, "
                                  "got '" + value + "'");
            out.jobs = static_cast<unsigned>(parsed);
            ++i;
        } else if (arg == "--match-strategy") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError(
                    std::string("--match-strategy needs a value, one of ") +
                    metal::matchStrategyChoices());
            std::optional<metal::MatchStrategy> strategy =
                metal::parseMatchStrategy(value);
            if (!strategy)
                return usageError(
                    std::string("--match-strategy must be one of ") +
                    metal::matchStrategyChoices() + ", got '" + value +
                    "'");
            out.match_strategy = *strategy;
            ++i;
        } else if (arg == "--prune-paths") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--prune-paths needs a value (off, "
                                  "correlated, or constraints)");
            std::optional<metal::PruneStrategy> strategy =
                metal::parsePruneStrategy(value);
            if (!strategy)
                return usageError("--prune-paths must be 'off', "
                                  "'correlated', or 'constraints', got '" +
                                  value + "'");
            out.prune_strategy = *strategy;
            ++i;
        } else if (arg == "--cache") {
            if (!need_value(i, arg, out.cache_dir))
                return usageError("--cache needs a directory");
            ++i;
        } else if (arg == "--cache-readonly") {
            out.cache_readonly = true;
        } else if (arg == "--cache-limit-mb") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--cache-limit-mb needs a size in MiB");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--cache-limit-mb needs a positive size in MiB, "
                    "got '" + value + "'");
            out.cache_limit_mb = parsed;
            ++i;
        } else if (arg == "--unit-timeout-ms") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--unit-timeout-ms needs a duration");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--unit-timeout-ms needs a positive duration in "
                    "milliseconds, got '" + value + "'");
            out.unit_timeout_ms = parsed;
            ++i;
        } else if (arg == "--unit-max-steps") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--unit-max-steps needs a step count");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--unit-max-steps needs a positive step count, "
                    "got '" + value + "'");
            out.unit_max_steps = parsed;
            ++i;
        } else if (arg == "--fail-fast") {
            out.fail_fast = true;
        } else if (arg == "--keep-going") {
            out.fail_fast = false;
        } else if (arg == "--inject-fault") {
            if (!need_value(i, arg, out.inject_fault))
                return usageError("--inject-fault needs a <site>:<n> spec");
            ++i;
        } else if (arg == "--shards") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--shards needs a worker count");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0 ||
                parsed > 64)
                return usageError("--shards needs a worker count in "
                                  "1..64, got '" + value + "'");
            out.shards = static_cast<unsigned>(parsed);
            ++i;
        } else if (arg == "--shard-batch-units") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--shard-batch-units needs a unit count");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0 ||
                parsed > 4096)
                return usageError("--shard-batch-units needs a unit count "
                                  "in 1..4096, got '" + value + "'");
            out.shard_batch_units = parsed;
            ++i;
        } else if (arg == "--shard-batch-timeout-ms") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError(
                    "--shard-batch-timeout-ms needs a duration");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--shard-batch-timeout-ms needs a positive duration "
                    "in milliseconds, got '" + value + "'");
            out.shard_batch_timeout_ms = parsed;
            ++i;
        } else if (arg == "--shard-backoff-ms") {
            std::string value;
            if (!need_value(i, arg, value))
                return usageError("--shard-backoff-ms needs a duration");
            unsigned long parsed = 0;
            if (!parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--shard-backoff-ms needs a positive duration in "
                    "milliseconds, got '" + value + "'");
            out.shard_backoff_ms = parsed;
            ++i;
        } else if (arg == "--shard-worker") {
            out.mode = CliOptions::Mode::ShardWorker;
        } else if (arg == "--format") {
            std::string name;
            if (!need_value(i, arg, name))
                return usageError("--format needs text, json, or sarif");
            if (!support::parseOutputFormat(name, out.format))
                return usageError("unknown format '" + name +
                                  "' (expected text, json, or sarif)");
            ++i;
        } else if (support::startsWith(arg, "-") && arg != "-") {
            return usageError("unknown option '" + arg + "'");
        } else {
            out.files.push_back(arg);
        }
    }
    return -1;
}

int
listProtocols()
{
    for (const corpus::ProtocolProfile& profile : corpus::paperProfiles())
        std::cout << profile.name << '\n';
    return 0;
}

int
emitCorpus(const std::string& name, const std::string& dir)
{
    corpus::GeneratedProtocol gen =
        corpus::generateProtocol(corpus::profileByName(name));
    for (const corpus::GeneratedFile& file : gen.files) {
        std::filesystem::path path =
            std::filesystem::path(dir) / file.name;
        std::filesystem::create_directories(path.parent_path());
        std::ofstream out(path);
        out << file.source;
    }
    std::cout << "wrote " << gen.files.size() << " files ("
              << gen.totalLoc() << " LOC) under " << dir << '\n';
    return 0;
}

/**
 * Absolute path of this executable (for shard worker argv): workers
 * must be respawnable at any point of the run, so the path has to stay
 * valid even if the invoker's argv[0] was relative and the coordinator
 * later changes directory.
 */
std::string
selfExecutable(const std::string& argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0)
        return std::string(buf, static_cast<std::size_t>(n));
    return argv0;
}

/**
 * Serve `check_units` batches for a `--shards` coordinator: one
 * request line in, one response line out, over stdin/stdout (the
 * coordinator's socketpair). A detached-looking heartbeat thread
 * interleaves `{"heartbeat": n}` lines so the supervisor can tell a
 * busy worker from a dead one; both streams share one write mutex so
 * heartbeats never tear a response line.
 */
int
runShardWorker()
{
    // No disk cache and no ledger: the coordinator owns persistent
    // state, workers are disposable by design.
    server::DaemonOptions dopts;
    dopts.default_jobs = 1;
    server::Daemon daemon(dopts);
    std::mutex write_mu;
    std::atomic<bool> done{false};
    std::thread heartbeat([&] {
        std::uint64_t beats = 0;
        while (!done.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(250));
            if (done.load(std::memory_order_acquire))
                break;
            std::lock_guard<std::mutex> lock(write_mu);
            std::cout << "{\"heartbeat\": " << ++beats << "}\n"
                      << std::flush;
        }
    });
    std::string line;
    while (std::getline(std::cin, line)) {
        const std::string response = daemon.handleRequestLine(line);
        {
            std::lock_guard<std::mutex> lock(write_mu);
            std::cout << response << '\n' << std::flush;
        }
        if (daemon.shutdownRequested())
            break;
    }
    done.store(true, std::memory_order_release);
    heartbeat.join();
    return 0;
}

/** The checking-mode portion of the CLI as one engine request. */
server::CheckRequest
toCheckRequest(const CliOptions& opts, const std::string& self_exe)
{
    server::CheckRequest req;
    switch (opts.mode) {
      case CliOptions::Mode::Protocol:
        req.mode = server::CheckRequest::Mode::Protocol;
        break;
      case CliOptions::Mode::Metal:
        req.mode = server::CheckRequest::Mode::Metal;
        break;
      default:
        req.mode = server::CheckRequest::Mode::Files;
        break;
    }
    req.protocol = opts.protocol;
    req.metal_path = opts.metal_path;
    req.files = opts.files;
    req.format = opts.format;
    req.jobs = opts.jobs;
    req.prune_strategy = opts.prune_strategy;
    req.unit_timeout_ms = opts.unit_timeout_ms;
    req.unit_max_steps = opts.unit_max_steps;
    req.fail_fast = opts.fail_fast;
    req.witness = opts.witness;
    req.witness_limit = static_cast<unsigned>(opts.witness_limit);
    req.match_strategy = opts.match_strategy;
    req.shards = opts.shards;
    req.shard_batch_units = opts.shard_batch_units;
    req.shard_batch_timeout_ms = opts.shard_batch_timeout_ms;
    req.shard_backoff_ms = opts.shard_backoff_ms;
    if (opts.shards > 0) {
        req.shard_worker_argv = {self_exe, "--shard-worker"};
        // The MCCHECK_FAULT_INJECT environment variable is inherited by
        // forked workers automatically; the CLI flag must be forwarded
        // explicitly so both arming paths reach worker probe sites.
        if (!opts.inject_fault.empty()) {
            req.shard_worker_argv.push_back("--inject-fault");
            req.shard_worker_argv.push_back(opts.inject_fault);
        }
    }
    return req;
}

/** Write metrics / trace reports if requested. Returns false on I/O error. */
bool
writeObservabilityOutputs(const CliOptions& opts)
{
    bool ok = true;
    if (!opts.metrics_path.empty()) {
        std::ofstream out(opts.metrics_path);
        if (!out) {
            std::cerr << "mccheck: cannot write " << opts.metrics_path
                      << '\n';
            ok = false;
        } else {
            support::MetricsRegistry::global().writeJson(out);
        }
    }
    if (!opts.trace_path.empty()) {
        std::ofstream out(opts.trace_path);
        if (!out) {
            std::cerr << "mccheck: cannot write " << opts.trace_path
                      << '\n';
            ok = false;
        } else {
            support::TraceRecorder::global().writeJson(out);
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        std::cerr << kUsage;
        return 3;
    }

    CliOptions opts;
    if (int rc = parseArgs(args, opts); rc >= 0)
        return rc;

    // Arm fault injection before any probe site can run. The CLI flag
    // wins over the environment variable.
    if (!opts.inject_fault.empty()) {
        if (!support::fault::arm(opts.inject_fault))
            return usageError(
                "--inject-fault needs <site>:<n> with n >= 1, got '" +
                opts.inject_fault +
                "' (or this build has MCHECK_FAULT_INJECTION off)");
    } else {
        support::fault::armFromEnv();
    }

    if (opts.mode == CliOptions::Mode::Help) {
        std::cout << kUsage;
        return 0;
    }
    if (opts.mode == CliOptions::Mode::ShardWorker)
        return runShardWorker();
    if (opts.shards > 0 && opts.mode == CliOptions::Mode::Metal)
        return usageError("--shards supports --protocol and file "
                          "checking only");
    if (opts.mode == CliOptions::Mode::Version) {
        std::cout << support::kToolName << ' ' << support::kToolVersion
                  << '\n';
        return 0;
    }

    if (!opts.metrics_path.empty())
        support::MetricsRegistry::global().setEnabled(true);
    if (!opts.trace_path.empty())
        support::TraceRecorder::global().setEnabled(true);
    // Installed here so the ledger manifest reads the effective limit;
    // runCheckRequest re-installs the same values per run.
    support::setWitnessConfig(opts.witness,
                              static_cast<unsigned>(opts.witness_limit));
    if (!opts.ledger_path.empty()) {
        support::RunLedger& ledger = support::RunLedger::global();
        if (!ledger.open(opts.ledger_path)) {
            std::cerr << "mccheck: cannot write " << opts.ledger_path
                      << '\n';
            return 3;
        }
        ledger.runStart(args, opts.witness, support::witnessLimit(),
                        opts.jobs);
    }

    // The cache touches stderr only: findings on stdout must stay
    // byte-identical between cold and warm runs.
    std::unique_ptr<cache::AnalysisCache> cache;
    if (!opts.cache_dir.empty()) {
        try {
            cache = std::make_unique<cache::AnalysisCache>(
                opts.cache_dir, opts.cache_readonly);
        } catch (const std::exception& e) {
            std::cerr << "mccheck: " << e.what() << '\n';
            return 3;
        }
    }

    try {
        int rc = 0;
        int run_errors = 0;
        int run_warnings = 0;
        switch (opts.mode) {
          case CliOptions::Mode::List:
            rc = listProtocols();
            break;
          case CliOptions::Mode::EmitCorpus:
            rc = emitCorpus(opts.protocol, opts.emit_dir);
            break;
          case CliOptions::Mode::Metal:
          case CliOptions::Mode::Files:
            if (opts.files.empty())
                return usageError(opts.mode == CliOptions::Mode::Metal
                                      ? "--metal needs source files to "
                                        "check"
                                      : "no input files");
            [[fallthrough]];
          case CliOptions::Mode::Protocol: {
            // Batch = the shared pipeline against fresh state: no
            // resident snapshots, reads straight from disk.
            const server::CheckOutcome outcome = server::runCheckRequest(
                toCheckRequest(opts, selfExecutable(argv[0])),
                cache.get(), /*resident=*/nullptr, std::cout, std::cerr);
            rc = outcome.exit_code;
            run_errors = outcome.errors;
            run_warnings = outcome.warnings;
            break;
          }
          case CliOptions::Mode::Help:
          case CliOptions::Mode::Version:
          case CliOptions::Mode::ShardWorker:
            break;
        }
        if (cache) {
            if (opts.cache_limit_mb > 0)
                cache->trim(opts.cache_limit_mb * 1024ull * 1024ull);
            for (const std::string& warning : cache->takeWarnings())
                std::cerr << "mccheck: cache: " << warning << '\n';
            const cache::CacheStats cs = cache->stats();
            std::cerr << "mccheck: cache: " << cs.hits << " hit(s), "
                      << cs.misses << " miss(es), " << cs.stores
                      << " stored, " << cs.evictions << " evicted\n";
        }
        if (!writeObservabilityOutputs(opts))
            rc = 3;
        support::RunLedger::global().runEnd(rc, run_errors,
                                            run_warnings);
        return rc;
    } catch (const std::exception& e) {
        // Anything that escapes containment — including fault-injection
        // probes outside any run — is fatal.
        std::cerr << "mccheck: " << e.what() << '\n';
        return 3;
    }
}
