# Determinism harness: run mccheck twice with different --jobs values and
# require byte-identical stdout and matching exit codes.
#
# Usage:
#   cmake -DMCCHECK=<path> -DPROTOCOL=<name> -DFORMAT=<json|sarif>
#         -P compare_jobs.cmake
#
# The corpus protocols carry intentional bugs, so mccheck exits 1
# (findings); the harness only requires the two runs to agree.
foreach(var MCCHECK PROTOCOL FORMAT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "compare_jobs.cmake: -D${var}=... is required")
    endif()
endforeach()

execute_process(
    COMMAND ${MCCHECK} --protocol ${PROTOCOL} --format ${FORMAT} --jobs 1
    OUTPUT_VARIABLE out_seq
    ERROR_VARIABLE err_seq
    RESULT_VARIABLE rc_seq)
execute_process(
    COMMAND ${MCCHECK} --protocol ${PROTOCOL} --format ${FORMAT} --jobs 4
    OUTPUT_VARIABLE out_par
    ERROR_VARIABLE err_par
    RESULT_VARIABLE rc_par)

if(NOT rc_seq EQUAL rc_par)
    message(FATAL_ERROR
        "exit codes differ for ${PROTOCOL} (${FORMAT}): "
        "--jobs 1 -> ${rc_seq}, --jobs 4 -> ${rc_par}\n"
        "stderr(jobs=1): ${err_seq}\nstderr(jobs=4): ${err_par}")
endif()
if(NOT out_seq STREQUAL out_par)
    message(FATAL_ERROR
        "stdout differs between --jobs 1 and --jobs 4 for "
        "${PROTOCOL} (${FORMAT}); the engine's deterministic-output "
        "guarantee is broken")
endif()
if(out_seq STREQUAL "")
    message(FATAL_ERROR
        "mccheck produced no output for ${PROTOCOL} (${FORMAT}); "
        "the comparison is vacuous (rc=${rc_seq}, stderr: ${err_seq})")
endif()
message(STATUS
    "${PROTOCOL} (${FORMAT}): --jobs 1 and --jobs 4 agree byte-for-byte")
