# Daemon-vs-batch differential guarantee: a `check` response from a
# long-lived mccheckd must carry the exact bytes a cold batch mccheck
# run would put on stdout for the same inputs — on the first request,
# on warm re-checks served from resident state, and after an on-disk
# edit that invalidates a single unit's fingerprints.
#
# The assertions themselves live in tools/daemon_differential.py (it
# needs one daemon process spanning several requests, which a sequence
# of execute_process calls cannot model); this script validates the
# parameters, scrubs the workdir, runs the harness, and surfaces its
# diagnostics through the usual FATAL_ERROR channel.
#
# Usage:
#   cmake -DMCCHECK=<path> -DMCCHECKD=<path> -DHARNESS=<path to
#         daemon_differential.py> -DMODE=<protocol|files|edit>
#         -DPROTOCOL=<name> -DFORMAT=<text|json|sarif>
#         -DWORKDIR=<scratch dir> [-DPYTHON=<python3>]
#         -P compare_daemon.cmake

foreach(var MCCHECK MCCHECKD HARNESS MODE PROTOCOL FORMAT WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "compare_daemon.cmake: -D${var}=... is required")
    endif()
endforeach()

if(NOT DEFINED PYTHON)
    find_program(PYTHON python3)
    if(NOT PYTHON)
        message(FATAL_ERROR "compare_daemon.cmake: python3 not found; "
                            "pass -DPYTHON=<interpreter>")
    endif()
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
    COMMAND "${PYTHON}" "${HARNESS}"
            --mccheck "${MCCHECK}" --mccheckd "${MCCHECKD}"
            --workdir "${WORKDIR}" --mode "${MODE}"
            --protocol "${PROTOCOL}" --format "${FORMAT}"
    OUTPUT_VARIABLE harness_out
    ERROR_VARIABLE harness_err
    RESULT_VARIABLE harness_rc)

if(NOT harness_rc EQUAL 0)
    message(FATAL_ERROR
        "compare_daemon.cmake[${MODE} ${PROTOCOL} ${FORMAT}]: daemon and "
        "batch disagree (rc ${harness_rc})\nstdout:\n${harness_out}\n"
        "stderr:\n${harness_err}")
endif()

message(STATUS "${harness_out}")
