# Sharded-checking differential guarantee: `mccheck --shards N` must put
# the exact bytes on stdout that the in-process run produces, at every
# shard count — and keep doing so while workers are being crashed, hung,
# or failed at merge time by injected faults.
#
# Clean mode (no -DFAULT): a plain run (no --shards) is the baseline;
# --shards 1, 2 and 4 must match it byte-for-byte with the same exit
# code.
#
# Fault mode (-DFAULT=<site:n>): every shard count in SHARDS runs with
# the fault armed (and --shard-backoff-ms 1 so retries don't stall the
# test); all runs must agree byte-for-byte with the first, and each must
# exit with EXPECT_RC (2 = degraded: the poisoned units quarantined into
# engine.unit-failure warnings). There is no unsharded baseline here —
# worker.* faults only exist across the process boundary — but the clean
# tests already pin the sharded bytes to the in-process bytes, so
# agreement among fault runs proves containment is deterministic too.
#
# Usage:
#   cmake -DMCCHECK=<path> -DPROTOCOL=<name> -DFORMAT=<text|json|sarif>
#         -DWORKDIR=<scratch dir> [-DMODE=protocol]
#         [-DFAULT=<site:n>] [-DEXPECT_RC=<n>] [-DSHARDS=2,4]
#         [-DBATCH_TIMEOUT_MS=<ms>] [-DBATCH_UNITS=<n>]
#         -P compare_shards.cmake
#
# Text output in protocol mode carries a wall-clock stats table, so text
# comparisons belong in file mode (MODE=files, the default), same as the
# cache and daemon harnesses.
foreach(var MCCHECK PROTOCOL FORMAT WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "compare_shards.cmake: -D${var}=... is required")
    endif()
endforeach()
if(NOT DEFINED MODE)
    set(MODE files)
endif()
if(NOT DEFINED SHARDS)
    if(DEFINED FAULT)
        set(SHARDS "2,4")
    else()
        set(SHARDS "1,2,4")
    endif()
endif()
string(REPLACE "," ";" shard_counts "${SHARDS}")

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

if(MODE STREQUAL "protocol")
    set(check_args --protocol ${PROTOCOL})
else()
    execute_process(
        COMMAND ${MCCHECK} --emit-corpus ${PROTOCOL} ${WORKDIR}/corpus
        RESULT_VARIABLE rc_emit
        ERROR_VARIABLE err_emit)
    if(NOT rc_emit EQUAL 0)
        message(FATAL_ERROR
            "--emit-corpus ${PROTOCOL} failed (rc=${rc_emit}): ${err_emit}")
    endif()
    file(GLOB_RECURSE sources ${WORKDIR}/corpus/*.c)
    list(SORT sources)
    list(LENGTH sources nsources)
    if(nsources EQUAL 0)
        message(FATAL_ERROR "--emit-corpus ${PROTOCOL} wrote no .c files")
    endif()
    set(check_args ${sources})
endif()

set(fault_args)
if(DEFINED FAULT)
    list(APPEND fault_args --inject-fault ${FAULT} --shard-backoff-ms 1)
endif()
if(DEFINED BATCH_TIMEOUT_MS)
    list(APPEND fault_args --shard-batch-timeout-ms ${BATCH_TIMEOUT_MS})
endif()
if(DEFINED BATCH_UNITS)
    list(APPEND fault_args --shard-batch-units ${BATCH_UNITS})
endif()

# run(<tag> <extra args...>): one mccheck invocation capturing
# out_<tag>/err_<tag>/rc_<tag> into the parent scope.
function(run tag)
    execute_process(
        COMMAND ${MCCHECK} ${check_args} --format ${FORMAT}
                ${fault_args} ${ARGN}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    set(out_${tag} "${out}" PARENT_SCOPE)
    set(err_${tag} "${err}" PARENT_SCOPE)
    set(rc_${tag} "${rc}" PARENT_SCOPE)
endfunction()

if(DEFINED FAULT)
    list(GET shard_counts 0 base_shards)
    set(base_tag s${base_shards})
else()
    run(plain)
    if(out_plain STREQUAL "")
        message(FATAL_ERROR
            "plain run produced no stdout for ${PROTOCOL} (${FORMAT}); the "
            "comparison is vacuous (rc=${rc_plain}, stderr: ${err_plain})")
    endif()
    set(base_tag plain)
endif()

foreach(n IN LISTS shard_counts)
    run(s${n} --shards ${n})
endforeach()

if(DEFINED FAULT AND out_${base_tag} STREQUAL "")
    message(FATAL_ERROR
        "--shards ${base_shards} under ${FAULT} produced no stdout for "
        "${PROTOCOL} (${FORMAT}); the comparison is vacuous "
        "(rc=${rc_${base_tag}}, stderr: ${err_${base_tag}})")
endif()

foreach(n IN LISTS shard_counts)
    if(DEFINED EXPECT_RC)
        if(NOT rc_s${n} EQUAL ${EXPECT_RC})
            message(FATAL_ERROR
                "--shards ${n} under ${FAULT} exited ${rc_s${n}}, expected "
                "${EXPECT_RC} for ${PROTOCOL} (${FORMAT})\n"
                "stderr: ${err_s${n}}")
        endif()
    endif()
    if(NOT rc_${base_tag} EQUAL rc_s${n})
        message(FATAL_ERROR
            "exit codes differ for ${PROTOCOL} (${FORMAT}): ${base_tag} -> "
            "${rc_${base_tag}}, --shards ${n} -> ${rc_s${n}}\n"
            "stderr(s${n}): ${err_s${n}}")
    endif()
    if(NOT out_${base_tag} STREQUAL out_s${n})
        message(FATAL_ERROR
            "stdout differs between the ${base_tag} run and --shards ${n} "
            "for ${PROTOCOL} (${FORMAT}); the sharded merge's "
            "byte-identical guarantee is broken")
    endif()
endforeach()

if(DEFINED FAULT)
    message(STATUS
        "${PROTOCOL} (${FORMAT}) under ${FAULT}: shards ${SHARDS} agree "
        "byte-for-byte at exit ${rc_${base_tag}}")
else()
    message(STATUS
        "${PROTOCOL} (${FORMAT}): plain vs shards ${SHARDS} agree "
        "byte-for-byte")
endif()
