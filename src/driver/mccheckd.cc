/**
 * @file
 * mccheckd — the long-lived checking daemon.
 *
 * Speaks the line-delimited JSON protocol documented in
 * src/server/protocol.h and docs/daemon.md: `check` requests run the
 * exact batch pipeline (identical output bytes to `mccheck`), while
 * parsed programs, CFGs, compiled metal state machines, and per-unit
 * analysis results stay resident between requests so an edit/re-check
 * cycle only pays for what actually changed.
 *
 * Transports:
 *     mccheckd                     serve stdin/stdout (one client)
 *     mccheckd --socket <path>     serve a Unix domain socket, one
 *                                  connection at a time, until a
 *                                  `shutdown` request arrives
 *
 * Options:
 *     --jobs <n>               default --jobs for check requests
 *     --cache <dir>            persistent analysis cache (default: a
 *                              process-resident in-memory cache)
 *     --cache-readonly         consult the cache but never write it
 *     --cache-limit-mb <n>     evict oldest entries past n MiB after
 *                              each check request
 *     --ledger <out.jsonl>     append run_start, per-request `request`
 *                              events, per-unit events, and run_end
 *     --metrics <out.json>     write the MetricsRegistry report
 *                              (server.* counters included) at exit
 *     --max-request-bytes <n>  reject longer request lines (-32001)
 *     --max-in-flight <n>      reject check requests beyond n queued
 *                              or running (-32002); default 8
 *     --inject-fault <site:n>  arm a fault-injection probe (testing;
 *                              also via MCCHECK_FAULT_INJECT)
 *
 * Exit code 0 after a clean shutdown or EOF; 3 on startup failures.
 * Per-request outcomes (including check exit codes) travel in
 * responses, never in the process exit code.
 */
#include "server/daemon.h"
#include "support/fault_injection.h"
#include "support/metrics.h"
#include "support/run_ledger.h"
#include "support/version.h"
#include "support/witness.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace {

using namespace mc;

const char* const kUsage =
    "usage: mccheckd [options]\n"
    "       mccheckd [options] --socket <path>\n"
    "\n"
    "Serve mccheck requests over line-delimited JSON (stdin/stdout by\n"
    "default, a Unix domain socket with --socket). See docs/daemon.md.\n"
    "\n"
    "options:\n"
    "  --jobs <n>               default --jobs for check requests\n"
    "  --cache <dir>            persistent analysis cache directory\n"
    "                           (default: in-memory, process lifetime)\n"
    "  --cache-readonly         read the cache but never write it\n"
    "  --cache-limit-mb <n>     evict oldest entries past n MiB after\n"
    "                           each check request\n"
    "  --ledger <out.jsonl>     append request + unit events (see\n"
    "                           tools/ledger_schema.json)\n"
    "  --metrics <out.json>     write the metrics report at exit\n"
    "  --max-request-bytes <n>  reject longer request lines\n"
    "  --max-in-flight <n>      reject check requests beyond n in\n"
    "                           flight (default 8)\n"
    "  --inject-fault <site:n>  arm a fault-injection probe (testing)\n"
    "  --help                   show this help\n"
    "  --version                print version and exit\n";

struct DaemonCli
{
    server::DaemonOptions options;
    std::string socket_path;
    std::string ledger_path;
    std::string metrics_path;
    std::string inject_fault;
    bool help = false;
    bool version = false;
};

/**
 * Graceful SIGTERM/SIGINT shutdown. The handler does only
 * async-signal-safe work: set the flag, ask the daemon to stop (one
 * atomic store). The serve loops notice — accept()/read() return EINTR
 * because the handlers install *without* SA_RESTART — and unwind
 * through the normal exit path, which flushes the ledger `run_end` and
 * the resident cache statistics a hard kill would lose.
 */
volatile std::sig_atomic_t g_signal = 0;
server::Daemon* g_daemon = nullptr;

void
onShutdownSignal(int sig)
{
    g_signal = sig;
    if (g_daemon)
        g_daemon->requestShutdown();
}

void
installShutdownHandlers()
{
    struct sigaction sa
    {
    };
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: blocked reads must wake up
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

int
usageError(const std::string& what)
{
    std::cerr << "mccheckd: " << what << '\n' << kUsage;
    return 3;
}

bool
parseCount(const std::string& flag, const std::string& value,
           unsigned long& out)
{
    std::size_t used = 0;
    try {
        out = std::stoul(value, &used);
    } catch (const std::exception&) {
        std::cerr << "mccheckd: " << flag << ": '" << value
                  << "' is not a valid count\n";
        return false;
    }
    if (used != value.size()) {
        std::cerr << "mccheckd: " << flag << ": trailing characters in '"
                  << value << "'\n";
        return false;
    }
    return true;
}

/** Returns -1 on success or the exit code to return immediately. */
int
parseArgs(const std::vector<std::string>& args, DaemonCli& out)
{
    auto need_value = [&](std::size_t i, std::string& value) -> bool {
        if (i + 1 >= args.size())
            return false;
        value = args[i + 1];
        return true;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (arg == "--help" || arg == "-h") {
            out.help = true;
            return -1;
        }
        if (arg == "--version") {
            out.version = true;
            return -1;
        }
        if (arg == "--socket") {
            if (!need_value(i, out.socket_path))
                return usageError("--socket needs a path");
            ++i;
        } else if (arg == "--jobs") {
            std::string value;
            unsigned long parsed = 0;
            if (!need_value(i, value) ||
                !parseCount(arg, value, parsed) || parsed == 0 ||
                parsed > 1024)
                return usageError(
                    "--jobs needs a thread count in 1..1024");
            out.options.default_jobs = static_cast<unsigned>(parsed);
            ++i;
        } else if (arg == "--cache") {
            if (!need_value(i, out.options.cache_dir))
                return usageError("--cache needs a directory");
            ++i;
        } else if (arg == "--cache-readonly") {
            out.options.cache_readonly = true;
        } else if (arg == "--cache-limit-mb") {
            std::string value;
            unsigned long parsed = 0;
            if (!need_value(i, value) ||
                !parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--cache-limit-mb needs a positive size in MiB");
            out.options.cache_limit_mb = parsed;
            ++i;
        } else if (arg == "--ledger") {
            if (!need_value(i, out.ledger_path))
                return usageError("--ledger needs an output path");
            ++i;
        } else if (arg == "--metrics") {
            if (!need_value(i, out.metrics_path))
                return usageError("--metrics needs an output path");
            ++i;
        } else if (arg == "--max-request-bytes") {
            std::string value;
            unsigned long parsed = 0;
            if (!need_value(i, value) ||
                !parseCount(arg, value, parsed) || parsed == 0)
                return usageError(
                    "--max-request-bytes needs a positive byte count");
            out.options.max_request_bytes = parsed;
            ++i;
        } else if (arg == "--max-in-flight") {
            std::string value;
            unsigned long parsed = 0;
            if (!need_value(i, value) || !parseCount(arg, value, parsed))
                return usageError("--max-in-flight needs a count");
            out.options.max_in_flight = static_cast<unsigned>(parsed);
            ++i;
        } else if (arg == "--inject-fault") {
            if (!need_value(i, out.inject_fault))
                return usageError(
                    "--inject-fault needs a <site>:<n> spec");
            ++i;
        } else {
            return usageError("unknown option '" + arg + "'");
        }
    }
    return -1;
}

/**
 * Serve one established connection: split the byte stream into lines,
 * answer each. A disconnect mid-request (or mid-response) just ends the
 * connection — the daemon state it never reached stays consistent, and
 * the next connection gets a healthy server.
 */
void
serveConnection(server::Daemon& daemon, int fd,
                std::size_t max_request_bytes)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0 && errno == EINTR) {
            if (daemon.shutdownRequested())
                return;
            continue;
        }
        if (n <= 0)
            return;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        std::size_t nl;
        while ((nl = buffer.find('\n', start)) != std::string::npos) {
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.find_first_not_of(" \t") == std::string::npos)
                continue;
            std::string response = daemon.handleRequestLine(line);
            response += '\n';
            std::size_t off = 0;
            while (off < response.size()) {
                ssize_t w = ::write(fd, response.data() + off,
                                    response.size() - off);
                if (w < 0 && errno == EINTR)
                    continue;
                if (w <= 0)
                    return;
                off += static_cast<std::size_t>(w);
            }
            if (daemon.shutdownRequested())
                return;
        }
        buffer.erase(0, start);
        // A line that outgrows the request bound before its newline
        // arrives would otherwise buffer without limit; cut the
        // connection instead (the size bound itself is enforced, with a
        // structured error, on complete lines).
        if (buffer.size() > max_request_bytes + 1)
            return;
    }
}

int
serveSocket(server::Daemon& daemon, const std::string& path,
            std::size_t max_request_bytes)
{
    ::signal(SIGPIPE, SIG_IGN);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::cerr << "mccheckd: socket path too long: " << path << '\n';
        return 3;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::cerr << "mccheckd: socket: " << std::strerror(errno) << '\n';
        return 3;
    }
    ::unlink(path.c_str());
    if (::bind(listener, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listener, 8) < 0) {
        std::cerr << "mccheckd: cannot listen on " << path << ": "
                  << std::strerror(errno) << '\n';
        ::close(listener);
        return 3;
    }
    // The readiness line clients wait for before connecting.
    std::cerr << "mccheckd: listening on " << path << '\n' << std::flush;
    while (!daemon.shutdownRequested()) {
        int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            std::cerr << "mccheckd: accept: " << std::strerror(errno)
                      << '\n';
            break;
        }
        serveConnection(daemon, fd, max_request_bytes);
        ::close(fd);
    }
    ::close(listener);
    ::unlink(path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    DaemonCli cli;
    if (int rc = parseArgs(args, cli); rc >= 0)
        return rc;
    if (cli.help) {
        std::cout << kUsage;
        return 0;
    }
    if (cli.version) {
        std::cout << "mccheckd " << support::kToolVersion << '\n';
        return 0;
    }

    if (!cli.inject_fault.empty()) {
        if (!support::fault::arm(cli.inject_fault))
            return usageError(
                "--inject-fault needs <site>:<n> with n >= 1, got '" +
                cli.inject_fault +
                "' (or this build has MCHECK_FAULT_INJECTION off)");
    } else {
        support::fault::armFromEnv();
    }

    if (!cli.metrics_path.empty())
        support::MetricsRegistry::global().setEnabled(true);
    if (!cli.ledger_path.empty()) {
        support::RunLedger& ledger = support::RunLedger::global();
        if (!ledger.open(cli.ledger_path)) {
            std::cerr << "mccheckd: cannot write " << cli.ledger_path
                      << '\n';
            return 3;
        }
        ledger.runStart(args, support::witnessEnabled(),
                        support::witnessLimit(),
                        cli.options.default_jobs);
    }

    int rc = 0;
    try {
        server::Daemon daemon(cli.options);
        g_daemon = &daemon;
        installShutdownHandlers();
        rc = cli.socket_path.empty()
                 ? daemon.serveStream(std::cin, std::cout)
                 : serveSocket(daemon, cli.socket_path,
                               cli.options.max_request_bytes);
        if (g_signal != 0) {
            const cache::CacheStats cs = daemon.cache().stats();
            std::cerr << "mccheckd: caught "
                      << (g_signal == SIGTERM ? "SIGTERM" : "SIGINT")
                      << ", shutting down\n"
                      << "mccheckd: cache: " << cs.hits << " hit(s), "
                      << cs.misses << " miss(es), " << cs.stores
                      << " stored, " << cs.evictions << " evicted\n";
        }
        g_daemon = nullptr;
    } catch (const std::exception& e) {
        g_daemon = nullptr;
        std::cerr << "mccheckd: " << e.what() << '\n';
        rc = 3;
    }

    if (!cli.metrics_path.empty()) {
        std::ofstream out(cli.metrics_path);
        if (!out) {
            std::cerr << "mccheckd: cannot write " << cli.metrics_path
                      << '\n';
            rc = 3;
        } else {
            support::MetricsRegistry::global().writeJson(out);
        }
    }
    support::RunLedger::global().runEnd(rc, 0, 0);
    return rc;
}
