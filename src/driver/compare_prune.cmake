# Pruning-strategy determinism harness. For every --prune-paths strategy:
#
#   1. JSON output must be byte-identical between --jobs 1 and --jobs 4.
#   2. A cold cache fill and a warm replay must both produce those same
#      bytes (the unit cache key embeds the strategy, so strategies can
#      share one cache directory without cross-talk).
#   3. With -DGOLDEN=<file>, the 'off' strategy's bytes must equal the
#      committed seed golden: pruning lands without perturbing the
#      paper-faithful configuration at all.
#
# Usage:
#   cmake -DMCCHECK=<path> -DPROTOCOL=<name> -DWORKDIR=<dir>
#         [-DGOLDEN=<file>] -P compare_prune.cmake
foreach(var MCCHECK PROTOCOL WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "compare_prune.cmake: -D${var}=... is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

foreach(strategy off correlated constraints)
    execute_process(
        COMMAND ${MCCHECK} --protocol ${PROTOCOL} --format json
                --prune-paths ${strategy} --jobs 1
        OUTPUT_VARIABLE out_j1
        ERROR_VARIABLE err_j1
        RESULT_VARIABLE rc_j1)
    execute_process(
        COMMAND ${MCCHECK} --protocol ${PROTOCOL} --format json
                --prune-paths ${strategy} --jobs 4
        OUTPUT_VARIABLE out_j4
        RESULT_VARIABLE rc_j4)
    if(NOT rc_j1 EQUAL rc_j4)
        message(FATAL_ERROR
            "exit codes differ for ${PROTOCOL} --prune-paths ${strategy}: "
            "--jobs 1 -> ${rc_j1}, --jobs 4 -> ${rc_j4}\n"
            "stderr(jobs=1): ${err_j1}")
    endif()
    if(NOT out_j1 STREQUAL out_j4)
        message(FATAL_ERROR
            "stdout differs between --jobs 1 and --jobs 4 for "
            "${PROTOCOL} --prune-paths ${strategy}")
    endif()
    if(out_j1 STREQUAL "")
        message(FATAL_ERROR
            "mccheck produced no output for ${PROTOCOL} "
            "--prune-paths ${strategy} (rc=${rc_j1}, stderr: ${err_j1})")
    endif()

    # Cold fill, then warm replay, against one shared cache directory.
    execute_process(
        COMMAND ${MCCHECK} --protocol ${PROTOCOL} --format json
                --prune-paths ${strategy} --jobs 1
                --cache ${WORKDIR}/cache
        OUTPUT_VARIABLE out_cold
        RESULT_VARIABLE rc_cold)
    execute_process(
        COMMAND ${MCCHECK} --protocol ${PROTOCOL} --format json
                --prune-paths ${strategy} --jobs 4
                --cache ${WORKDIR}/cache
        OUTPUT_VARIABLE out_warm
        ERROR_VARIABLE err_warm
        RESULT_VARIABLE rc_warm)
    if(NOT out_cold STREQUAL out_j1)
        message(FATAL_ERROR
            "cold-cache bytes differ from uncached for ${PROTOCOL} "
            "--prune-paths ${strategy}")
    endif()
    if(NOT out_warm STREQUAL out_j1)
        message(FATAL_ERROR
            "warm-cache bytes differ from uncached for ${PROTOCOL} "
            "--prune-paths ${strategy}")
    endif()
    if(NOT err_warm MATCHES "hit")
        message(FATAL_ERROR
            "warm run reported no cache hits for ${PROTOCOL} "
            "--prune-paths ${strategy}; the comparison is vacuous "
            "(stderr: ${err_warm})")
    endif()

    if(strategy STREQUAL "off" AND DEFINED GOLDEN)
        file(READ ${GOLDEN} golden_bytes)
        if(NOT out_j1 STREQUAL golden_bytes)
            message(FATAL_ERROR
                "--prune-paths off output for ${PROTOCOL} differs from "
                "the committed seed golden ${GOLDEN}; the default "
                "configuration must be byte-identical to the "
                "pre-pruning tool")
        endif()
    endif()
    message(STATUS
        "${PROTOCOL} --prune-paths ${strategy}: jobs 1/4 and cold/warm "
        "cache agree byte-for-byte")
endforeach()
