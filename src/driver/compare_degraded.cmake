# Degraded-run determinism harness: drop a malformed handler into an
# emitted corpus and require that (a) the run exits 2 (degraded), (b) the
# siblings' checker findings still appear alongside the frontend
# diagnostic, and (c) stdout is byte-identical at --jobs 1 and --jobs 4 —
# with and without an armed fault-injection probe. Containment must not
# let scheduling leak into the output.
#
# Usage:
#   cmake -DMCCHECK=<path> -DWORKDIR=<scratch dir>
#         -P compare_degraded.cmake
foreach(var MCCHECK WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR
            "compare_degraded.cmake: -D${var}=... is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(
    COMMAND ${MCCHECK} --emit-corpus bitvector ${WORKDIR}/corpus
    RESULT_VARIABLE rc_emit
    ERROR_VARIABLE err_emit)
if(NOT rc_emit EQUAL 0)
    message(FATAL_ERROR
        "--emit-corpus bitvector failed (rc=${rc_emit}): ${err_emit}")
endif()

# The malformed handler: panic-mode recovery poisons BrokenHandler and
# must keep checking its sibling and every other corpus file.
file(WRITE ${WORKDIR}/corpus/zz_broken_handler.c
    "void BrokenHandler(void) {\n"
    "  if (x {\n"
    "  }\n"
    "}\n"
    "void BrokenSibling(void) { int y = 1; }\n")

file(GLOB_RECURSE sources ${WORKDIR}/corpus/*.c)
list(SORT sources)

# run(<tag> <jobs> [extra mccheck args...])
function(run tag jobs)
    execute_process(
        COMMAND ${MCCHECK} ${sources} --format json --jobs ${jobs} ${ARGN}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 2)
        message(FATAL_ERROR
            "degraded run '${tag}' (jobs=${jobs}): want exit 2, got "
            "${rc}\nstderr: ${err}")
    endif()
    set(out_${tag} "${out}" PARENT_SCOPE)
endfunction()

run(seq 1)
run(par 4)
if(NOT out_seq STREQUAL out_par)
    message(FATAL_ERROR
        "degraded stdout differs between --jobs 1 and --jobs 4; "
        "recovery broke the deterministic-output guarantee")
endif()

# The frontend diagnostic for the poisoned handler must be present...
if(NOT out_seq MATCHES "parse-error")
    message(FATAL_ERROR "no frontend parse-error diagnostic in:\n${out_seq}")
endif()
# ...and so must findings from checkers on the surviving units.
string(REGEX MATCHALL "\"checker\": \"[a-z_]+\"" checkers "${out_seq}")
list(REMOVE_DUPLICATES checkers)
list(FILTER checkers EXCLUDE REGEX "frontend")
if(checkers STREQUAL "")
    message(FATAL_ERROR
        "no sibling checker findings survived the malformed handler; "
        "recovery dropped healthy units:\n${out_seq}")
endif()

# Same bar with a fault armed: the keyed probe fails the same units at
# any job count, so degraded output stays byte-identical.
run(inj_seq 1 --inject-fault checker.unit:3)
run(inj_par 4 --inject-fault checker.unit:3)
if(NOT out_inj_seq STREQUAL out_inj_par)
    message(FATAL_ERROR
        "fault-injected stdout differs between --jobs 1 and --jobs 4; "
        "unit containment is scheduling-dependent")
endif()
if(NOT out_inj_seq MATCHES "unit-failure")
    message(FATAL_ERROR
        "armed checker.unit:3 probe produced no unit-failure marker:\n"
        "${out_inj_seq}")
endif()

message(STATUS
    "degraded runs agree byte-for-byte across job counts, with and "
    "without injected faults")
