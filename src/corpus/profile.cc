#include "corpus/profile.h"

#include <stdexcept>

namespace mc::corpus {

namespace {

std::vector<ProtocolProfile>
buildProfiles()
{
    std::vector<ProtocolProfile> out;

    {
        // Table 1 row: 10386 LOC, 486 paths, 87/563 path length.
        ProtocolProfile p;
        p.name = "bitvector";
        p.seed = 0xb17b17ull << 16 | 0x0001;
        p.target_loc = 10386;
        p.hw_handlers = 100;
        p.sw_handlers = 8;
        p.normal_routines = 60;
        p.giant_handlers = 2;
        p.giant_loc = 550;
        p.passthru_percent = 30;
        p.branches_per_handler = 1;
        p.vars_per_function = 3;
        p.db_reads = 14;
        p.send_segments = 86;
        p.alloc_sites = 17;
        p.dir_segments = 53;
        p.sendwait_pairs = 16;
        p.race_errors = 4;
        p.msglen_errors = 3;
        p.bm_double_free = 2;
        p.bm_minor = 1;
        p.bm_useless_annotations = 1;
        p.lanes_errors = 1;
        p.hooks_missing = 2;
        p.dir_errors = 1;
        p.dir_fp_subroutine = 1;
        p.dir_fp_abstraction = 2;
        p.sendwait_fps = 2;
        out.push_back(p);
    }
    {
        // 18438 LOC, 2322 paths, 135/399.
        ProtocolProfile p;
        p.name = "dyn_ptr";
        p.seed = 0xd12ull << 16 | 0x0002;
        p.target_loc = 18438;
        p.hw_handlers = 140;
        p.sw_handlers = 12;
        p.normal_routines = 75;
        p.giant_handlers = 2;
        p.giant_loc = 390;
        p.passthru_percent = 25;
        p.branches_per_handler = 3;
        p.vars_per_function = 3;
        p.db_reads = 16;
        p.send_segments = 139;
        p.alloc_sites = 19;
        p.dir_segments = 95;
        p.sendwait_pairs = 19;
        p.msglen_errors = 7;
        p.bm_double_free = 2;
        p.bm_minor = 2;
        p.bm_useful_annotations = 3;
        p.bm_useless_annotations = 3;
        p.maybe_free_sites = 4;
        p.lanes_errors = 1;
        p.hooks_missing = 4;
        p.alloc_fps = 2;
        p.dir_fp_subroutine = 4;
        p.dir_fp_speculative = 1;
        p.dir_fp_abstraction = 8;
        p.sendwait_fps = 2;
        out.push_back(p);
    }
    {
        // 11473 LOC, 1051 paths, 73/330.
        ProtocolProfile p;
        p.name = "sci";
        p.seed = 0x5c1ull << 20 | 0x0003;
        p.target_loc = 11473;
        p.hw_handlers = 130;
        p.sw_handlers = 10;
        p.normal_routines = 74;
        p.giant_handlers = 2;
        p.giant_loc = 320;
        p.passthru_percent = 35;
        p.branches_per_handler = 2;
        p.vars_per_function = 4;
        p.db_reads = 2;
        p.send_segments = 148;
        p.alloc_sites = 5;
        p.dir_segments = 22;
        p.sendwait_pairs = 5;
        p.bm_double_free = 2;
        p.bm_leak = 1;
        p.bm_minor = 2;
        p.bm_useful_annotations = 10;
        p.bm_useless_annotations = 10;
        p.maybe_free_sites = 3;
        p.hooks_minor = 3;
        p.dir_fp_abstraction = 1;
        out.push_back(p);
    }
    {
        // 17031 LOC, 1131 paths, 135/244.
        ProtocolProfile p;
        p.name = "coma";
        p.seed = 0xc0aull << 24 | 0x0004;
        p.target_loc = 17031;
        p.hw_handlers = 115;
        p.sw_handlers = 10;
        p.normal_routines = 68;
        p.giant_handlers = 2;
        p.giant_loc = 240;
        p.passthru_percent = 20;
        p.branches_per_handler = 1;
        p.vars_per_function = 3;
        p.db_reads = 0;
        p.send_segments = 147;
        p.alloc_sites = 32;
        p.dir_segments = 165;
        p.sendwait_pairs = 3;
        p.msglen_fp_pairs = 1;
        p.hooks_missing = 3;
        p.dir_fp_subroutine = 5;
        out.push_back(p);
    }
    {
        // 14396 LOC, 1364 paths, 133/516.
        ProtocolProfile p;
        p.name = "rac";
        p.seed = 0x12acull << 20 | 0x0005;
        p.target_loc = 14396;
        p.hw_handlers = 125;
        p.sw_handlers = 10;
        p.normal_routines = 65;
        p.giant_handlers = 2;
        p.giant_loc = 500;
        p.passthru_percent = 25;
        p.branches_per_handler = 2;
        p.vars_per_function = 3;
        p.db_reads = 10;
        p.send_segments = 155;
        p.alloc_sites = 20;
        p.dir_segments = 106;
        p.sendwait_pairs = 17;
        p.msglen_errors = 8;
        p.bm_double_free = 2;
        p.bm_useful_annotations = 2;
        p.bm_useless_annotations = 4;
        p.maybe_free_sites = 3;
        p.hooks_missing = 2;
        p.dir_fp_subroutine = 4;
        p.dir_fp_speculative = 2;
        p.dir_fp_abstraction = 3;
        p.sendwait_fps = 2;
        out.push_back(p);
    }
    {
        // common code: 8783 LOC, 1165 paths, 183/461; 62 routines.
        ProtocolProfile p;
        p.name = "common";
        p.seed = 0xc03ull << 28 | 0x0006;
        p.target_loc = 8783;
        p.hw_handlers = 0;
        p.sw_handlers = 0;
        p.normal_routines = 62;
        p.giant_handlers = 2;
        p.giant_loc = 450;
        p.passthru_percent = 0;
        p.branches_per_handler = 4;
        p.vars_per_function = 6;
        p.db_reads = 17;
        p.send_segments = 35;
        p.alloc_sites = 4;
        p.dir_segments = 0;
        p.sendwait_pairs = 1;
        p.race_fps = 1;
        p.bm_minor = 1;
        p.bm_useful_annotations = 3;
        p.bm_useless_annotations = 7;
        p.maybe_free_sites = 1;
        p.sendwait_fps = 2;
        out.push_back(p);
    }
    return out;
}

} // namespace

const std::vector<ProtocolProfile>&
paperProfiles()
{
    static const std::vector<ProtocolProfile> profiles = buildProfiles();
    return profiles;
}

const ProtocolProfile&
profileByName(const std::string& name)
{
    for (const ProtocolProfile& p : paperProfiles())
        if (p.name == name)
            return p;
    throw std::out_of_range("unknown protocol profile: " + name);
}

} // namespace mc::corpus
