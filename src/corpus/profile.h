#ifndef MCHECK_CORPUS_PROFILE_H
#define MCHECK_CORPUS_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace mc::corpus {

/**
 * Generation profile for one protocol: the structural targets of Table 1
 * plus the per-checker seeding plan of Tables 2-6.
 *
 * The FLASH protocol sources are proprietary; the corpus generator
 * synthesizes protocols with the same structural statistics and exactly
 * the bug/false-positive populations the paper reports, so the benches
 * reproduce the tables mechanically while exercising the real checker
 * code paths (see DESIGN.md, "Substrates").
 */
struct ProtocolProfile
{
    std::string name;
    std::uint64_t seed = 1;

    // ---- Table 1 structural targets -----------------------------------
    int target_loc = 10000;
    int hw_handlers = 80;
    int sw_handlers = 10;
    int normal_routines = 60;
    /** Giant handlers sized near the protocol's max path length. */
    int giant_handlers = 2;
    int giant_loc = 400;
    /** Fraction (percent) of hardware handlers that are tiny pass-thru. */
    int passthru_percent = 30;
    /** Average binary branches per regular handler (drives path counts). */
    int branches_per_handler = 2;
    /** Locals declared per function (drives Table 5's Vars column). */
    int vars_per_function = 3;

    // ---- "Applied" resource quotas ------------------------------------
    int db_reads = 0;       // Table 2
    int send_segments = 0;  // each = len assignment + send (Table 3)
    int alloc_sites = 0;    // Table 6, buffer allocation
    int dir_segments = 0;   // each = LOAD+READ+WRITE+WRITEBACK (Table 6)
    int sendwait_pairs = 0; // each = F_WAIT send + matching wait (Table 6)

    // ---- Seeded bug / FP plan -----------------------------------------
    int race_errors = 0;
    int race_fps = 0;
    int msglen_errors = 0;
    /** Each pair = the coma same-condition shape = 2 false positives. */
    int msglen_fp_pairs = 0;
    int bm_double_free = 0;
    int bm_leak = 0;
    int bm_minor = 0;
    int bm_useful_annotations = 0;
    int bm_useless_annotations = 0;
    /** MAYBE_FREE sites for the Section 6.1 ablation (silent when the
     *  value-sensitivity refinement is on). */
    int maybe_free_sites = 0;
    int lanes_errors = 0;
    int hooks_missing = 0; // Table 5 violations
    int hooks_minor = 0;   // sci's uncounted unimplemented routines
    int alloc_fps = 0;
    int dir_errors = 0;
    int dir_fp_subroutine = 0;
    int dir_fp_speculative = 0;
    int dir_fp_abstraction = 0;
    int sendwait_fps = 0;
};

/**
 * The six profiles of the paper's evaluation: bitvector, dyn_ptr, sci,
 * coma, rac, and the shared common code, with Tables 1-6 encoded.
 */
const std::vector<ProtocolProfile>& paperProfiles();

/** Profile by name; throws std::out_of_range if unknown. */
const ProtocolProfile& profileByName(const std::string& name);

} // namespace mc::corpus

#endif // MCHECK_CORPUS_PROFILE_H
