#ifndef MCHECK_CORPUS_LEDGER_H
#define MCHECK_CORPUS_LEDGER_H

#include "support/diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace mc::corpus {

/** Triage classification of a seeded checker-visible site. */
enum class SeedClass : std::uint8_t
{
    /** A real bug the checker should report (counted in Table 7's 34). */
    Error,
    /**
     * A reported restriction violation that is not counted as a bug —
     * Table 5's hook omissions appear here (Table 7 lists the
     * execution-restriction checker with zero errors).
     */
    Violation,
    /** A report triage would dismiss (the paper's "false positives"). */
    FalsePositive,
    /** Technically a violation, but minor / unreachable (Table 4/5). */
    Minor,
    /** A suppressing annotation that documents a real invariant. */
    UsefulAnnotation,
    /** An annotation needed only because the analysis is imprecise. */
    UselessAnnotation,
};

const char* seedClassName(SeedClass cls);

/** One seeded site the corpus generator planted. */
struct SeededItem
{
    std::string protocol;
    /** Handler (= file basename) the site lives in. */
    std::string handler;
    /** Checker expected to see it (Checker::name()). */
    std::string checker;
    /** Diagnostic rule id expected (empty for annotations). */
    std::string rule;
    SeedClass cls = SeedClass::Error;
    std::string description;
};

/** All sites seeded into one generated protocol. */
class Ledger
{
  public:
    void add(SeededItem item) { items_.push_back(std::move(item)); }

    const std::vector<SeededItem>& items() const { return items_; }

    /** Items for `checker` with class `cls`. */
    int count(const std::string& checker, SeedClass cls) const;

    /** All diagnostic-producing items for `checker` (Error+FP+Minor). */
    int countReports(const std::string& checker) const;

    /** Append another ledger's items (used when linking common code). */
    void merge(const Ledger& other);

  private:
    std::vector<SeededItem> items_;
};

/**
 * Outcome of reconciling a checker run against the ledger: which seeded
 * sites were found, which were missed, and which diagnostics were
 * unexpected (not traceable to any seeded site).
 */
struct Reconciliation
{
    std::vector<const SeededItem*> found;
    std::vector<const SeededItem*> missed;
    std::vector<const support::Diagnostic*> unexpected;

    int foundWithClass(SeedClass cls) const;
};

/**
 * Match diagnostics against the ledger.
 *
 * A diagnostic matches a seeded item when checker, rule, and handler
 * agree; the handler of a diagnostic is derived from its file name via
 * `file_handler` (the generator emits one file per handler). Matching is
 * multiset-aware: two seeded double frees in one handler need two
 * diagnostics.
 */
Reconciliation
reconcile(const Ledger& ledger,
          const std::vector<support::Diagnostic>& diags,
          const std::map<std::int32_t, std::string>& file_handler,
          const std::string& checker);

} // namespace mc::corpus

#endif // MCHECK_CORPUS_LEDGER_H
