#include "corpus/generator.h"

#include "support/rng.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace mc::corpus {

using flash::HandlerKind;
using support::Rng;

namespace {

// -------------------------------------------------------------------------
// Code writer
// -------------------------------------------------------------------------

/** Indented line-oriented source emitter that counts emitted lines. */
class CodeWriter
{
  public:
    void
    line(const std::string& text)
    {
        out_ << std::string(static_cast<std::size_t>(indent_) * 4, ' ')
             << text << '\n';
        ++lines_;
    }

    void
    open(const std::string& head)
    {
        line(head + " {");
        ++indent_;
    }

    void
    close(const std::string& tail = "}")
    {
        --indent_;
        line(tail);
    }

    int lines() const { return lines_; }

    std::string take() { return out_.str(); }

  private:
    std::ostringstream out_;
    int indent_ = 0;
    int lines_ = 0;
};

// -------------------------------------------------------------------------
// Plans
// -------------------------------------------------------------------------

/** The mutations a handler can carry (at most a few per handler). */
enum class SeedKind : std::uint8_t
{
    RaceError,
    RaceFp,
    MsglenError,
    MsglenFpPair,
    BmDoubleFree,
    BmLeak,
    BmMinor,
    BmUseful,
    BmUseless,
    MaybeFree,
    LanesError,
    HookMissing,
    HookMinor,
    AllocFp,
    DirError,
    DirFpSub,
    DirFpSpec,
    DirFpAbs,
    SendWaitFp,
};

struct HandlerPlan
{
    std::string name;
    HandlerKind kind = HandlerKind::Normal;
    bool passthru = false;
    bool giant = false;
    int target_lines = 60;
    int branches = 2;
    int vars = 3;

    int reads = 0;
    int send_segments = 0;
    int dir_segments = 0;
    int alloc_segments = 0;
    int sendwait_segments = 0;
    /** Calls a non-sending recursive helper (fixed-point exercise). */
    bool calls_recursive_helper = false;

    std::vector<SeedKind> seeds;

    bool
    has(SeedKind kind) const
    {
        return std::find(seeds.begin(), seeds.end(), kind) != seeds.end();
    }
};

/** Handler name pieces, combined deterministically. */
const char* const kIfaces[] = {"PI", "NI", "IO"};
const char* const kScopes[] = {"Local", "Remote"};
const char* const kOps[] = {"Get",     "GetX",   "Put",     "PutX",
                            "Inval",   "Ack",    "Nak",     "Upgrade",
                            "WB",      "Replace", "UncRead", "UncWrite",
                            "Sharing", "IORead"};

std::string
handlerName(int index)
{
    int iface = index % 3;
    int scope = (index / 3) % 2;
    int op = (index / 6) % 14;
    int round = index / (3 * 2 * 14);
    std::string name = std::string(kIfaces[iface]) + kScopes[scope] +
                       kOps[op];
    if (round > 0)
        name += std::to_string(round + 1);
    return name;
}

/** Opcodes and the lane each is assigned to. */
const std::pair<const char*, int> kOpcodeLanes[] = {
    {"MSG_GET", 0},   {"MSG_PUT", 1},     {"MSG_ACK", 2},
    {"MSG_NAK", 2},   {"MSG_INVAL", 3},   {"MSG_UPGRADE", 0},
    {"MSG_WB", 1},    {"MSG_IACK", 3},
};
constexpr int kOpcodeCount = 8;

// -------------------------------------------------------------------------
// Emitter
// -------------------------------------------------------------------------

/**
 * Emits one function according to its plan, appending seeded-site records
 * to the ledger and lane-usage counts for the protocol spec.
 */
class FunctionEmitter
{
  public:
    FunctionEmitter(const ProtocolProfile& profile, const HandlerPlan& plan,
                    Rng rng, Ledger& ledger)
        : profile_(profile), plan_(plan), rng_(rng), ledger_(ledger)
    {}

    /** Per-lane NI sends emitted directly in this function. */
    const std::array<int, flash::kLaneCount>& laneSends() const
    {
        return lane_sends_;
    }

    std::string
    emit()
    {
        w_.line("/* " + protoComment() + " */");
        w_.open("void " + plan_.name + "(void)");
        emitHooks();
        if (plan_.has(SeedKind::HookMinor)) {
            // Unimplemented stub: the fatal call is the whole body.
            w_.close();
            return w_.take();
        }
        emitDecls();

        if (plan_.passthru) {
            emitPassthruBody();
            w_.close();
            return w_.take();
        }

        // Work items are spread through the body with filler between
        // them; the writer's line count drives filler volume.
        emitSeededPreamble();
        int items = workItemCount();
        int emitted_items = 0;
        while (emitted_items < items || w_.lines() < plan_.target_lines - 4) {
            if (emitted_items < items) {
                // Space items evenly across the remaining line budget.
                int remaining_lines =
                    plan_.target_lines - 4 - w_.lines();
                int remaining_items = items - emitted_items;
                int filler = remaining_items > 0
                                 ? std::max(0, remaining_lines /
                                                   (remaining_items + 1) -
                                                   8)
                                 : remaining_lines;
                emitFiller(filler);
                emitWorkItem(emitted_items++);
            } else {
                emitFiller(plan_.target_lines - 4 - w_.lines());
                break;
            }
        }
        emitEnding();
        w_.close();
        return w_.take();
    }

  private:
    std::string
    protoComment() const
    {
        return profile_.name + " protocol: " +
               std::string(flash::handlerKindName(plan_.kind)) +
               (plan_.kind == HandlerKind::Normal ? " routine" : " handler");
    }

    void
    seed(const std::string& checker, const std::string& rule,
         SeedClass cls, const std::string& description,
         const std::string& handler_override = "")
    {
        SeededItem item;
        item.protocol = profile_.name;
        item.handler =
            handler_override.empty() ? plan_.name : handler_override;
        item.checker = checker;
        item.rule = rule;
        item.cls = cls;
        item.description = description;
        ledger_.add(item);
    }

    // ---- structural pieces ---------------------------------------------

    void
    emitHooks()
    {
        if (plan_.has(SeedKind::HookMinor)) {
            // Unimplemented routine: no hook, fatal body (sci's three
            // uncounted violations).
            seed("exec_restrict", "missing-hook", SeedClass::Minor,
                 "unimplemented routine without simulation hook");
            w_.line("FATAL_ERROR();");
            return;
        }
        bool skip = plan_.has(SeedKind::HookMissing);
        if (skip)
            seed("exec_restrict", "missing-hook", SeedClass::Violation,
                 "simulation hook omitted");
        switch (plan_.kind) {
          case HandlerKind::Hardware:
            if (!skip) {
                w_.line("HANDLER_DEFS();");
                w_.line("HANDLER_PROLOGUE();");
            }
            break;
          case HandlerKind::Software:
            if (!skip) {
                w_.line("SWHANDLER_DEFS();");
                w_.line("SWHANDLER_PROLOGUE();");
            }
            break;
          case HandlerKind::Normal:
            if (!skip)
                w_.line("PROC_HOOK();");
            break;
        }
    }

    void
    emitDecls()
    {
        if (plan_.has(SeedKind::HookMinor))
            return; // fatal stub declares nothing
        nvars_ = std::max(plan_.vars, 2);
        // t0 derives from the incoming message so run-time behavior is
        // message-dependent (the simulator exercises different paths per
        // message); the rest are plain locals.
        w_.line("int t0 = MSG_WORD0();");
        for (int i = 1; i < nvars_; ++i)
            w_.line("int t" + std::to_string(i) + " = " +
                    std::to_string(rng_.range(0, 31)) + ";");
        if (plan_.alloc_segments > 0)
            w_.line("int db = 0;");
        if (plan_.has(SeedKind::MsglenFpPair))
            w_.line("int use_data = t0 & 1;");
    }

    /** Any local, for reads. */
    std::string
    tvar()
    {
        return "t" + std::to_string(rng_.range(0, nvars_ - 1));
    }

    /**
     * A local that may be overwritten. t0 carries the message payload
     * and is kept read-only by filler so seeded rare-path guards stay
     * message-dependent at run time.
     */
    std::string
    mutvar()
    {
        if (nvars_ <= 1)
            return "t0";
        return "t" + std::to_string(rng_.range(1, nvars_ - 1));
    }

    void
    emitFiller(int lines)
    {
        for (int i = 0; i < lines; ++i) {
            switch (rng_.below(4)) {
              case 0:
                w_.line(mutvar() + " = " + tvar() + " + " +
                        std::to_string(rng_.range(1, 9)) + ";");
                break;
              case 1:
                w_.line(mutvar() + " = " + tvar() + " ^ (" + tvar() +
                        " << " + std::to_string(rng_.range(1, 4)) + ");");
                break;
              case 2:
                w_.line(mutvar() + " = (" + tvar() + " >> 1) & 0x" +
                        std::to_string(rng_.range(1, 255)) + ";");
                break;
              default:
                w_.line(mutvar() + " = " + tvar() + " - " + tvar() + ";");
                break;
            }
        }
    }

    /** A path-doubling branch block of roughly `lines` total lines. */
    void
    emitBranchBlock(int lines)
    {
        int half = std::max(1, (lines - 3) / 2);
        w_.open("if (" + tvar() + " > " +
                std::to_string(rng_.range(2, 13)) + ")");
        emitFiller(half);
        w_.close();
        w_.open("else");
        emitFiller(half);
        w_.close();
    }

    // ---- protocol segments ----------------------------------------------

    void
    emitReadSegment(bool race_bug)
    {
        if (!race_bug) {
            w_.line("WAIT_FOR_DB_FULL(t0);");
            w_.line("MISCBUS_READ_DB(t0, t1);");
            return;
        }
        // The seeded race: an unsynchronized read on a rare corner-case
        // path (the paper's bugs hid in exactly such corners — the
        // static checker still sees the path, the simulator rarely
        // takes it).
        w_.open("if ((t0 & 7) == 5)");
        w_.line("MISCBUS_READ_DB(t0, t1);");
        w_.close();
    }

    /** len/has-data pairs cycled deterministically. */
    void
    emitSendSegment(int variant, bool mismatch)
    {
        static const struct
        {
            const char* len;
            const char* flag;
        } kPairs[] = {
            {"LEN_CACHELINE", "F_DATA"},
            {"LEN_WORD", "F_DATA"},
            {"LEN_NODATA", "F_NODATA"},
        };
        const auto& pair = kPairs[variant % 3];
        const char* flag = pair.flag;
        if (mismatch) {
            // Swap the has-data flag against the length assignment, on a
            // rare path (uncached reads with a full queue, in the paper).
            flag = std::string(pair.flag) == "F_DATA" ? "F_NODATA"
                                                      : "F_DATA";
            seed("msglen_check",
                 std::string(pair.flag) == "F_DATA"
                     ? "nodata-send-nonzero-len"
                     : "data-send-zero-len",
                 SeedClass::Error, "length/has-data mismatch");
            w_.line(std::string("HANDLER_GLOBALS(header.nh.len) = ") +
                    pair.len + ";");
            w_.open("if ((t0 & 15) == 9)");
            w_.line(std::string("PI_SEND(") + flag +
                    ", F_KEEP, F_SWAP, F_NOWAIT, F_DEC, F_NULL);");
            w_.close();
            return;
        }
        w_.line(std::string("HANDLER_GLOBALS(header.nh.len) = ") +
                pair.len + ";");
        switch (variant % 3) {
          case 0: {
            const char* opcode =
                kOpcodeLanes[static_cast<std::size_t>(
                                 rng_.below(kOpcodeCount))]
                    .first;
            emitNiSend(opcode, flag, "F_NOWAIT");
            break;
          }
          case 1:
            w_.line(std::string("PI_SEND(") + flag +
                    ", F_KEEP, F_SWAP, F_NOWAIT, F_DEC, F_NULL);");
            break;
          default:
            w_.line(std::string("IO_SEND(") + flag +
                    ", F_KEEP, F_SWAP, F_NOWAIT, F_DEC, F_NULL);");
            break;
        }
    }

    void
    emitNiSend(const std::string& opcode, const std::string& flag,
               const std::string& wait)
    {
        w_.line("NI_SEND(" + opcode + ", " + flag + ", F_KEEP, " + wait +
                ", F_DEC, F_NULL);");
        for (int i = 0; i < kOpcodeCount; ++i)
            if (opcode == kOpcodeLanes[i].first)
                ++lane_sends_[static_cast<std::size_t>(
                    kOpcodeLanes[i].second)];
    }

    void
    emitDirSegment(SeedKind special)
    {
        switch (special) {
          case SeedKind::DirError:
            // Real bug: modified entry never written back.
            seed("dir_check", "missing-writeback", SeedClass::Error,
                 "genuine missing directory writeback");
            w_.line("DIR_LOAD();");
            w_.line("t1 = DIR_READ(state);");
            w_.line("DIR_WRITE(state, DIRTY);");
            return;
          case SeedKind::DirFpSpec:
            // Speculative modify, backs out without a NAK: flagged,
            // triaged as FP.
            seed("dir_check", "missing-writeback", SeedClass::FalsePositive,
                 "speculative back-out without NAK");
            w_.line("DIR_LOAD();");
            w_.line("DIR_WRITE(state, PENDING);");
            w_.open("if (" + tvar() + " > 9)");
            if (plan_.kind == HandlerKind::Hardware)
                w_.line("FREE_DB();");
            w_.line("return;");
            w_.close();
            w_.line("DIR_WRITEBACK();");
            return;
          case SeedKind::DirFpAbs:
            // Abstraction error: entry address computed manually, so the
            // checker never sees a DIR_LOAD.
            seed("dir_check", "use-before-load", SeedClass::FalsePositive,
                 "manual directory address computation");
            w_.line("t2 = DIR_BASE + (t0 << 3);");
            w_.line("t1 = DIR_READ(state);");
            w_.line("DIR_WRITEBACK();");
            return;
          default:
            break;
        }
        // The common correct shape.
        w_.line("DIR_LOAD();");
        w_.line("t1 = DIR_READ(state);");
        w_.open("if (t1 == DIRTY)");
        w_.line("DIR_WRITE(state, CLEAN);");
        w_.line("DIR_WRITEBACK();");
        w_.close();
    }

    void
    emitAllocSegment(bool debug_fp)
    {
        w_.line("db = ALLOCATE_DB();");
        if (debug_fp) {
            seed("alloc_check", "unchecked-alloc", SeedClass::FalsePositive,
                 "debug print of buffer before failure check");
            w_.line("DEBUG_PRINT(db);");
        }
        w_.open("if (db == 0)");
        w_.line("return;");
        w_.close();
        w_.line("MISCBUS_WRITE_DB(t0, t1);");
        w_.line("FREE_DB();");
    }

    void
    emitSendWaitSegment(bool raw_poll_fp)
    {
        bool pi = rng_.chance(1, 2);
        w_.line("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;");
        w_.line(std::string(pi ? "PI_SEND" : "IO_SEND") +
                "(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);");
        if (raw_poll_fp) {
            // Abstraction-barrier violation: the handler waits by polling
            // the status register directly, invisibly to the checker.
            seed("send_wait", "missing-wait", SeedClass::FalsePositive,
                 "raw status-register poll instead of wait macro");
            w_.open(std::string("while (") +
                    (pi ? "PI_STATUS_REG()" : "IO_STATUS_REG()") +
                    " == 0)");
            w_.line(tvar() + " = " + tvar() + " + 1;");
            w_.close();
        } else {
            w_.line(pi ? "WAIT_FOR_PI_REPLY();" : "WAIT_FOR_IO_REPLY();");
        }
    }

    // ---- seeded special shapes -------------------------------------------

    /** Seeds that must appear early (before ordinary segments). */
    void
    emitSeededPreamble()
    {
        if (plan_.has(SeedKind::BmUseful)) {
            // Handoff path: deliberately keep the buffer for a subsequent
            // handler; the annotation documents it.
            seed("buffer_mgmt", "", SeedClass::UsefulAnnotation,
                 "no_free_needed on buffer-handoff path");
            w_.open("if (" + tvar() + " > 11)");
            w_.line("no_free_needed();");
            w_.line("return;");
            w_.close();
        }
    }

    int
    workItemCount() const
    {
        int n = plan_.branches + plan_.reads + plan_.send_segments +
                plan_.dir_segments + plan_.alloc_segments +
                plan_.sendwait_segments;
        if (plan_.has(SeedKind::MsglenFpPair))
            ++n;
        if (plan_.has(SeedKind::BmDoubleFree) ||
            plan_.has(SeedKind::BmMinor))
            ++n;
        if ((plan_.has(SeedKind::DirError) ||
             plan_.has(SeedKind::DirFpSpec) ||
             plan_.has(SeedKind::DirFpAbs)) &&
            plan_.dir_segments == 0)
            ++n;
        if (plan_.has(SeedKind::LanesError))
            ++n;
        if (plan_.calls_recursive_helper)
            ++n;
        return n;
    }

    /**
     * Emit the `index`-th work item. Order: branches first (they spread
     * paths through the whole body), then segments, then seeded shapes.
     */
    void
    emitWorkItem(int index)
    {
        if (index < plan_.branches) {
            emitBranchBlock(10);
            return;
        }
        index -= plan_.branches;

        if (index < plan_.reads) {
            bool bug = plan_.has(SeedKind::RaceError) && index == 0;
            bool fp = plan_.has(SeedKind::RaceFp) && index == 0;
            if (bug)
                seed("wait_for_db", "buffer-not-synchronized",
                     SeedClass::Error, "read without fill synchronization");
            if (fp)
                seed("wait_for_db", "buffer-not-synchronized",
                     SeedClass::FalsePositive,
                     "intentional unsynchronized debug read");
            emitReadSegment(bug || fp);
            return;
        }
        index -= plan_.reads;

        if (index < plan_.send_segments) {
            bool mismatch =
                plan_.has(SeedKind::MsglenError) && index == 0;
            emitSendSegment(send_variant_++, mismatch);
            return;
        }
        index -= plan_.send_segments;

        if (index < plan_.dir_segments) {
            SeedKind special = SeedKind::HookMissing; // sentinel: none
            if (index == 0) {
                if (plan_.has(SeedKind::DirError))
                    special = SeedKind::DirError;
                else if (plan_.has(SeedKind::DirFpSpec))
                    special = SeedKind::DirFpSpec;
                else if (plan_.has(SeedKind::DirFpAbs))
                    special = SeedKind::DirFpAbs;
            }
            emitDirSegment(special);
            return;
        }
        index -= plan_.dir_segments;

        if (index < plan_.alloc_segments) {
            bool fp = plan_.has(SeedKind::AllocFp) && index == 0;
            emitAllocSegment(fp);
            return;
        }
        index -= plan_.alloc_segments;

        if (index < plan_.sendwait_segments) {
            bool fp = plan_.has(SeedKind::SendWaitFp) && index == 0;
            emitSendWaitSegment(fp);
            return;
        }
        index -= plan_.sendwait_segments;

        // Seeded one-off shapes, in a fixed order.
        if (plan_.has(SeedKind::MsglenFpPair) && index-- == 0) {
            emitMsglenFpPair();
            return;
        }
        if ((plan_.has(SeedKind::BmDoubleFree) ||
             plan_.has(SeedKind::BmMinor)) &&
            index-- == 0) {
            emitConditionalEarlyFree();
            return;
        }
        if ((plan_.has(SeedKind::DirError) ||
             plan_.has(SeedKind::DirFpSpec) ||
             plan_.has(SeedKind::DirFpAbs)) &&
            plan_.dir_segments == 0 && index-- == 0) {
            if (plan_.has(SeedKind::DirError))
                emitDirSegment(SeedKind::DirError);
            else if (plan_.has(SeedKind::DirFpSpec))
                emitDirSegment(SeedKind::DirFpSpec);
            else
                emitDirSegment(SeedKind::DirFpAbs);
            return;
        }
        if (plan_.has(SeedKind::LanesError) && index-- == 0) {
            emitLanesBug();
            return;
        }
        if (plan_.calls_recursive_helper && index-- == 0) {
            w_.line("retry_spin_" + profile_.name + "();");
            return;
        }
        emitFiller(1);
    }

    void
    emitMsglenFpPair()
    {
        // The coma shape: length chosen by the same run-time condition as
        // the send's has-data flag; 2 of the 4 static paths are
        // impossible, and the checker reports both.
        seed("msglen_check", "data-send-zero-len", SeedClass::FalsePositive,
             "run-time-correlated length/flag, impossible path");
        seed("msglen_check", "nodata-send-nonzero-len",
             SeedClass::FalsePositive,
             "run-time-correlated length/flag, impossible path");
        w_.open("if (use_data == 1)");
        w_.line("HANDLER_GLOBALS(header.nh.len) = LEN_WORD;");
        w_.close();
        w_.open("else");
        w_.line("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;");
        w_.close();
        emitFiller(4);
        w_.open("if (use_data == 1)");
        w_.line("PI_SEND(F_DATA, F_KEEP, F_SWAP, F_NOWAIT, F_DEC, "
                "F_NULL);");
        w_.close();
        w_.open("else");
        w_.line("PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_NOWAIT, F_DEC, "
                "F_NULL);");
        w_.close();
    }

    /** Mid-body conditional free; the ending free makes it a double free. */
    void
    emitConditionalEarlyFree()
    {
        SeedClass cls = plan_.has(SeedKind::BmMinor)
                            ? SeedClass::Minor
                            : SeedClass::Error;
        seed("buffer_mgmt", "double-free", cls,
             "conditional early free shadowed by the unconditional "
             "ending free");
        w_.open("if ((t0 & 15) == 3)");
        w_.line("FREE_DB();");
        w_.close();
    }

    void
    emitLanesBug()
    {
        // One send here plus one in the helper on the same lane, with an
        // allowance of one (the generator caps this handler's allowance).
        // The violating send — and so the diagnostic — is in the helper.
        seed("lanes", "quota-exceeded", SeedClass::Error,
             "helper send exceeds the handler's lane allowance",
             "lanes_helper_" + profile_.name);
        w_.line("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;");
        emitNiSend("MSG_INVAL", "F_NODATA", "F_NOWAIT");
        w_.line("lanes_helper_" + profile_.name + "();");
    }

    // ---- endings ----------------------------------------------------------

    void
    emitEnding()
    {
        if (plan_.has(SeedKind::HookMinor))
            return;

        if (plan_.has(SeedKind::MaybeFree)) {
            emitMaybeFreeEnding();
            return;
        }
        if (plan_.has(SeedKind::BmUseless)) {
            emitUselessAnnotationEnding();
            return;
        }
        if (plan_.has(SeedKind::BmLeak)) {
            seed("buffer_mgmt", "leak",
                 plan_.has(SeedKind::BmMinor) ? SeedClass::Minor
                                              : SeedClass::Error,
                 "rare path exits without freeing the buffer");
            w_.open("if ((t0 & 15) != 7)");
            w_.line("FREE_DB();");
            w_.line("return;");
            w_.close();
            // Fall through (one payload in sixteen): the low-grade leak
            // that "only deadlocks the system after several days".
            return;
        }

        bool holds_buffer = plan_.kind == HandlerKind::Hardware ||
                            is_freeing_helper_;
        if (holds_buffer)
            w_.line("FREE_DB();");
    }

    void
    emitMaybeFreeEnding()
    {
        // Silent with the Section 6.1 refinement; a 2-error cascade per
        // site without it (the ablation bench measures exactly this).
        // Deliberately NOT ledgered: with value-sensitivity these sites
        // need no annotation at all — that is the point of the
        // refinement.
        static const char* kHelpers[] = {"MAYBE_FREE_DB_A",
                                         "MAYBE_FREE_DB_B",
                                         "MAYBE_FREE_DB_C",
                                         "MAYBE_FREE_DB_D"};
        const char* helper =
            kHelpers[static_cast<std::size_t>(rng_.below(4))];
        w_.open(std::string("if (") + helper + "())");
        w_.line(tvar() + " = 1;");
        w_.close();
        w_.open("else");
        w_.line("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;");
        emitNiSend("MSG_ACK", "F_NODATA", "F_NOWAIT");
        w_.line("FREE_DB();");
        w_.close();
    }

    void
    emitUselessAnnotationEnding()
    {
        // Data-dependent free in an unlisted helper: the checker cannot
        // see it, so the author silences the leak report. Needed only
        // because the analysis is imprecise — a "useless" annotation.
        seed("buffer_mgmt", "", SeedClass::UselessAnnotation,
             "suppression after data-dependent free helper");
        w_.line("free_if_urgent_" + profile_.name + "();");
        w_.line("no_free_needed();");
    }

  public:
    /** Mark this function as a registered freeing helper. */
    void setFreeingHelper() { is_freeing_helper_ = true; }

  private:
    const ProtocolProfile& profile_;
    const HandlerPlan& plan_;
    Rng rng_;
    Ledger& ledger_;
    CodeWriter w_;
    int nvars_ = 2;
    int send_variant_ = 0;
    bool is_freeing_helper_ = false;
    std::array<int, flash::kLaneCount> lane_sends_{0, 0, 0, 0};

    void
    emitPassthruBody()
    {
        // Pass-thru handlers: "1-3 instructions".
        w_.line("PASSTHRU_FORWARD(t0);");
        if (plan_.kind == HandlerKind::Hardware)
            w_.line("FREE_DB();");
    }
};

// -------------------------------------------------------------------------
// Protocol-level planning
// -------------------------------------------------------------------------

class ProtocolGenerator
{
  public:
    explicit ProtocolGenerator(const ProtocolProfile& profile)
        : profile_(profile), rng_(profile.seed)
    {}

    GeneratedProtocol
    run()
    {
        out_.name = profile_.name;
        out_.spec.name = profile_.name;
        for (int i = 0; i < kOpcodeCount; ++i)
            out_.spec.setLane(kOpcodeLanes[i].first, kOpcodeLanes[i].second);
        out_.spec.deprecated.insert("LEGACY_SEND");
        out_.spec.deprecated.insert("OLD_HEADER_SET");

        plan();
        emitAll();
        emitHelpers();
        return std::move(out_);
    }

  private:
    void
    distribute(int total, std::vector<HandlerPlan*>& eligible,
               int HandlerPlan::*field)
    {
        if (eligible.empty())
            return;
        for (int i = 0; i < total; ++i)
            eligible[static_cast<std::size_t>(i) % eligible.size()]
                ->*field += 1;
    }

    void
    plan()
    {
        int index = 0;
        auto make = [&](HandlerKind kind) {
            HandlerPlan plan;
            plan.kind = kind;
            plan.name = handlerName(index++);
            if (kind == HandlerKind::Software)
                plan.name = "Sw" + plan.name;
            if (kind == HandlerKind::Normal)
                plan.name = "sub_" + plan.name;
            plan.vars = profile_.vars_per_function;
            plan.branches = static_cast<int>(
                rng_.range(std::max(0, profile_.branches_per_handler - 1),
                           profile_.branches_per_handler + 1));
            plans_.push_back(std::move(plan));
        };
        for (int i = 0; i < profile_.hw_handlers; ++i)
            make(HandlerKind::Hardware);
        for (int i = 0; i < profile_.sw_handlers; ++i)
            make(HandlerKind::Software);
        // Helpers emitted separately count against the routine budget.
        int helper_count = helperCount();
        for (int i = 0;
             i < std::max(0, profile_.normal_routines - helper_count); ++i)
            make(HandlerKind::Normal);

        // Mark pass-thru and giant handlers.
        std::vector<HandlerPlan*> hw;
        std::vector<HandlerPlan*> sw;
        std::vector<HandlerPlan*> normal;
        for (HandlerPlan& plan : plans_) {
            if (plan.kind == HandlerKind::Hardware)
                hw.push_back(&plan);
            else if (plan.kind == HandlerKind::Software)
                sw.push_back(&plan);
            else
                normal.push_back(&plan);
        }
        int passthru = static_cast<int>(hw.size()) *
                       profile_.passthru_percent / 100;
        for (int i = 0; i < passthru; ++i)
            hw[static_cast<std::size_t>(i)]->passthru = true;
        // Giants: the last hardware handlers (or routines for common).
        std::vector<HandlerPlan*>& giant_pool = hw.empty() ? normal : hw;
        for (int i = 0; i < profile_.giant_handlers &&
                        i < static_cast<int>(giant_pool.size());
             ++i) {
            HandlerPlan* giant = giant_pool[giant_pool.size() - 1 -
                                            static_cast<std::size_t>(i)];
            giant->giant = true;
            giant->target_lines = profile_.giant_loc;
            giant->branches += 2;
        }

        // Non-passthru, non-giant bodies share the remaining line budget.
        std::vector<HandlerPlan*> regular;
        std::vector<HandlerPlan*> seedable; // hardware regular
        for (HandlerPlan& plan : plans_) {
            if (plan.passthru) {
                plan.target_lines = 6;
                continue;
            }
            if (plan.giant)
                continue;
            regular.push_back(&plan);
            if (plan.kind == HandlerKind::Hardware)
                seedable.push_back(&plan);
        }
        int helper_loc = helperCount() * 8;
        int fixed_loc = passthru * 8 +
                        profile_.giant_handlers * (profile_.giant_loc + 4) +
                        helper_loc;
        int per_regular =
            regular.empty()
                ? 0
                : (profile_.target_loc - fixed_loc) /
                      static_cast<int>(regular.size());
        for (HandlerPlan* plan : regular)
            plan->target_lines = std::max(
                14, per_regular + static_cast<int>(rng_.range(-6, 6)));

        if (seedable.empty())
            seedable = normal; // common code: routines carry the seeds

        // Resource quotas.
        std::vector<HandlerPlan*> read_pool = seedable;
        distribute(profile_.db_reads, read_pool, &HandlerPlan::reads);

        // Sends need a held buffer: hardware handlers hold one from entry
        // and plain routines are outside the buffer discipline, but a
        // software handler may only send between ALLOCATE_DB and FREE_DB,
        // so software handlers take no standalone send segments.
        std::vector<HandlerPlan*> send_pool;
        for (HandlerPlan* plan : regular)
            if (plan->kind != HandlerKind::Software)
                send_pool.push_back(plan);
        distribute(profile_.send_segments, send_pool,
                   &HandlerPlan::send_segments);

        std::vector<HandlerPlan*> dir_pool;
        for (HandlerPlan* plan : regular)
            if (plan->kind == HandlerKind::Hardware)
                dir_pool.push_back(plan);
        distribute(profile_.dir_segments, dir_pool,
                   &HandlerPlan::dir_segments);

        std::vector<HandlerPlan*> sendwait_pool = seedable;
        distribute(profile_.sendwait_pairs, sendwait_pool,
                   &HandlerPlan::sendwait_segments);

        // One handler exercises the non-sending recursion fixed point.
        if (!seedable.empty())
            seedable.front()->calls_recursive_helper = true;

        assignSeeds(seedable);

        // Allocation segments go to software handlers and plain routines
        // AFTER seeding, so a routine carrying buffer-management seeds
        // (which starts in the has-buffer state) never also allocates.
        std::vector<HandlerPlan*> alloc_pool;
        for (HandlerPlan* plan : regular) {
            if (plan->kind == HandlerKind::Hardware)
                continue;
            bool buffer_seeded = false;
            for (SeedKind kind :
                 {SeedKind::BmDoubleFree, SeedKind::BmLeak,
                  SeedKind::BmMinor, SeedKind::BmUseful,
                  SeedKind::BmUseless, SeedKind::MaybeFree,
                  SeedKind::HookMinor})
                buffer_seeded |= plan->has(kind);
            if (!buffer_seeded)
                alloc_pool.push_back(plan);
        }
        distribute(profile_.alloc_sites, alloc_pool,
                   &HandlerPlan::alloc_segments);
        for (int i = 0; i < profile_.alloc_fps && !alloc_pool.empty();
             ++i) {
            HandlerPlan* plan =
                alloc_pool[static_cast<std::size_t>(i) % alloc_pool.size()];
            plan->seeds.push_back(SeedKind::AllocFp);
            if (plan->alloc_segments == 0)
                plan->alloc_segments = 1;
        }
    }

    /** Round-robin cursor over seedable handlers for bug placement. */
    HandlerPlan*
    nextSeedTarget(std::vector<HandlerPlan*>& pool)
    {
        assert(!pool.empty());
        HandlerPlan* plan = pool[seed_cursor_ % pool.size()];
        ++seed_cursor_;
        return plan;
    }

    void
    assignSeeds(std::vector<HandlerPlan*> seedable)
    {
        auto place = [&](SeedKind kind, int count,
                         std::vector<HandlerPlan*>& pool) {
            for (int i = 0; i < count && !pool.empty(); ++i)
                nextSeedTarget(pool)->seeds.push_back(kind);
        };

        // Race bugs need a read in the same handler; ensure one.
        for (int i = 0; i < profile_.race_errors && !seedable.empty();
             ++i) {
            HandlerPlan* plan = nextSeedTarget(seedable);
            plan->seeds.push_back(SeedKind::RaceError);
            if (plan->reads == 0)
                plan->reads = 1;
        }
        for (int i = 0; i < profile_.race_fps && !seedable.empty(); ++i) {
            HandlerPlan* plan = nextSeedTarget(seedable);
            plan->seeds.push_back(SeedKind::RaceFp);
            if (plan->reads == 0)
                plan->reads = 1;
        }
        for (int i = 0; i < profile_.msglen_errors && !seedable.empty();
             ++i) {
            HandlerPlan* plan = nextSeedTarget(seedable);
            plan->seeds.push_back(SeedKind::MsglenError);
            if (plan->send_segments == 0)
                plan->send_segments = 1;
        }
        place(SeedKind::MsglenFpPair, profile_.msglen_fp_pairs, seedable);
        place(SeedKind::BmDoubleFree, profile_.bm_double_free, seedable);
        place(SeedKind::BmLeak, profile_.bm_leak, seedable);
        place(SeedKind::BmUseful, profile_.bm_useful_annotations, seedable);
        place(SeedKind::BmUseless, profile_.bm_useless_annotations,
              seedable);
        place(SeedKind::MaybeFree, profile_.maybe_free_sites, seedable);
        place(SeedKind::LanesError, profile_.lanes_errors, seedable);
        place(SeedKind::HookMissing, profile_.hooks_missing, seedable);
        place(SeedKind::DirError, profile_.dir_errors, seedable);
        place(SeedKind::DirFpSpec, profile_.dir_fp_speculative, seedable);
        place(SeedKind::DirFpAbs, profile_.dir_fp_abstraction, seedable);
        place(SeedKind::SendWaitFp, profile_.sendwait_fps, seedable);
        for (HandlerPlan& plan : plans_) {
            if (plan.has(SeedKind::SendWaitFp) &&
                plan.sendwait_segments == 0)
                plan.sendwait_segments = 1;
        }

        // Minor buffer violations live in never-invoked handlers.
        for (int i = 0; i < profile_.bm_minor && !seedable.empty(); ++i) {
            HandlerPlan* plan = nextSeedTarget(seedable);
            plan->seeds.push_back(SeedKind::BmMinor);
            plan->name += "Unused";
        }
        // Unimplemented-routine minors (sci).
        for (int i = 0; i < profile_.hooks_minor; ++i) {
            HandlerPlan stub;
            stub.kind = HandlerKind::Normal;
            stub.name = "unimpl_" + profile_.name + "_" +
                        std::to_string(i);
            stub.target_lines = 4;
            stub.seeds.push_back(SeedKind::HookMinor);
            plans_.push_back(std::move(stub));
        }
    }

    int
    helperCount() const
    {
        // retry_spin + free_if_urgent + lanes helpers + deferred dir
        // subroutines.
        return 2 + profile_.lanes_errors + profile_.dir_fp_subroutine;
    }

    void
    emitAll()
    {
        for (HandlerPlan& plan : plans_) {
            // The common code has no handlers, but its buffer-management
            // seeds still need functions the checker analyzes: register
            // seeded routines in the freeing table.
            bool as_freeing_helper =
                plan.kind == HandlerKind::Normal &&
                (plan.has(SeedKind::BmDoubleFree) ||
                 plan.has(SeedKind::BmLeak) || plan.has(SeedKind::BmMinor) ||
                 plan.has(SeedKind::BmUseful) ||
                 plan.has(SeedKind::BmUseless) ||
                 plan.has(SeedKind::MaybeFree));

            FunctionEmitter emitter(profile_, plan, rng_.fork(),
                                    out_.ledger);
            if (as_freeing_helper) {
                emitter.setFreeingHelper();
                out_.spec.freeing_routines.insert(plan.name);
            }
            GeneratedFile file;
            file.function = plan.name;
            file.name = profile_.name + "/" + plan.name + ".c";
            file.source = emitter.emit();
            out_.files.push_back(std::move(file));

            flash::HandlerSpec hs;
            hs.name = plan.name;
            hs.kind = plan.kind;
            auto lanes = emitter.laneSends();
            for (int lane = 0; lane < flash::kLaneCount; ++lane)
                hs.lane_allowance[static_cast<std::size_t>(lane)] =
                    std::max(1, lanes[static_cast<std::size_t>(lane)]);
            if (plan.has(SeedKind::LanesError)) {
                // The helper's extra send must NOT be covered: the seeded
                // bug is that the allowance assumes only local sends.
            }
            out_.spec.addHandler(hs);
        }
    }

    void
    addHelper(const std::string& fn_name, const std::string& body_lines)
    {
        CodeWriter w;
        w.line("/* " + profile_.name + " protocol: helper routine */");
        w.open("void " + fn_name + "(void)");
        std::istringstream is(body_lines);
        std::string line;
        while (std::getline(is, line))
            w.line(line);
        w.close();
        GeneratedFile file;
        file.function = fn_name;
        file.name = profile_.name + "/" + fn_name + ".c";
        file.source = w.take();
        out_.files.push_back(std::move(file));

        flash::HandlerSpec hs;
        hs.name = fn_name;
        hs.kind = HandlerKind::Normal;
        out_.spec.addHandler(hs);
    }

    void
    emitHelpers()
    {
        // Non-sending recursion: the fixed-point rule must stay silent.
        addHelper("retry_spin_" + profile_.name,
                  "PROC_HOOK();\n"
                  "int t0 = 1;\n"
                  "if (RETRY_NEEDED()) {\n"
                  "    retry_spin_" + profile_.name + "();\n"
                  "}");

        // Data-dependent free helper backing the useless annotations.
        addHelper("free_if_urgent_" + profile_.name,
                  "PROC_HOOK();\n"
                  "int t0 = URGENCY_LEVEL();\n"
                  "if (t0 > 3) {\n"
                  "    FREE_DB();\n"
                  "}");

        // Lanes-bug helpers: one extra send on the overflowing lane.
        for (int i = 0; i < profile_.lanes_errors; ++i) {
            addHelper("lanes_helper_" + profile_.name,
                      "PROC_HOOK();\n"
                      "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;\n"
                      "NI_SEND(MSG_INVAL, F_NODATA, F_KEEP, F_NOWAIT, "
                      "F_DEC, F_NULL);");
        }

        // Deferred directory subroutines (Table 6's main FP source): each
        // modifies the loaded entry and relies on the caller's writeback,
        // but lacks the expects_dir_writeback() annotation.
        for (int i = 0; i < profile_.dir_fp_subroutine; ++i) {
            std::string fn_name = "upd_sharers_" + profile_.name + "_" +
                                  std::to_string(i);
            SeededItem item;
            item.protocol = profile_.name;
            item.handler = fn_name;
            item.checker = "dir_check";
            item.rule = "missing-writeback";
            item.cls = SeedClass::FalsePositive;
            item.description =
                "unannotated subroutine defers writeback to caller";
            out_.ledger.add(item);
            addHelper(fn_name, "PROC_HOOK();\n"
                               "DIR_LOAD();\n"
                               "DIR_WRITE(sharers, 1);");
            out_.spec.dir_deferred_routines.insert(fn_name);
        }
    }

    const ProtocolProfile& profile_;
    Rng rng_;
    std::vector<HandlerPlan> plans_;
    std::size_t seed_cursor_ = 0;
    GeneratedProtocol out_;
};

} // namespace

int
GeneratedProtocol::totalLoc() const
{
    int loc = 0;
    for (const GeneratedFile& file : files)
        loc += static_cast<int>(
            std::count(file.source.begin(), file.source.end(), '\n'));
    return loc;
}

GeneratedProtocol
generateProtocol(const ProtocolProfile& profile)
{
    ProtocolGenerator generator(profile);
    return generator.run();
}

LoadedProtocol
loadProtocol(const ProtocolProfile& profile)
{
    LoadedProtocol loaded;
    loaded.gen = generateProtocol(profile);
    // Recovery mode: a generator bug that emits a malformed handler
    // poisons that declaration and degrades the run instead of aborting
    // the whole protocol check.
    loaded.program = std::make_unique<lang::Program>(/*recover=*/true);
    for (const GeneratedFile& file : loaded.gen.files) {
        lang::TranslationUnit& tu =
            loaded.program->addSource(file.name, file.source);
        loaded.file_function[tu.file_id] = file.function;
    }
    return loaded;
}

} // namespace mc::corpus
