#include "corpus/ledger.h"

#include <algorithm>

namespace mc::corpus {

const char*
seedClassName(SeedClass cls)
{
    switch (cls) {
      case SeedClass::Error: return "error";
      case SeedClass::Violation: return "violation";
      case SeedClass::FalsePositive: return "false-positive";
      case SeedClass::Minor: return "minor";
      case SeedClass::UsefulAnnotation: return "useful-annotation";
      case SeedClass::UselessAnnotation: return "useless-annotation";
    }
    return "?";
}

int
Ledger::count(const std::string& checker, SeedClass cls) const
{
    int n = 0;
    for (const SeededItem& item : items_)
        if (item.checker == checker && item.cls == cls)
            ++n;
    return n;
}

int
Ledger::countReports(const std::string& checker) const
{
    int n = 0;
    for (const SeededItem& item : items_) {
        if (item.checker != checker)
            continue;
        if (item.cls == SeedClass::Error ||
            item.cls == SeedClass::Violation ||
            item.cls == SeedClass::FalsePositive ||
            item.cls == SeedClass::Minor)
            ++n;
    }
    return n;
}

void
Ledger::merge(const Ledger& other)
{
    items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

int
Reconciliation::foundWithClass(SeedClass cls) const
{
    int n = 0;
    for (const SeededItem* item : found)
        if (item->cls == cls)
            ++n;
    return n;
}

Reconciliation
reconcile(const Ledger& ledger,
          const std::vector<support::Diagnostic>& diags,
          const std::map<std::int32_t, std::string>& file_handler,
          const std::string& checker)
{
    Reconciliation rec;

    // Expected diagnostics per (handler, rule) key.
    std::map<std::pair<std::string, std::string>,
             std::vector<const SeededItem*>>
        expected;
    for (const SeededItem& item : ledger.items()) {
        if (item.checker != checker)
            continue;
        if (item.cls == SeedClass::UsefulAnnotation ||
            item.cls == SeedClass::UselessAnnotation)
            continue; // annotations are silent by design
        expected[{item.handler, item.rule}].push_back(&item);
    }

    for (const support::Diagnostic& d : diags) {
        if (d.checker != checker)
            continue;
        std::string handler;
        auto hit = file_handler.find(d.loc.file_id);
        if (hit != file_handler.end())
            handler = hit->second;
        auto it = expected.find({handler, d.rule});
        if (it != expected.end() && !it->second.empty()) {
            rec.found.push_back(it->second.back());
            it->second.pop_back();
        } else {
            rec.unexpected.push_back(&d);
        }
    }
    for (auto& [key, remaining] : expected)
        for (const SeededItem* item : remaining)
            rec.missed.push_back(item);
    return rec;
}

} // namespace mc::corpus
