#ifndef MCHECK_CORPUS_GENERATOR_H
#define MCHECK_CORPUS_GENERATOR_H

#include "corpus/ledger.h"
#include "corpus/profile.h"
#include "flash/protocol_spec.h"
#include "lang/program.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mc::corpus {

/** One generated source file (one function per file). */
struct GeneratedFile
{
    /** File name, e.g. "bitvector/PILocalGet.c". */
    std::string name;
    std::string source;
    /** The function the file defines. */
    std::string function;
};

/** A fully generated protocol: sources, spec, and the seeding ledger. */
struct GeneratedProtocol
{
    std::string name;
    std::vector<GeneratedFile> files;
    flash::ProtocolSpec spec;
    Ledger ledger;

    /** Total source lines across all files (Table 1's LOC metric). */
    int totalLoc() const;
};

/**
 * Generate a protocol from a profile. Deterministic: the same profile
 * (including its seed) always yields byte-identical sources.
 */
GeneratedProtocol generateProtocol(const ProtocolProfile& profile);

/** A generated protocol parsed into an analyzable Program. */
struct LoadedProtocol
{
    GeneratedProtocol gen;
    std::unique_ptr<lang::Program> program;
    /** file_id -> defining function, for diagnostic reconciliation. */
    std::map<std::int32_t, std::string> file_function;
};

/** Generate and parse a protocol in one step. */
LoadedProtocol loadProtocol(const ProtocolProfile& profile);

} // namespace mc::corpus

#endif // MCHECK_CORPUS_GENERATOR_H
