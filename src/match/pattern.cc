#include "match/pattern.h"

#include "lang/lexer.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace mc::match {

using namespace mc::lang;

std::optional<WildcardKind>
wildcardKindFromName(std::string_view name)
{
    if (name == "scalar")
        return WildcardKind::Scalar;
    if (name == "unsigned")
        return WildcardKind::Unsigned;
    if (name == "expr" || name == "any")
        return WildcardKind::AnyExpr;
    if (name == "ident")
        return WildcardKind::Ident;
    if (name == "constant" || name == "const")
        return WildcardKind::Constant;
    return std::nullopt;
}

const lang::Expr*
Bindings::lookup(const std::string& name) const
{
    auto sym = support::SymbolInterner::global().lookup(name);
    return sym ? lookupId(*sym) : nullptr;
}

Pattern
Pattern::compile(PatternContext& pc, const std::string& text,
                 std::vector<WildcardDecl> wildcards)
{
    // Atomic: patterns are compiled concurrently by per-worker checker
    // instances. The number only keeps buffer names unique within this
    // context's SourceManager; it never reaches diagnostics.
    static std::atomic<int> counter{0};
    std::string name =
        "<pattern#" +
        std::to_string(counter.fetch_add(1, std::memory_order_relaxed) + 1) +
        ">";
    std::int32_t id = pc.sourceManager().addFile(name, text);
    Lexer lexer(pc.sourceManager(), id);
    ParserOptions options;
    options.allow_missing_semicolon = true;
    Parser parser(pc.ctx(), lexer.lexAll(), &pc.symbols(), options);

    // The template is a braced block with exactly one statement inside
    // (metal's `{ ... }` pattern syntax).
    Stmt* stmt = parser.parseSingleStatement();
    if (stmt->skind != StmtKind::Compound)
        throw ParseError(stmt->loc, "pattern must be enclosed in braces");
    auto* block = static_cast<CompoundStmt*>(stmt);
    if (block->stmts.size() != 1)
        throw ParseError(stmt->loc,
                         "pattern must contain exactly one statement");

    Pattern pattern;
    pattern.wildcards_ = std::move(wildcards);
    for (WildcardDecl& wd : pattern.wildcards_)
        if (wd.sym == support::kInvalidSymbol)
            wd.sym = support::SymbolInterner::global().intern(wd.name);
    Alternative alt;
    Stmt* inner = block->stmts.front();
    if (inner->skind == StmtKind::Expr)
        alt.expr = static_cast<ExprStmt*>(inner)->expr;
    else
        alt.stmt = inner;
    pattern.computeRequiredIdent(alt);
    pattern.alternatives_.push_back(std::move(alt));
    return pattern;
}

void
Pattern::computeRequiredIdent(Alternative& alt) const
{
    auto scan = [&](const Expr& root) {
        forEachSubExpr(root, [&](const Expr& e) {
            if (!alt.required_ident.empty())
                return;
            if (e.ekind != ExprKind::Ident)
                return;
            const std::string& name =
                static_cast<const IdentExpr&>(e).name;
            if (!findWildcard(name))
                alt.required_ident = name;
        });
    };
    if (alt.expr) {
        scan(*alt.expr);
    } else if (alt.stmt) {
        forEachTopLevelExpr(*alt.stmt,
                            [&](const Expr& top) { scan(top); });
    }
    if (!alt.required_ident.empty())
        alt.required_sym =
            support::SymbolInterner::global().intern(alt.required_ident);
}

bool
Pattern::couldMatch(const std::set<std::string>& idents) const
{
    for (const Alternative& alt : alternatives_) {
        if (alt.required_ident.empty())
            return true;
        if (idents.count(alt.required_ident))
            return true;
    }
    return false;
}

bool
Pattern::couldMatchIds(const std::vector<support::SymbolId>& ids) const
{
    return couldMatchIds(ids.data(), ids.size());
}

bool
Pattern::couldMatchIds(const support::SymbolId* ids,
                       std::size_t count) const
{
    for (const Alternative& alt : alternatives_) {
        if (alt.required_sym == support::kInvalidSymbol)
            return true;
        if (std::binary_search(ids, ids + count, alt.required_sym))
            return true;
    }
    return false;
}

void
Pattern::collectIdents(const lang::Stmt& stmt, std::set<std::string>& out)
{
    forEachIdent(stmt, [&](const IdentExpr& e) { out.insert(e.name); });
}

void
Pattern::collectIdentIds(const lang::Stmt& stmt,
                         std::vector<support::SymbolId>& out)
{
    const std::vector<support::SymbolId>& ids = lang::stmtIdentIds(stmt);
    out.insert(out.end(), ids.begin(), ids.end());
    if (out.size() != ids.size()) {
        // Appended to a non-empty vector: restore the sorted-unique form.
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
    }
}

bool
Pattern::requiredSyms(std::vector<support::SymbolId>& out) const
{
    for (const Alternative& alt : alternatives_) {
        if (alt.required_sym == support::kInvalidSymbol)
            return false;
        out.push_back(alt.required_sym);
    }
    return !alternatives_.empty();
}

void
Pattern::addAlternatives(const Pattern& other)
{
    for (const Alternative& alt : other.alternatives_)
        alternatives_.push_back(alt);
    for (const WildcardDecl& wd : other.wildcards_) {
        bool known = false;
        for (const WildcardDecl& mine : wildcards_)
            if (mine.name == wd.name)
                known = true;
        if (!known)
            wildcards_.push_back(wd);
    }
}

const WildcardDecl*
Pattern::findWildcard(const std::string& name) const
{
    for (const WildcardDecl& wd : wildcards_)
        if (wd.name == name)
            return &wd;
    return nullptr;
}

bool
Pattern::bindWildcard(const WildcardDecl& wd, const Expr& cand,
                      Bindings& bindings) const
{
    // Kind constraints. Types are only partially known in the dialect, so
    // constraints are syntactic plus "definitely wrong" type rejections.
    switch (wd.kind) {
      case WildcardKind::Scalar:
      case WildcardKind::Unsigned:
        if (cand.ekind == ExprKind::FloatLit ||
            cand.ekind == ExprKind::StringLit)
            return false;
        break;
      case WildcardKind::AnyExpr:
        break;
      case WildcardKind::Ident:
        if (cand.ekind != ExprKind::Ident)
            return false;
        break;
      case WildcardKind::Constant:
        if (cand.ekind != ExprKind::IntLit &&
            cand.ekind != ExprKind::CharLit &&
            cand.ekind != ExprKind::Ident)
            return false;
        break;
    }

    // Consistent-binding rule: a wildcard appearing twice in one pattern
    // must match structurally equal expressions.
    if (const Expr* existing = bindings.lookupId(wd.sym))
        return exprEquals(*existing, cand);
    bindings.entries.emplace_back(wd.sym, &cand);
    return true;
}

bool
Pattern::unifyExpr(const Expr& pat, const Expr& cand,
                   Bindings& bindings) const
{
    if (pat.ekind == ExprKind::Ident) {
        const auto& ident = static_cast<const IdentExpr&>(pat);
        if (const WildcardDecl* wd = findWildcard(ident.name))
            return bindWildcard(*wd, cand, bindings);
    }

    if (pat.ekind != cand.ekind)
        return false;

    switch (pat.ekind) {
      case ExprKind::IntLit:
        return static_cast<const IntLitExpr&>(pat).value ==
               static_cast<const IntLitExpr&>(cand).value;
      case ExprKind::FloatLit:
        return static_cast<const FloatLitExpr&>(pat).value ==
               static_cast<const FloatLitExpr&>(cand).value;
      case ExprKind::CharLit:
        return static_cast<const CharLitExpr&>(pat).value ==
               static_cast<const CharLitExpr&>(cand).value;
      case ExprKind::StringLit:
        return static_cast<const StringLitExpr&>(pat).value ==
               static_cast<const StringLitExpr&>(cand).value;
      case ExprKind::Ident:
        return static_cast<const IdentExpr&>(pat).name ==
               static_cast<const IdentExpr&>(cand).name;
      case ExprKind::Unary: {
        const auto& p = static_cast<const UnaryExpr&>(pat);
        const auto& c = static_cast<const UnaryExpr&>(cand);
        return p.op == c.op && unifyExpr(*p.operand, *c.operand, bindings);
      }
      case ExprKind::Binary: {
        const auto& p = static_cast<const BinaryExpr&>(pat);
        const auto& c = static_cast<const BinaryExpr&>(cand);
        return p.op == c.op && unifyExpr(*p.lhs, *c.lhs, bindings) &&
               unifyExpr(*p.rhs, *c.rhs, bindings);
      }
      case ExprKind::Ternary: {
        const auto& p = static_cast<const TernaryExpr&>(pat);
        const auto& c = static_cast<const TernaryExpr&>(cand);
        return unifyExpr(*p.cond, *c.cond, bindings) &&
               unifyExpr(*p.then_expr, *c.then_expr, bindings) &&
               unifyExpr(*p.else_expr, *c.else_expr, bindings);
      }
      case ExprKind::Call: {
        const auto& p = static_cast<const CallExpr&>(pat);
        const auto& c = static_cast<const CallExpr&>(cand);
        if (p.args.size() != c.args.size())
            return false;
        if (!unifyExpr(*p.callee, *c.callee, bindings))
            return false;
        for (std::size_t i = 0; i < p.args.size(); ++i)
            if (!unifyExpr(*p.args[i], *c.args[i], bindings))
                return false;
        return true;
      }
      case ExprKind::Member: {
        const auto& p = static_cast<const MemberExpr&>(pat);
        const auto& c = static_cast<const MemberExpr&>(cand);
        return p.member == c.member && p.is_arrow == c.is_arrow &&
               unifyExpr(*p.base, *c.base, bindings);
      }
      case ExprKind::Index: {
        const auto& p = static_cast<const IndexExpr&>(pat);
        const auto& c = static_cast<const IndexExpr&>(cand);
        return unifyExpr(*p.base, *c.base, bindings) &&
               unifyExpr(*p.index, *c.index, bindings);
      }
      case ExprKind::Cast: {
        const auto& p = static_cast<const CastExpr&>(pat);
        const auto& c = static_cast<const CastExpr&>(cand);
        return unifyExpr(*p.operand, *c.operand, bindings);
      }
      case ExprKind::Sizeof: {
        const auto& p = static_cast<const SizeofExpr&>(pat);
        const auto& c = static_cast<const SizeofExpr&>(cand);
        if ((p.operand == nullptr) != (c.operand == nullptr))
            return false;
        return !p.operand || unifyExpr(*p.operand, *c.operand, bindings);
      }
    }
    return false;
}

bool
Pattern::unifyStmt(const Stmt& pat, const Stmt& cand,
                   Bindings& bindings) const
{
    if (pat.skind != cand.skind)
        return false;
    switch (pat.skind) {
      case StmtKind::Expr:
        return unifyExpr(*static_cast<const ExprStmt&>(pat).expr,
                         *static_cast<const ExprStmt&>(cand).expr, bindings);
      case StmtKind::Return: {
        const auto& p = static_cast<const ReturnStmt&>(pat);
        const auto& c = static_cast<const ReturnStmt&>(cand);
        if ((p.value == nullptr) != (c.value == nullptr))
            return false;
        return !p.value || unifyExpr(*p.value, *c.value, bindings);
      }
      case StmtKind::Break:
      case StmtKind::Continue:
      case StmtKind::Empty:
        return true;
      case StmtKind::Goto:
        return static_cast<const GotoStmt&>(pat).label ==
               static_cast<const GotoStmt&>(cand).label;
      default:
        return false;
    }
}

std::optional<Bindings>
Pattern::matchStmt(const Stmt& stmt) const
{
    for (const Alternative& alt : alternatives_) {
        Bindings bindings;
        if (alt.stmt) {
            if (unifyStmt(*alt.stmt, stmt, bindings))
                return bindings;
        } else if (alt.expr && stmt.skind == StmtKind::Expr) {
            if (unifyExpr(*alt.expr,
                          *static_cast<const ExprStmt&>(stmt).expr,
                          bindings))
                return bindings;
        }
    }
    return std::nullopt;
}

std::optional<Bindings>
Pattern::matchExpr(const Expr& expr) const
{
    for (const Alternative& alt : alternatives_) {
        if (!alt.expr)
            continue;
        Bindings bindings;
        if (unifyExpr(*alt.expr, expr, bindings))
            return bindings;
    }
    return std::nullopt;
}

std::optional<Bindings>
Pattern::matchInStmt(const Stmt& stmt) const
{
    if (auto whole = matchStmt(stmt))
        return whole;

    std::optional<Bindings> found;
    forEachTopLevelExpr(stmt, [&](const Expr& top) {
        if (found)
            return;
        forEachSubExpr(top, [&](const Expr& sub) {
            if (found)
                return;
            if (auto m = matchExpr(sub))
                found = std::move(m);
        });
    });
    return found;
}

} // namespace mc::match
