#ifndef MCHECK_MATCH_PATTERN_H
#define MCHECK_MATCH_PATTERN_H

#include "lang/ast.h"
#include "lang/parser.h"
#include "support/interner.h"
#include "support/source_manager.h"

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mc::match {

/**
 * Kinds of metal wildcard ("decl") variables.
 *
 * In metal, `decl { scalar } addr, buf;` declares wildcards that match any
 * C integer expression. We support the kinds the paper's checkers use plus
 * two natural extensions (Ident, Constant) used by the embedded checkers.
 */
enum class WildcardKind : std::uint8_t
{
    /** Any non-floating expression ("any C integer expression"). */
    Scalar,
    /** Alias of Scalar, spelled `unsigned` in Figure 3. */
    Unsigned,
    /** Any expression at all. */
    AnyExpr,
    /** A bare identifier only. */
    Ident,
    /** An integer/char literal or bare identifier naming a constant. */
    Constant,
};

/** Parse "scalar" / "unsigned" / "expr" / "ident" / "constant". */
std::optional<WildcardKind> wildcardKindFromName(std::string_view name);

/** One declared wildcard variable. */
struct WildcardDecl
{
    std::string name;
    WildcardKind kind = WildcardKind::Scalar;
    /** Interned `name`; filled in by Pattern::compile. */
    support::SymbolId sym = support::kInvalidSymbol;
};

/**
 * Wildcard-variable bindings accumulated during one successful match.
 *
 * Patterns declare at most a handful of wildcards, so bindings live in a
 * flat (symbol, expr) vector: binding is a push_back, lookup a linear
 * scan of uint32 keys — no node allocations on the matching hot path.
 */
struct Bindings
{
    std::vector<std::pair<support::SymbolId, const lang::Expr*>> entries;

    /** The expression bound to the wildcard with interned id `sym`. */
    const lang::Expr*
    lookupId(support::SymbolId sym) const
    {
        for (const auto& [s, e] : entries)
            if (s == sym)
                return e;
        return nullptr;
    }

    /** Name-based lookup (resolves `name` via the global interner). */
    const lang::Expr* lookup(const std::string& name) const;
};

/**
 * Owns the ASTs of compiled patterns.
 *
 * Pattern templates are parsed with the same dialect parser as protocol
 * code and live in their own arena; the arena must outlive every Pattern
 * compiled against it.
 */
class PatternContext
{
  public:
    lang::AstContext& ctx() { return ctx_; }
    support::SourceManager& sourceManager() { return sm_; }
    lang::ParserSymbols& symbols() { return symbols_; }

  private:
    lang::AstContext ctx_;
    support::SourceManager sm_;
    lang::ParserSymbols symbols_;
};

/**
 * A compiled metal pattern: one or more source-template alternatives
 * (joined with `|` in metal) plus the wildcard table they refer to.
 *
 * A pattern whose template is a lone expression can match both a whole
 * expression statement and any subexpression of a larger statement; a
 * statement template (e.g. a return) matches statements only.
 */
class Pattern
{
  public:
    Pattern() = default;

    /**
     * Compile a pattern from metal surface syntax: "{ ... }" with an
     * optional trailing semicolon inside the braces.
     *
     * @param pc Arena the template AST is allocated in.
     * @param text The braced template, e.g. "{ WAIT_FOR_DB_FULL(addr); }".
     * @param wildcards Wildcards visible to this pattern.
     * Throws lang::ParseError on malformed templates.
     */
    static Pattern compile(PatternContext& pc, const std::string& text,
                           std::vector<WildcardDecl> wildcards);

    /** Merge `other`'s alternatives into this pattern (the `|` operator).
     *  Wildcard tables must agree on shared names. */
    void addAlternatives(const Pattern& other);

    /** Match against a whole statement. */
    std::optional<Bindings> matchStmt(const lang::Stmt& stmt) const;

    /** Match against one expression node (no descent). */
    std::optional<Bindings> matchExpr(const lang::Expr& expr) const;

    /**
     * Match anywhere inside a statement: first the statement itself, then
     * every subexpression of its top-level expressions. This is how the
     * engine applies patterns "down every path" — a send buried in a
     * condition still triggers.
     */
    std::optional<Bindings> matchInStmt(const lang::Stmt& stmt) const;

    bool empty() const { return alternatives_.empty(); }
    std::size_t alternativeCount() const { return alternatives_.size(); }

    const std::vector<WildcardDecl>& wildcards() const { return wildcards_; }

    /**
     * Fast rejection prefilter. Each alternative has a *required
     * identifier*: the first non-wildcard identifier in its template
     * (usually the macro name), which any matching statement must
     * contain verbatim. Returns true if some alternative's required
     * identifier is in `idents` (or it has none). Never rejects a
     * statement that would match — the engine uses this to skip full
     * unification on the vast majority of statements.
     */
    bool couldMatch(const std::set<std::string>& idents) const;

    /**
     * Interned-id prefilter: same contract as couldMatch, but `ids`
     * is the sorted unique output of collectIdentIds and membership is
     * a binary search over uint32s instead of a string-set probe.
     */
    bool couldMatchIds(const std::vector<support::SymbolId>& ids) const;

    /**
     * Span twin of couldMatchIds for callers holding arena slices
     * (cfg/flat_cfg.h) instead of vectors; `ids` must be sorted unique.
     */
    bool couldMatchIds(const support::SymbolId* ids,
                       std::size_t count) const;

    /** Collect every identifier occurring in `stmt` into `out`. */
    static void collectIdents(const lang::Stmt& stmt,
                              std::set<std::string>& out);

    /**
     * Collect the interned ids of every identifier in `stmt` into
     * `out`, sorted and deduplicated — the form couldMatchIds expects.
     */
    static void collectIdentIds(const lang::Stmt& stmt,
                                std::vector<support::SymbolId>& out);

    /**
     * Append every alternative's required-identifier symbol to `out` and
     * return true — or return false (leaving `out` unspecified) when some
     * alternative has no required identifier, i.e. the pattern cannot be
     * prefiltered at all. Used to build mask-based prefilters.
     */
    bool requiredSyms(std::vector<support::SymbolId>& out) const;

  private:
    struct Alternative
    {
        /** Set when the template is a statement (return, if, ...). */
        const lang::Stmt* stmt = nullptr;
        /** Set when the template is a lone expression. */
        const lang::Expr* expr = nullptr;
        /** First non-wildcard identifier in the template ("" if none). */
        std::string required_ident;
        /** Interned required_ident (kInvalidSymbol if none). */
        support::SymbolId required_sym = support::kInvalidSymbol;
    };

    void computeRequiredIdent(Alternative& alt) const;

    const WildcardDecl* findWildcard(const std::string& name) const;
    bool unifyExpr(const lang::Expr& pat, const lang::Expr& cand,
                   Bindings& bindings) const;
    bool unifyStmt(const lang::Stmt& pat, const lang::Stmt& cand,
                   Bindings& bindings) const;
    bool bindWildcard(const WildcardDecl& wd, const lang::Expr& cand,
                      Bindings& bindings) const;

    std::vector<Alternative> alternatives_;
    std::vector<WildcardDecl> wildcards_;
};

} // namespace mc::match

#endif // MCHECK_MATCH_PATTERN_H
