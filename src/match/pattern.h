#ifndef MCHECK_MATCH_PATTERN_H
#define MCHECK_MATCH_PATTERN_H

#include "lang/ast.h"
#include "lang/parser.h"
#include "support/source_manager.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace mc::match {

/**
 * Kinds of metal wildcard ("decl") variables.
 *
 * In metal, `decl { scalar } addr, buf;` declares wildcards that match any
 * C integer expression. We support the kinds the paper's checkers use plus
 * two natural extensions (Ident, Constant) used by the embedded checkers.
 */
enum class WildcardKind : std::uint8_t
{
    /** Any non-floating expression ("any C integer expression"). */
    Scalar,
    /** Alias of Scalar, spelled `unsigned` in Figure 3. */
    Unsigned,
    /** Any expression at all. */
    AnyExpr,
    /** A bare identifier only. */
    Ident,
    /** An integer/char literal or bare identifier naming a constant. */
    Constant,
};

/** Parse "scalar" / "unsigned" / "expr" / "ident" / "constant". */
std::optional<WildcardKind> wildcardKindFromName(std::string_view name);

/** One declared wildcard variable. */
struct WildcardDecl
{
    std::string name;
    WildcardKind kind = WildcardKind::Scalar;
};

/** Wildcard-variable bindings accumulated during one successful match. */
struct Bindings
{
    std::map<std::string, const lang::Expr*> map;

    const lang::Expr*
    lookup(const std::string& name) const
    {
        auto it = map.find(name);
        return it == map.end() ? nullptr : it->second;
    }
};

/**
 * Owns the ASTs of compiled patterns.
 *
 * Pattern templates are parsed with the same dialect parser as protocol
 * code and live in their own arena; the arena must outlive every Pattern
 * compiled against it.
 */
class PatternContext
{
  public:
    lang::AstContext& ctx() { return ctx_; }
    support::SourceManager& sourceManager() { return sm_; }
    lang::ParserSymbols& symbols() { return symbols_; }

  private:
    lang::AstContext ctx_;
    support::SourceManager sm_;
    lang::ParserSymbols symbols_;
};

/**
 * A compiled metal pattern: one or more source-template alternatives
 * (joined with `|` in metal) plus the wildcard table they refer to.
 *
 * A pattern whose template is a lone expression can match both a whole
 * expression statement and any subexpression of a larger statement; a
 * statement template (e.g. a return) matches statements only.
 */
class Pattern
{
  public:
    Pattern() = default;

    /**
     * Compile a pattern from metal surface syntax: "{ ... }" with an
     * optional trailing semicolon inside the braces.
     *
     * @param pc Arena the template AST is allocated in.
     * @param text The braced template, e.g. "{ WAIT_FOR_DB_FULL(addr); }".
     * @param wildcards Wildcards visible to this pattern.
     * Throws lang::ParseError on malformed templates.
     */
    static Pattern compile(PatternContext& pc, const std::string& text,
                           std::vector<WildcardDecl> wildcards);

    /** Merge `other`'s alternatives into this pattern (the `|` operator).
     *  Wildcard tables must agree on shared names. */
    void addAlternatives(const Pattern& other);

    /** Match against a whole statement. */
    std::optional<Bindings> matchStmt(const lang::Stmt& stmt) const;

    /** Match against one expression node (no descent). */
    std::optional<Bindings> matchExpr(const lang::Expr& expr) const;

    /**
     * Match anywhere inside a statement: first the statement itself, then
     * every subexpression of its top-level expressions. This is how the
     * engine applies patterns "down every path" — a send buried in a
     * condition still triggers.
     */
    std::optional<Bindings> matchInStmt(const lang::Stmt& stmt) const;

    bool empty() const { return alternatives_.empty(); }
    std::size_t alternativeCount() const { return alternatives_.size(); }

    const std::vector<WildcardDecl>& wildcards() const { return wildcards_; }

    /**
     * Fast rejection prefilter. Each alternative has a *required
     * identifier*: the first non-wildcard identifier in its template
     * (usually the macro name), which any matching statement must
     * contain verbatim. Returns true if some alternative's required
     * identifier is in `idents` (or it has none). Never rejects a
     * statement that would match — the engine uses this to skip full
     * unification on the vast majority of statements.
     */
    bool couldMatch(const std::set<std::string>& idents) const;

    /** Collect every identifier occurring in `stmt` into `out`. */
    static void collectIdents(const lang::Stmt& stmt,
                              std::set<std::string>& out);

  private:
    struct Alternative
    {
        /** Set when the template is a statement (return, if, ...). */
        const lang::Stmt* stmt = nullptr;
        /** Set when the template is a lone expression. */
        const lang::Expr* expr = nullptr;
        /** First non-wildcard identifier in the template ("" if none). */
        std::string required_ident;
    };

    void computeRequiredIdent(Alternative& alt) const;

    bool isWildcard(const std::string& name, WildcardKind* kind) const;
    bool unifyExpr(const lang::Expr& pat, const lang::Expr& cand,
                   Bindings& bindings) const;
    bool unifyStmt(const lang::Stmt& pat, const lang::Stmt& cand,
                   Bindings& bindings) const;
    bool bindWildcard(const std::string& name, WildcardKind kind,
                      const lang::Expr& cand, Bindings& bindings) const;

    std::vector<Alternative> alternatives_;
    std::vector<WildcardDecl> wildcards_;
};

} // namespace mc::match

#endif // MCHECK_MATCH_PATTERN_H
