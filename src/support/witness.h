#ifndef MCHECK_SUPPORT_WITNESS_H
#define MCHECK_SUPPORT_WITNESS_H

#include "support/diagnostics.h"

#include <cstddef>
#include <memory>
#include <utility>

namespace mc::support {

/**
 * Process-wide witness capture configuration.
 *
 * Witness recording is off by default (`--witness` enables it) and every
 * recording site gates on `witnessEnabled()`, so a disabled run pays one
 * relaxed atomic load per walk — nothing per statement. The limit caps
 * both the transition history and the block-path segment of a trail;
 * hitting it marks the witness truncated rather than growing it.
 */
bool witnessEnabled();
unsigned witnessLimit();
void setWitnessConfig(bool enabled, unsigned limit);

/** The default step/block cap (`--witness-limit`). */
inline constexpr unsigned kDefaultWitnessLimit = 16;

/**
 * The provenance accumulator one path-walker entry carries: the CFG
 * blocks the path traversed and the SM transitions it took, bounded by
 * the configured limit.
 *
 * A default-constructed trail is inert — its payload pointer is null, so
 * copying it (which happens once per path fork) copies one null pointer.
 * Only `WitnessTrail(true)` allocates; forks of an active trail deep-copy
 * the bounded payload, keeping capture O(path) with an O(limit) constant.
 */
class WitnessTrail
{
  public:
    WitnessTrail() = default;

    explicit WitnessTrail(bool enabled)
    {
        if (enabled)
            data_ = std::make_unique<Witness>();
    }

    WitnessTrail(const WitnessTrail& other)
        : data_(other.data_ ? std::make_unique<Witness>(*other.data_)
                            : nullptr)
    {}

    WitnessTrail& operator=(const WitnessTrail& other)
    {
        if (this != &other)
            data_ = other.data_ ? std::make_unique<Witness>(*other.data_)
                                : nullptr;
        return *this;
    }

    WitnessTrail(WitnessTrail&&) noexcept = default;
    WitnessTrail& operator=(WitnessTrail&&) noexcept = default;

    bool active() const { return data_ != nullptr; }

    /** Append a visited CFG block, respecting the cap. Returns whether
     *  the block was appended (false: inert, or cap hit → truncated). */
    bool
    addBlock(int block, unsigned limit)
    {
        if (!data_)
            return false;
        if (data_->blocks.size() >= limit) {
            data_->truncated = true;
            return false;
        }
        data_->blocks.push_back(block);
        return true;
    }

    /** Append an SM transition step, respecting the cap. Returns whether
     *  the step was appended (false: inert, or cap hit → truncated). */
    bool
    addStep(WitnessStep step, unsigned limit)
    {
        if (!data_)
            return false;
        if (data_->steps.size() >= limit) {
            data_->truncated = true;
            return false;
        }
        data_->steps.push_back(std::move(step));
        return true;
    }

    /** True once either segment has hit the cap. */
    bool truncated() const { return data_ && data_->truncated; }

    /** The accumulated witness, or nullptr when inert. */
    const Witness* witness() const { return data_.get(); }

    /** Approximate heap bytes pinned (for budget charging). */
    std::size_t
    heapBytes() const
    {
        if (!data_)
            return 0;
        return sizeof(Witness) +
               data_->steps.capacity() * sizeof(WitnessStep) +
               data_->blocks.capacity() * sizeof(int);
    }

    /**
     * The calling thread's trail (installed by WitnessTrailScope during
     * a walk), or nullptr. DiagnosticSink::report consults this to
     * attach provenance to findings at the moment they are reported.
     */
    static WitnessTrail* current();

  private:
    std::unique_ptr<Witness> data_;
};

/**
 * RAII installer for WitnessTrail::current(), mirroring BudgetScope:
 * the walker installs the popped entry's trail around its statement
 * hooks so any diagnostic reported from a checker action sees the path
 * that led there. Scopes nest; the previous trail is restored on exit.
 */
class WitnessTrailScope
{
  public:
    explicit WitnessTrailScope(WitnessTrail* trail);
    ~WitnessTrailScope();

    WitnessTrailScope(const WitnessTrailScope&) = delete;
    WitnessTrailScope& operator=(const WitnessTrailScope&) = delete;

  private:
    WitnessTrail* prev_;
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_WITNESS_H
