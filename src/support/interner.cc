#include "support/interner.h"

#include <cassert>
#include <mutex>

namespace mc::support {

SymbolInterner&
SymbolInterner::global()
{
    static SymbolInterner instance;
    return instance;
}

SymbolId
SymbolInterner::intern(std::string_view name)
{
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = ids_.find(name);
        if (it != ids_.end())
            return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Double-check: another thread may have interned it between locks.
    auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    SymbolId id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(std::string_view(names_.back()), id);
    return id;
}

std::optional<SymbolId>
SymbolInterner::lookup(std::string_view name) const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(name);
    if (it == ids_.end())
        return std::nullopt;
    return it->second;
}

std::string_view
SymbolInterner::name(SymbolId id) const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    assert(id < names_.size() && "unknown SymbolId");
    if (id >= names_.size())
        return {};
    return names_[id];
}

std::size_t
SymbolInterner::size() const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    return names_.size();
}

} // namespace mc::support
