#include "support/thread_pool.h"

#include "support/fault_injection.h"
#include "support/metrics.h"

#include <exception>
#include <iostream>
#include <string>
#include <utility>

namespace mc::support {

unsigned
ThreadPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned jobs)
{
    jobs_ = jobs == 0 ? defaultJobs() : jobs;
    unsigned workers = jobs_ - 1;
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkQueue>());
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        task();
        return;
    }
    unsigned q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                 static_cast<unsigned>(queues_.size());
    {
        std::lock_guard<std::mutex> qlock(queues_[q]->mu);
        queues_[q]->tasks.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++pending_;
    }
    cv_.notify_one();
}

bool
ThreadPool::runOneTask(unsigned self)
{
    std::function<void()> task;
    // Own queue first (back: most recently pushed, cache-warm) ...
    {
        WorkQueue& own = *queues_[self];
        std::lock_guard<std::mutex> lock(own.mu);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.back());
            own.tasks.pop_back();
        }
    }
    // ... then steal the oldest task from the next busy victim.
    if (!task) {
        for (std::size_t k = 1; !task && k < queues_.size(); ++k) {
            WorkQueue& victim =
                *queues_[(self + k) % queues_.size()];
            std::lock_guard<std::mutex> lock(victim.mu);
            if (!victim.tasks.empty()) {
                task = std::move(victim.tasks.front());
                victim.tasks.pop_front();
            }
        }
    }
    if (!task)
        return false;
    // Decrement at dequeue, not completion: `pending_` counts *queued*
    // tasks, so idle workers sleep on the cv while a long task runs
    // instead of spinning on "pending but nothing to steal". The dtor's
    // drain stays correct — pending_ == 0 iff every queue is empty, and
    // join() waits out any task still executing.
    {
        std::lock_guard<std::mutex> lock(mu_);
        --pending_;
    }
    task();
    return true;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        if (runOneTask(self))
            continue;
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
        if (stop_ && pending_ == 0)
            return;
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fault::probe("pool.task", std::to_string(i));
            body(i);
        }
        return;
    }

    /** Join state shared between the caller and the helper tasks. */
    struct ForState
    {
        std::atomic<std::size_t> next{0};
        std::size_t n = 0;
        const std::function<void(std::size_t)>* body = nullptr;
        std::mutex mu;
        std::condition_variable done;
        unsigned running = 0;
        std::exception_ptr error;
        /** Body exceptions discarded because error was already set. */
        std::size_t suppressed = 0;
        /** what() of the first few suppressed exceptions, for the log. */
        std::vector<std::string> suppressed_what;
    };
    auto st = std::make_shared<ForState>();
    st->n = n;
    st->body = &body;

    auto runner = [st] {
        std::size_t i;
        while ((i = st->next.fetch_add(1, std::memory_order_relaxed)) <
               st->n) {
            try {
                fault::probe("pool.task", std::to_string(i));
                (*st->body)(i);
            } catch (...) {
                std::exception_ptr ep = std::current_exception();
                std::lock_guard<std::mutex> lock(st->mu);
                if (!st->error) {
                    st->error = ep;
                } else {
                    // Only the first exception reaches the caller; the
                    // rest are counted and logged at the join so a
                    // multi-failure run is still observable.
                    ++st->suppressed;
                    if (st->suppressed_what.size() < 4) {
                        try {
                            std::rethrow_exception(ep);
                        } catch (const std::exception& e) {
                            st->suppressed_what.emplace_back(e.what());
                        } catch (...) {
                            st->suppressed_what.emplace_back(
                                "unknown exception");
                        }
                    }
                }
                // Drain remaining indices: nothing else should run.
                st->next.store(st->n, std::memory_order_relaxed);
            }
        }
    };

    unsigned helpers = static_cast<unsigned>(
        std::min<std::size_t>(workers_.size(), n - 1));
    st->running = helpers;
    for (unsigned h = 0; h < helpers; ++h) {
        submit([st, runner] {
            runner();
            std::lock_guard<std::mutex> lock(st->mu);
            if (--st->running == 0)
                st->done.notify_all();
        });
    }
    runner(); // the caller is the final lane

    {
        std::unique_lock<std::mutex> lock(st->mu);
        st->done.wait(lock, [&] { return st->running == 0; });
        if (st->suppressed > 0) {
            MetricsRegistry& metrics = MetricsRegistry::global();
            if (metrics.enabled())
                metrics.counter("pool.suppressed_exceptions")
                    .add(st->suppressed);
            std::cerr << "mccheck: parallelFor: suppressed "
                      << st->suppressed
                      << " additional exception(s) after the first:";
            for (const std::string& what : st->suppressed_what)
                std::cerr << ' ' << what << ';';
            if (st->suppressed > st->suppressed_what.size())
                std::cerr << " ...";
            std::cerr << '\n';
        }
        if (st->error)
            std::rethrow_exception(st->error);
    }
}

} // namespace mc::support
