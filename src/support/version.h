#ifndef MCHECK_SUPPORT_VERSION_H
#define MCHECK_SUPPORT_VERSION_H

namespace mc::support {

/** Tool identity, shared by `mccheck --version` and the SARIF emitter. */
inline constexpr const char* kToolName = "mccheck";
inline constexpr const char* kToolVersion = "1.3.0";

} // namespace mc::support

#endif // MCHECK_SUPPORT_VERSION_H
