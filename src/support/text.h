#ifndef MCHECK_SUPPORT_TEXT_H
#define MCHECK_SUPPORT_TEXT_H

#include <string>
#include <string_view>
#include <vector>

namespace mc::support {

/** Split `s` on `sep`, keeping empty fields. */
std::vector<std::string> split(std::string_view s, char sep);

/** Strip ASCII whitespace from both ends. */
std::string_view trim(std::string_view s);

/** True if `s` starts with `prefix`. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Join `parts` with `sep`. */
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/**
 * Render a fixed-width table: `header` then `rows`, columns padded to the
 * widest cell, separated by two spaces, with a rule under the header.
 * All benches use this so the reproduced paper tables share a format.
 */
std::string formatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

/**
 * Escape `s` for inclusion inside a double-quoted JSON string literal
 * (quotes, backslashes, and control characters; everything else passes
 * through byte-for-byte). The metrics, trace, and diagnostic emitters all
 * route through this.
 */
std::string jsonEscape(std::string_view s);

} // namespace mc::support

#endif // MCHECK_SUPPORT_TEXT_H
