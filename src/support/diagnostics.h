#ifndef MCHECK_SUPPORT_DIAGNOSTICS_H
#define MCHECK_SUPPORT_DIAGNOSTICS_H

#include "support/source_location.h"

#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace mc::support {

class SourceManager;

/** How serious a reported finding is. */
enum class Severity
{
    /** A rule violation the checker believes is a real bug. */
    Error,
    /** A suspicious construct that may be benign. */
    Warning,
    /** Supplementary information attached to a prior finding. */
    Note,
};

/** Returns a short lowercase name ("error", "warning", "note"). */
const char* severityName(Severity sev);

/** Output encodings the sink can render findings in. */
enum class OutputFormat
{
    /** Human-readable "file:line:col: severity: ..." lines. */
    Text,
    /** A JSON object with a "diagnostics" array and severity counts. */
    Json,
    /** SARIF 2.1.0 (the subset CI result viewers consume). */
    Sarif,
};

/**
 * Parse "text" / "json" / "sarif" into a format. Returns false (leaving
 * `out` untouched) for anything else.
 */
bool parseOutputFormat(const std::string& name, OutputFormat& out);

/**
 * One SM transition (or rule firing) on the path that produced a
 * finding: the state before and after, the statement it happened at,
 * and a note naming the rule plus its rendered wildcard bindings.
 */
struct WitnessStep
{
    std::string from_state;
    std::string to_state;
    SourceLoc loc;
    /** "rule <id>, <wildcard> = <expr>, ..." — human-readable evidence. */
    std::string note;
};

/**
 * Bounded provenance for one finding: the ordered SM transition history
 * and the CFG block-path segment of the path that reached it. Capture is
 * capped at the configured `--witness-limit`; a capped witness carries
 * `truncated = true` rather than silently losing its tail.
 */
struct Witness
{
    std::vector<WitnessStep> steps;
    std::vector<int> blocks;
    bool truncated = false;

    bool empty() const { return steps.empty() && blocks.empty(); }
};

/**
 * One finding emitted by a checker.
 *
 * `checker` is the checker's stable name (Table 7 row), `rule` a short
 * machine-readable id for the specific violated rule, and `message` the
 * human-readable text. `trace` optionally carries an inter-procedural
 * back-trace (the lanes checker populates it, mirroring the paper's
 * "precise textual back traces"). `witness` carries the path-level
 * provenance captured under `--witness`: the SM transition history and
 * block path that produced the finding (empty when capture is off or
 * the finding has no path context).
 */
struct Diagnostic
{
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string checker;
    std::string rule;
    std::string message;
    std::vector<std::string> trace;
    Witness witness;
};

/**
 * Collects diagnostics from all checkers in one run.
 *
 * The sink deduplicates findings by (checker, rule, location): a
 * path-sensitive engine can reach the same bad statement along many paths,
 * but the paper's tables count distinct source-level errors.
 *
 * Thread-safety and determinism: `report`, the counting queries, and
 * `clear` take an internal mutex, so checker worker threads may share one
 * sink. Emission (`print` / `printJson` / `printSarif`) orders findings
 * by (file, line, column, checker, rule) — insertion order breaks ties —
 * so rendered output is byte-identical no matter how many threads (or
 * which interleaving) produced the findings. `diagnostics()` still
 * exposes raw insertion order and expects a quiesced sink.
 */
class DiagnosticSink
{
  public:
    /** Report a finding. Returns true if it was new (not a duplicate). */
    bool report(Diagnostic diag);

    /** Convenience for the common case. */
    bool
    error(const SourceLoc& loc, std::string checker, std::string rule,
          std::string message)
    {
        return report(Diagnostic{Severity::Error, loc, std::move(checker),
                                 std::move(rule), std::move(message), {},
                                 {}});
    }

    bool
    warning(const SourceLoc& loc, std::string checker, std::string rule,
            std::string message)
    {
        return report(Diagnostic{Severity::Warning, loc, std::move(checker),
                                 std::move(rule), std::move(message), {},
                                 {}});
    }

    const std::vector<Diagnostic>& diagnostics() const { return diags_; }

    /** Total findings with the given severity. */
    int count(Severity sev) const;

    /** Findings attributed to one checker (all severities). */
    int countForChecker(const std::string& checker) const;

    /** Findings for one (checker, severity) pair. */
    int countForChecker(const std::string& checker, Severity sev) const;

    /** Drop all collected diagnostics and duplicate-tracking state. */
    void clear();

    /**
     * Print all findings (with source line excerpts when a SourceManager
     * is supplied) in "file:line:col: severity: [checker] message" form.
     */
    void print(std::ostream& os, const SourceManager* sm = nullptr) const;

    /**
     * Emit all findings as a JSON object:
     * {"tool": {...}, "counts": {"error": n, ...}, "diagnostics": [...]}.
     * Each diagnostic carries severity, file/line/column, checker, rule,
     * message, and the back-trace frames. File names resolve through `sm`
     * when provided; otherwise the numeric file id is used.
     */
    void printJson(std::ostream& os, const SourceManager* sm = nullptr) const;

    /**
     * Emit findings as SARIF 2.1.0 — the "lite" subset CI viewers need:
     * one run, tool.driver with a rule table, one result per finding with
     * a physical location, and inter-procedural back-traces rendered as a
     * SARIF stack.
     */
    void printSarif(std::ostream& os,
                    const SourceManager* sm = nullptr) const;

    /** Dispatch on `format` to print / printJson / printSarif. */
    void write(std::ostream& os, OutputFormat format,
               const SourceManager* sm = nullptr) const;

  private:
    /**
     * Structured dedup key. (Earlier versions concatenated the fields
     * into one delimited string, which let a checker or rule name
     * containing the delimiter collide with a different pair.)
     */
    using DedupKey = std::tuple<std::string, std::string, SourceLoc>;

    /** count(sev) with mu_ already held. */
    int countLocked(Severity sev) const;

    /**
     * Emission order: indices into diags_, stably sorted by
     * (location, checker, rule). Call with mu_ held.
     */
    std::vector<std::size_t> emissionOrder() const;

    mutable std::mutex mu_;
    std::vector<Diagnostic> diags_;
    std::map<DedupKey, int> seen_;
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_DIAGNOSTICS_H
