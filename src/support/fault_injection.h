#ifndef MCHECK_SUPPORT_FAULT_INJECTION_H
#define MCHECK_SUPPORT_FAULT_INJECTION_H

#include <stdexcept>
#include <string>
#include <string_view>

namespace mc::support {

/**
 * Thrown by an armed fault-injection probe. Always defined (even when
 * probes are compiled out) so catch sites need no #ifdef.
 */
class InjectedFault : public std::runtime_error
{
  public:
    InjectedFault(std::string site, std::string key)
        : std::runtime_error("injected fault at " + site +
                             (key.empty() ? std::string() : " [" + key + "]")),
          site_(std::move(site)), key_(std::move(key))
    {
    }

    const std::string& site() const { return site_; }
    const std::string& key() const { return key_; }

  private:
    std::string site_;
    std::string key_;
};

/**
 * Fault-injection hooks for robustness testing.
 *
 * Probes are inert until armed with a spec of the form `site:n`
 * (via --inject-fault or the MCCHECK_FAULT_INJECT env var):
 *
 *   - Keyed probes — `probe(site, key)` — fire when the armed site
 *     matches and `fnv1a(key) % n == 0`. The decision is a pure function
 *     of the unit's identity, NOT of scheduling order, so the same set
 *     of units fails at --jobs 1 and --jobs 4 and containment output
 *     stays byte-identical. Used at per-unit sites (checker.unit,
 *     cache.lookup, cache.store, pool.task).
 *
 *   - Counted probes — `probe(site)` — fire on every Nth call at the
 *     armed site (a process-wide counter). Only used at sequential
 *     sites (parser.top_level), where call order is deterministic.
 *
 * Armed sites (grep for fault::probe to confirm the current set):
 *   parser.top_level  — keyed+counted, before each top-level decl parse
 *   checker.unit      — keyed by "function/checker", start of each unit
 *   walker.walk       — keyed by walk label, start of each path walk
 *   cache.lookup      — keyed by entry filename, inside lookup I/O
 *   cache.store       — keyed by entry filename, inside store I/O
 *   pool.task         — keyed, inside parallelFor bodies (tests only)
 *   server.request    — keyed by method name, after a daemon request is
 *                       decoded but before it executes (containment:
 *                       the client gets a structured error and the
 *                       daemon's resident state stays untouched)
 *   worker.spawn      — keyed by "worker:<slot>:spawn:<attempt>", in the
 *                       shard supervisor before forking a worker; the
 *                       spawn fails and retries under backoff, the slot
 *                       is abandoned after max_spawn_attempts
 *   worker.request    — keyed by "function/checker", in a shard worker
 *                       at the start of each requested unit; the worker
 *                       process _Exit(9)s mid-batch (as a segfault or
 *                       OOM kill would look from the coordinator)
 *   worker.hang       — keyed by "function/checker", same site; the
 *                       worker stalls forever under a live heartbeat,
 *                       so only the per-batch deadline can catch it
 *   shard.merge       — keyed by "function/checker", in the coordinator
 *                       as it merges that unit's result (containment:
 *                       the unit degrades to an "analysis incomplete"
 *                       warning, byte-identical at any shard count)
 *
 * Probes compile to nothing unless MCHECK_FAULT_INJECTION is defined
 * (CMake option of the same name, default ON; turn OFF for release
 * builds that must not carry the hooks).
 */
namespace fault {

#if defined(MCHECK_FAULT_INJECTION)

/** Arm from a `site:n` spec; n >= 1. Returns false on a malformed spec. */
bool arm(std::string_view spec);

/** Arm from $MCCHECK_FAULT_INJECT if set. False if unset or malformed. */
bool armFromEnv();

/** Disarm and reset counters (tests). */
void disarm();

/** True if any site is armed. */
bool armed();

/** Number of probes that have fired since arming. */
unsigned long triggered();

/** Keyed probe: throws InjectedFault iff armed for `site` and the key
 * hashes into the armed 1-in-n bucket. */
void probe(const char* site, std::string_view key);

/** Counted probe: throws InjectedFault on every Nth call at `site`. */
void probe(const char* site);

#else

inline bool arm(std::string_view) { return false; }
inline bool armFromEnv() { return false; }
inline void disarm() {}
inline bool armed() { return false; }
inline unsigned long triggered() { return 0; }
inline void probe(const char*, std::string_view) {}
inline void probe(const char*) {}

#endif

} // namespace fault

} // namespace mc::support

#endif // MCHECK_SUPPORT_FAULT_INJECTION_H
