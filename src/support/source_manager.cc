#include "support/source_manager.h"

#include <cassert>
#include <sstream>

namespace mc::support {

SourceManager::SourceManager()
{
    // Slot 0 is the "<unknown>" file so that SourceLoc{0,...} is safe to
    // describe.
    files_.push_back(File{"<unknown>", "", {0, 0}});
}

std::int32_t
SourceManager::addFile(std::string name, std::string contents)
{
    File f;
    f.name = std::move(name);
    f.contents = std::move(contents);
    f.line_offsets.push_back(0);
    for (std::size_t i = 0; i < f.contents.size(); ++i) {
        if (f.contents[i] == '\n')
            f.line_offsets.push_back(i + 1);
    }
    f.line_offsets.push_back(f.contents.size() + 1);
    files_.push_back(std::move(f));
    return static_cast<std::int32_t>(files_.size()) - 1;
}

bool
SourceManager::replaceFile(std::int32_t file_id, std::string contents)
{
    if (file_id < 1 || file_id >= static_cast<std::int32_t>(files_.size()))
        return false;
    File& f = files_[static_cast<std::size_t>(file_id)];
    f.contents = std::move(contents);
    f.line_offsets.clear();
    f.line_offsets.push_back(0);
    for (std::size_t i = 0; i < f.contents.size(); ++i) {
        if (f.contents[i] == '\n')
            f.line_offsets.push_back(i + 1);
    }
    f.line_offsets.push_back(f.contents.size() + 1);
    return true;
}

std::int32_t
SourceManager::findFile(std::string_view name) const
{
    for (std::size_t i = files_.size(); i > 1; --i)
        if (files_[i - 1].name == name)
            return static_cast<std::int32_t>(i - 1);
    return -1;
}

const SourceManager::File&
SourceManager::file(std::int32_t file_id) const
{
    if (file_id < 0 || file_id >= static_cast<std::int32_t>(files_.size()))
        return files_[0];
    return files_[static_cast<std::size_t>(file_id)];
}

const std::string&
SourceManager::fileName(std::int32_t file_id) const
{
    return file(file_id).name;
}

std::string_view
SourceManager::fileContents(std::int32_t file_id) const
{
    return file(file_id).contents;
}

std::string_view
SourceManager::lineText(std::int32_t file_id, std::int32_t line) const
{
    const File& f = file(file_id);
    if (line < 1 ||
        static_cast<std::size_t>(line) + 1 >= f.line_offsets.size() + 1)
        return {};
    std::size_t idx = static_cast<std::size_t>(line) - 1;
    if (idx + 1 >= f.line_offsets.size())
        return {};
    std::size_t begin = f.line_offsets[idx];
    std::size_t end = f.line_offsets[idx + 1];
    if (begin >= f.contents.size())
        return {};
    // Strip the newline (or the sentinel overrun) from the end.
    std::size_t len = end - begin;
    if (len > 0)
        --len;
    std::string_view text(f.contents);
    return text.substr(begin, len);
}

int
SourceManager::lineCount(std::int32_t file_id) const
{
    return static_cast<int>(file(file_id).line_offsets.size()) - 1;
}

std::string
SourceManager::describe(const SourceLoc& loc) const
{
    std::ostringstream os;
    os << fileName(loc.file_id) << ':' << loc.line << ':' << loc.column;
    return os.str();
}

} // namespace mc::support
