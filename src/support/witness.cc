#include "support/witness.h"

#include <atomic>

namespace mc::support {

namespace {

std::atomic<bool> g_witness_enabled{false};
std::atomic<unsigned> g_witness_limit{kDefaultWitnessLimit};

thread_local WitnessTrail* t_current_trail = nullptr;

} // namespace

bool
witnessEnabled()
{
    return g_witness_enabled.load(std::memory_order_relaxed);
}

unsigned
witnessLimit()
{
    return g_witness_limit.load(std::memory_order_relaxed);
}

void
setWitnessConfig(bool enabled, unsigned limit)
{
    g_witness_enabled.store(enabled, std::memory_order_relaxed);
    g_witness_limit.store(limit == 0 ? kDefaultWitnessLimit : limit,
                          std::memory_order_relaxed);
}

WitnessTrail*
WitnessTrail::current()
{
    return t_current_trail;
}

WitnessTrailScope::WitnessTrailScope(WitnessTrail* trail)
    : prev_(t_current_trail)
{
    t_current_trail = trail;
}

WitnessTrailScope::~WitnessTrailScope()
{
    t_current_trail = prev_;
}

} // namespace mc::support
