#ifndef MCHECK_SUPPORT_THREAD_POOL_H
#define MCHECK_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mc::support {

/**
 * A small work-stealing thread pool for the checking engine.
 *
 * The pool models a *concurrency level* of `jobs`: it spawns `jobs - 1`
 * worker threads, and `parallelFor` contributes the calling thread as the
 * final lane. `jobs == 1` therefore means strictly sequential execution on
 * the caller with no threads at all — the baseline every determinism test
 * compares against.
 *
 * Each worker owns a deque: `submit` distributes tasks round-robin, a
 * worker pops from the back of its own deque (LIFO, cache-warm) and steals
 * from the front of a victim's (FIFO, oldest first). `parallelFor` layers
 * a dynamically-balanced index loop on top: one runner task per lane, all
 * pulling indices from a shared atomic counter, so a giant function next
 * to a hundred tiny ones self-balances without static partitioning.
 *
 * Restrictions (all checked-by-construction in the engine's usage):
 *  - `parallelFor` must not be called from inside a pool task (no
 *    nesting); it is a fork-join barrier for the calling thread only.
 *  - Task exceptions: `parallelFor` re-throws the first body exception on
 *    the caller after the join; `submit` tasks must not throw.
 */
class ThreadPool
{
  public:
    /** `jobs == 0` means defaultJobs(). Spawns `jobs - 1` workers. */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** The concurrency level: worker threads + the parallelFor caller. */
    unsigned jobs() const { return jobs_; }

    /** Hardware concurrency, clamped to at least 1. */
    static unsigned defaultJobs();

    /** Enqueue one task. With no workers (jobs == 1) it runs inline. */
    void submit(std::function<void()> task);

    /**
     * Run `body(0) .. body(n-1)` across the workers plus the calling
     * thread; returns when every index has completed. Indices are handed
     * out one at a time from an atomic counter (work for stealing), so
     * uneven per-index cost self-balances. The first exception thrown by
     * any body is re-thrown on the caller; remaining indices are skipped.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& body);

  private:
    /** One worker's deque; stealing locks the victim's mutex only. */
    struct WorkQueue
    {
        std::mutex mu;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(unsigned self);
    /** Pop own back, else steal another queue's front. */
    bool runOneTask(unsigned self);

    unsigned jobs_ = 1;
    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    /** Tasks enqueued but not yet finished (guarded by mu_ for the cv). */
    std::size_t pending_ = 0;
    std::atomic<unsigned> next_queue_{0};
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_THREAD_POOL_H
