#ifndef MCHECK_SUPPORT_RNG_H
#define MCHECK_SUPPORT_RNG_H

#include <cstdint>

namespace mc::support {

/**
 * Deterministic 64-bit PRNG (SplitMix64).
 *
 * The corpus generator and the FLASH simulator must be reproducible across
 * platforms and standard-library versions, so we avoid <random> engines and
 * distributions and use this fixed algorithm everywhere randomness is
 * needed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Modulo bias is irrelevant for corpus generation purposes.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** True with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Fork an independent stream (e.g., one per generated handler). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ull);
    }

  private:
    std::uint64_t state_;
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_RNG_H
