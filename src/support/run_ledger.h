#ifndef MCHECK_SUPPORT_RUN_LEDGER_H
#define MCHECK_SUPPORT_RUN_LEDGER_H

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace mc::support {

/**
 * Per-unit tallies for one ledger `unit` event, filled by whoever ran
 * the unit (the parallel runner, the metal driver). `visits` accumulates
 * across every walk the unit performed — the path walker publishes into
 * the thread-local accumulator installed by LedgerUnitScope.
 */
struct LedgerUnitEvent
{
    std::string function;
    std::string checker;
    double wall_ms = 0.0;
    std::uint64_t visits = 0;
    /** Branch edges pruned as infeasible (pruning strategies only). */
    std::uint64_t pruned_edges = 0;
    /** Feasibility verdicts answered from the prune-decision cache. */
    std::uint64_t prune_cache_hits = 0;
    /** Branch blocks pruning skipped for fanning out != 2 ways. */
    std::uint64_t prune_skipped_nary = 0;
    /** "hit", "miss", or "off" (no cache configured). */
    const char* cache = "off";
    /** Budget truncation: "none", "deadline", "steps", "bytes". */
    const char* budget_stop = "none";
    bool truncated = false;
    bool failed = false;
    /** The function's translation unit recorded a frontend issue. */
    bool degraded_parse = false;
    /**
     * Shard worker slot that produced the unit, or -1 outside sharded
     * runs. The `worker`/`attempts` fields are emitted only when >= 0,
     * so unsharded ledgers are byte-identical to earlier releases.
     */
    int worker = -1;
    /** Dispatch attempts the unit took (1 = first try; sharded only). */
    std::uint64_t attempts = 0;
};

/**
 * One daemon request as seen by the ledger (`request` event): which
 * method ran, how it ended, and how much resident state it reused. The
 * daemon emits one per request between the unit events that request
 * produced, so a ledger of a daemon session reads as an interleaving of
 * request boundaries and per-unit work.
 */
struct LedgerRequestEvent
{
    std::uint64_t id = 0;
    std::string method;
    /** "ok" or "error". */
    std::string status = "ok";
    int exit_code = 0;
    double wall_ms = 0.0;
    std::uint64_t units_total = 0;
    /** Units replayed from the resident analysis cache. */
    std::uint64_t units_reused = 0;
    /** Files re-parsed (incremental updateSource or full rebuild). */
    std::uint64_t files_reparsed = 0;
    /** The resident Program snapshot satisfied this request. */
    bool program_reused = false;
};

/**
 * Thread-local visit accumulator for the unit currently running on this
 * thread. The path walker adds each walk's visit count here (one TLS
 * load per walk), so unit events can report visits without changing any
 * checker signature — the same side-channel pattern Budget::current()
 * uses for resource limits.
 */
struct LedgerUnitStats
{
    std::uint64_t visits = 0;
    std::uint64_t pruned_edges = 0;
    std::uint64_t prune_cache_hits = 0;
    std::uint64_t prune_skipped_nary = 0;

    /** The calling thread's active accumulator, or nullptr. */
    static LedgerUnitStats* current();
};

/** RAII installer for LedgerUnitStats::current() (scopes nest). */
class LedgerUnitScope
{
  public:
    explicit LedgerUnitScope(LedgerUnitStats* stats);
    ~LedgerUnitScope();

    LedgerUnitScope(const LedgerUnitScope&) = delete;
    LedgerUnitScope& operator=(const LedgerUnitScope&) = delete;

  private:
    LedgerUnitStats* prev_;
};

/**
 * Append-only JSONL run ledger (`--ledger FILE`).
 *
 * One JSON object per line: a `run_start` manifest (tool identity and
 * the flags that shape analysis), one `unit` event per (function x
 * checker) work unit in deterministic merge order, and a `run_end`
 * summary (exit code plus the run's unit/cache/failure tallies, which
 * the ledger accumulates itself as events are emitted). The schema is
 * frozen in tools/ledger_schema.json and summarized by
 * tools/ledger_summary.py.
 *
 * Disabled (no-op) until `open` succeeds; every emit site gates on
 * `enabled()` so an unledgered run pays one boolean load per unit.
 * Thread-safe: emission takes a mutex, though in practice unit events
 * flow from the single-threaded merge loop so line order is
 * deterministic for any --jobs value.
 */
class RunLedger
{
  public:
    /** The process-wide ledger the driver opens. */
    static RunLedger& global();

    bool enabled() const { return enabled_; }

    /** Open `path` for appending. Returns false on I/O failure. */
    bool open(const std::string& path);

    /** Flush and stop emitting. Safe when never opened. */
    void close();

    /** Emit the run_start manifest. */
    void runStart(const std::vector<std::string>& args, bool witness,
                  unsigned witness_limit, unsigned jobs);

    /** Emit one unit event (tallies fold into the run_end summary). */
    void unit(const LedgerUnitEvent& event);

    /** Emit one daemon request event (does not close the stream). */
    void request(const LedgerRequestEvent& event);

    /**
     * Emit one shard-worker lifecycle event (`worker`): slot index,
     * action ("spawn", "crash", "timeout_kill", "spawn_failure",
     * "quarantine"), and an action-specific detail (pid for spawns,
     * consecutive-crash count otherwise).
     */
    void worker(unsigned slot, const std::string& action,
                std::uint64_t detail);

    /** Emit the run_end summary and close the stream. */
    void runEnd(int exit_code, int errors, int warnings);

  private:
    void emitLine(const std::string& line);

    std::mutex mu_;
    std::ofstream out_;
    bool enabled_ = false;

    // Tallies folded into run_end.
    std::uint64_t units_ = 0;
    std::uint64_t unit_failures_ = 0;
    std::uint64_t truncations_ = 0;
    std::uint64_t cache_hits_ = 0;
    std::uint64_t cache_misses_ = 0;
    std::uint64_t total_visits_ = 0;
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_RUN_LEDGER_H
