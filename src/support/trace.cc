#include "support/trace.h"

#include "support/text.h"

#include <algorithm>
#include <ostream>

namespace mc::support {

namespace {

/**
 * One thread's cache of (recorder id -> buffer). Keyed by the recorder's
 * unique id, never its address: ids are monotonically allocated, so an id
 * in the cache can never be confused with a later recorder that happens
 * to be constructed at a freed recorder's address. Stale entries (from
 * destroyed recorders) are never matched and simply linger — bounded by
 * the number of recorders a thread ever touches.
 */
struct BufferCacheEntry
{
    std::uint64_t recorder_id;
    void* buffer;
};

thread_local std::vector<BufferCacheEntry> t_buffer_cache;

std::uint64_t
nextRecorderId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

TraceRecorder::TraceRecorder() : id_(nextRecorderId()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder&
TraceRecorder::global()
{
    static TraceRecorder recorder;
    return recorder;
}

TraceRecorder::ThreadBuffer&
TraceRecorder::localBuffer()
{
    for (const BufferCacheEntry& e : t_buffer_cache)
        if (e.recorder_id == id_)
            return *static_cast<ThreadBuffer*>(e.buffer);
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    ThreadBuffer& buf = *buffers_.back();
    buf.tid = next_tid_++;
    t_buffer_cache.push_back({id_, &buf});
    return buf;
}

void
TraceRecorder::addEvent(TraceEvent event)
{
    ThreadBuffer& buf = localBuffer();
    event.tid = buf.tid;
    buf.events.push_back(std::move(event));
}

std::vector<TraceEvent>
TraceRecorder::events() const
{
    std::vector<TraceEvent> merged;
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::size_t total = 0;
        for (const auto& buf : buffers_)
            total += buf->events.size();
        merged.reserve(total);
        for (const auto& buf : buffers_)
            merged.insert(merged.end(), buf->events.begin(),
                          buf->events.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         if (a.ts_us != b.ts_us)
                             return a.ts_us < b.ts_us;
                         return a.tid < b.tid;
                     });
    return merged;
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buf : buffers_)
        buf->events.clear();
}

void
TraceRecorder::writeJson(std::ostream& os) const
{
    std::vector<TraceEvent> merged = events();
    os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
    bool first = true;
    for (const TraceEvent& e : merged) {
        os << (first ? "\n" : ",\n")
           << "    {\"name\": \"" << jsonEscape(e.name)
           << "\", \"cat\": \"" << jsonEscape(e.category)
           << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
           << ", \"ts\": " << e.ts_us << ", \"dur\": " << e.dur_us;
        if (!e.args.empty()) {
            os << ", \"args\": {";
            bool first_arg = true;
            for (const auto& [key, value] : e.args) {
                if (!first_arg)
                    os << ", ";
                os << '"' << jsonEscape(key) << "\": \""
                   << jsonEscape(value) << '"';
                first_arg = false;
            }
            os << '}';
        }
        os << '}';
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
}

} // namespace mc::support
