#include "support/trace.h"

#include "support/text.h"

#include <ostream>

namespace mc::support {

TraceRecorder&
TraceRecorder::global()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::writeJson(std::ostream& os) const
{
    os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
    bool first = true;
    for (const TraceEvent& e : events_) {
        os << (first ? "\n" : ",\n")
           << "    {\"name\": \"" << jsonEscape(e.name)
           << "\", \"cat\": \"" << jsonEscape(e.category)
           << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1"
           << ", \"ts\": " << e.ts_us << ", \"dur\": " << e.dur_us;
        if (!e.args.empty()) {
            os << ", \"args\": {";
            bool first_arg = true;
            for (const auto& [key, value] : e.args) {
                if (!first_arg)
                    os << ", ";
                os << '"' << jsonEscape(key) << "\": \""
                   << jsonEscape(value) << '"';
                first_arg = false;
            }
            os << '}';
        }
        os << '}';
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
}

} // namespace mc::support
