#include "support/text.h"

#include <algorithm>
#include <sstream>

namespace mc::support {

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (true) {
        std::size_t pos = s.find(sep, begin);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(begin));
            return out;
        }
        out.emplace_back(s.substr(begin, pos - begin));
        begin = pos + 1;
    }
}

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
join(const std::vector<std::string>& parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
formatTable(const std::vector<std::string>& header,
            const std::vector<std::vector<std::string>>& rows)
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto& row : rows)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](std::ostringstream& os,
                        const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            os << cell << std::string(widths[c] - cell.size(), ' ');
            if (c + 1 < widths.size())
                os << "  ";
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(os, header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows)
        emit_row(os, row);
    return os.str();
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                static const char* hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // namespace mc::support
