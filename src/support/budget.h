#ifndef MCHECK_SUPPORT_BUDGET_H
#define MCHECK_SUPPORT_BUDGET_H

#include <chrono>
#include <cstdint>

namespace mc::support {

/** Which limit stopped an analysis unit, if any. */
enum class BudgetStop : std::uint8_t
{
    None,
    /** Wall-clock deadline expired. */
    Deadline,
    /** Step allowance (walker visits and similar work items) spent. */
    Steps,
    /** Allocation allowance (tracked bytes) spent. */
    Bytes,
};

/** Short stable name ("deadline", "steps", "bytes", "none"). */
const char* budgetStopName(BudgetStop stop);

/**
 * Per-unit resource limits. Zero means "unlimited" for every field, so a
 * default-constructed BudgetLimits never trips.
 */
struct BudgetLimits
{
    /** Wall-clock deadline for the unit. */
    std::chrono::milliseconds deadline{0};
    /** Abstract work steps (one PathWalker visit charges one step). */
    std::uint64_t max_steps = 0;
    /** Tracked allocation bytes (path frontier state, mostly). */
    std::uint64_t max_bytes = 0;

    bool
    unlimited() const
    {
        return deadline.count() == 0 && max_steps == 0 && max_bytes == 0;
    }
};

/**
 * Resource governor for one analysis work unit.
 *
 * A Budget accumulates step and byte charges and polls a wall-clock
 * deadline. It complements the PathWalker's `max_visits` cap: visits
 * bound one walk, while a budget bounds a whole (function, checker) unit
 * — several walks, pattern matching, everything — in wall time and work.
 *
 * Charging is cheap: two integer adds per charge, with the deadline
 * clock read only once every `kDeadlineStride` step charges (a steady
 * clock read per visit would dominate small walks). Once a limit trips,
 * `stop()` latches — further charges cannot un-exhaust a budget.
 *
 * A Budget belongs to the single thread running its unit; it is NOT
 * thread-safe. Deep layers (the path walker) reach the active unit's
 * budget through the thread-local `Budget::current()`, installed by a
 * BudgetScope, so the governor spans layers without threading a
 * parameter through every checker signature.
 */
class Budget
{
  public:
    explicit Budget(const BudgetLimits& limits);

    /** Charge `n` abstract work steps. */
    void
    chargeStep(std::uint64_t n = 1)
    {
        steps_ += n;
        if (limits_.max_steps != 0 && steps_ > limits_.max_steps &&
            stop_ == BudgetStop::None)
            stop_ = BudgetStop::Steps;
    }

    /** Charge `n` tracked allocation bytes. */
    void
    chargeBytes(std::uint64_t n)
    {
        bytes_ += n;
        if (limits_.max_bytes != 0 && bytes_ > limits_.max_bytes &&
            stop_ == BudgetStop::None)
            stop_ = BudgetStop::Bytes;
    }

    /**
     * True once any limit has tripped. Polls the deadline when one is
     * configured and enough step charges have accumulated since the last
     * poll (or none have — idle callers may poll freely).
     */
    bool exhausted();

    /** The first limit that tripped, or None. Does not poll the clock. */
    BudgetStop stop() const { return stop_; }

    std::uint64_t steps() const { return steps_; }
    std::uint64_t bytes() const { return bytes_; }
    const BudgetLimits& limits() const { return limits_; }

    /** Wall time since construction. */
    std::chrono::milliseconds elapsed() const;

    /**
     * The calling thread's active budget, or nullptr outside any
     * BudgetScope. Never-failing: deep layers call this unconditionally.
     */
    static Budget* current();

  private:
    friend class BudgetScope;

    /** Step charges between deadline polls. */
    static constexpr std::uint64_t kDeadlineStride = 256;

    BudgetLimits limits_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t steps_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t next_poll_ = 0;
    BudgetStop stop_ = BudgetStop::None;
};

/**
 * RAII installer: makes `budget` the calling thread's Budget::current()
 * for the scope's lifetime, restoring the previous one on exit (scopes
 * nest; the innermost wins). Passing nullptr is allowed and simply
 * shadows any outer budget — a way to exempt a sub-computation.
 */
class BudgetScope
{
  public:
    explicit BudgetScope(Budget* budget);
    ~BudgetScope();

    BudgetScope(const BudgetScope&) = delete;
    BudgetScope& operator=(const BudgetScope&) = delete;

  private:
    Budget* prev_;
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_BUDGET_H
