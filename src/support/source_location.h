#ifndef MCHECK_SUPPORT_SOURCE_LOCATION_H
#define MCHECK_SUPPORT_SOURCE_LOCATION_H

#include <cstdint>
#include <functional>

namespace mc::support {

/**
 * A position in a source file registered with a SourceManager.
 *
 * Locations are value types: a (file id, line, column) triple. Line and
 * column are 1-based; file id 0 is reserved for "unknown / synthesized".
 */
struct SourceLoc
{
    std::int32_t file_id = 0;
    std::int32_t line = 0;
    std::int32_t column = 0;

    /** True if this location refers to a real registered file. */
    bool isValid() const { return file_id > 0 && line > 0; }

    friend bool operator==(const SourceLoc&, const SourceLoc&) = default;

    /** Orders locations within a file by (line, column). */
    friend bool
    operator<(const SourceLoc& a, const SourceLoc& b)
    {
        if (a.file_id != b.file_id) return a.file_id < b.file_id;
        if (a.line != b.line) return a.line < b.line;
        return a.column < b.column;
    }
};

} // namespace mc::support

template <>
struct std::hash<mc::support::SourceLoc>
{
    std::size_t
    operator()(const mc::support::SourceLoc& loc) const noexcept
    {
        std::size_t h = static_cast<std::size_t>(loc.file_id);
        h = h * 1000003u + static_cast<std::size_t>(loc.line);
        h = h * 1000003u + static_cast<std::size_t>(loc.column);
        return h;
    }
};

#endif // MCHECK_SUPPORT_SOURCE_LOCATION_H
