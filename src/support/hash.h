#ifndef MCHECK_SUPPORT_HASH_H
#define MCHECK_SUPPORT_HASH_H

#include <cstdint>
#include <string>
#include <string_view>

namespace mc::support {

/**
 * Streaming FNV-1a 64-bit hasher.
 *
 * Used wherever the system needs a *stable* content hash — one whose
 * value survives process restarts and is identical across platforms —
 * most importantly for the analysis cache's content-addressed keys
 * (std::hash gives no such guarantee). Strings are length-prefixed so
 * adjacent fields cannot alias ("ab"+"c" vs "a"+"bc").
 */
class Fnv1a
{
  public:
    static constexpr std::uint64_t kOffset = 1469598103934665603ULL;
    static constexpr std::uint64_t kPrime = 1099511628211ULL;

    Fnv1a& bytes(const void* data, std::size_t n)
    {
        const unsigned char* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= kPrime;
        }
        return *this;
    }

    Fnv1a& str(std::string_view s)
    {
        u64(s.size());
        return bytes(s.data(), s.size());
    }

    Fnv1a& u64(std::uint64_t v)
    {
        // Fixed little-endian byte order, independent of host endianness.
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        return bytes(b, 8);
    }

    Fnv1a& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }

    Fnv1a& u8(std::uint8_t v) { return bytes(&v, 1); }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = kOffset;
};

/** One-shot hash of a byte string. */
inline std::uint64_t
fnv1a(std::string_view s)
{
    return Fnv1a().bytes(s.data(), s.size()).value();
}

/** Render a 64-bit hash as 16 lowercase hex digits (cache file names). */
inline std::string
hashHex(std::uint64_t h)
{
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

} // namespace mc::support

#endif // MCHECK_SUPPORT_HASH_H
