#include "support/run_ledger.h"

#include "support/metrics.h"
#include "support/text.h"
#include "support/version.h"

#include <sstream>
#include <string_view>

namespace mc::support {

namespace {

thread_local LedgerUnitStats* t_unit_stats = nullptr;

std::string
quoted(const std::string& s)
{
    return "\"" + jsonEscape(s) + "\"";
}

const char*
boolName(bool b)
{
    return b ? "true" : "false";
}

} // namespace

LedgerUnitStats*
LedgerUnitStats::current()
{
    return t_unit_stats;
}

LedgerUnitScope::LedgerUnitScope(LedgerUnitStats* stats)
    : prev_(t_unit_stats)
{
    t_unit_stats = stats;
}

LedgerUnitScope::~LedgerUnitScope()
{
    t_unit_stats = prev_;
}

RunLedger&
RunLedger::global()
{
    static RunLedger ledger;
    return ledger;
}

bool
RunLedger::open(const std::string& path)
{
    std::lock_guard<std::mutex> lock(mu_);
    out_.open(path, std::ios::app);
    enabled_ = out_.good();
    return enabled_;
}

void
RunLedger::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (out_.is_open())
        out_.close();
    enabled_ = false;
}

void
RunLedger::emitLine(const std::string& line)
{
    out_ << line << '\n';
    MetricsRegistry& metrics = MetricsRegistry::global();
    if (metrics.enabled())
        metrics.counter("ledger.events").add();
}

void
RunLedger::runStart(const std::vector<std::string>& args, bool witness,
                    unsigned witness_limit, unsigned jobs)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_)
        return;
    std::ostringstream os;
    os << "{\"event\": \"run_start\", \"tool\": " << quoted(kToolName)
       << ", \"version\": " << quoted(kToolVersion) << ", \"args\": [";
    for (std::size_t i = 0; i < args.size(); ++i)
        os << (i ? ", " : "") << quoted(args[i]);
    os << "], \"witness\": " << boolName(witness)
       << ", \"witness_limit\": " << witness_limit
       << ", \"jobs\": " << jobs << "}";
    emitLine(os.str());
}

void
RunLedger::unit(const LedgerUnitEvent& event)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_)
        return;
    ++units_;
    unit_failures_ += event.failed ? 1 : 0;
    truncations_ += event.truncated ? 1 : 0;
    cache_hits_ += std::string_view(event.cache) == "hit" ? 1 : 0;
    cache_misses_ += std::string_view(event.cache) == "miss" ? 1 : 0;
    total_visits_ += event.visits;
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "{\"event\": \"unit\", \"function\": " << quoted(event.function)
       << ", \"checker\": " << quoted(event.checker)
       << ", \"wall_ms\": " << event.wall_ms
       << ", \"visits\": " << event.visits
       << ", \"pruned_edges\": " << event.pruned_edges
       << ", \"prune_cache_hits\": " << event.prune_cache_hits
       << ", \"prune_skipped_nary\": " << event.prune_skipped_nary
       << ", \"cache\": \""
       << event.cache << "\", \"budget_stop\": \"" << event.budget_stop
       << "\", \"truncated\": " << boolName(event.truncated)
       << ", \"failed\": " << boolName(event.failed)
       << ", \"degraded_parse\": " << boolName(event.degraded_parse);
    if (event.worker >= 0)
        os << ", \"worker\": " << event.worker
           << ", \"attempts\": " << event.attempts;
    os << "}";
    emitLine(os.str());
}

void
RunLedger::worker(unsigned slot, const std::string& action,
                  std::uint64_t detail)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_)
        return;
    std::ostringstream os;
    os << "{\"event\": \"worker\", \"worker\": " << slot
       << ", \"action\": " << quoted(action)
       << ", \"detail\": " << detail << "}";
    emitLine(os.str());
}

void
RunLedger::request(const LedgerRequestEvent& event)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_)
        return;
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "{\"event\": \"request\", \"id\": " << event.id
       << ", \"method\": " << quoted(event.method)
       << ", \"status\": " << quoted(event.status)
       << ", \"exit_code\": " << event.exit_code
       << ", \"wall_ms\": " << event.wall_ms
       << ", \"units_total\": " << event.units_total
       << ", \"units_reused\": " << event.units_reused
       << ", \"files_reparsed\": " << event.files_reparsed
       << ", \"program_reused\": " << boolName(event.program_reused)
       << "}";
    emitLine(os.str());
}

void
RunLedger::runEnd(int exit_code, int errors, int warnings)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_)
        return;
    std::ostringstream os;
    os << "{\"event\": \"run_end\", \"exit_code\": " << exit_code
       << ", \"errors\": " << errors << ", \"warnings\": " << warnings
       << ", \"units\": " << units_
       << ", \"unit_failures\": " << unit_failures_
       << ", \"budget_truncations\": " << truncations_
       << ", \"cache_hits\": " << cache_hits_
       << ", \"cache_misses\": " << cache_misses_
       << ", \"total_visits\": " << total_visits_ << "}";
    emitLine(os.str());
    out_.close();
    enabled_ = false;
}

} // namespace mc::support
