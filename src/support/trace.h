#ifndef MCHECK_SUPPORT_TRACE_H
#define MCHECK_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mc::support {

/**
 * One complete ("ph":"X") trace event: a named span with a category, a
 * start timestamp, a duration (both microseconds relative to the
 * recorder's enable time), the recording thread's lane id, and optional
 * string args.
 */
struct TraceEvent
{
    std::string name;
    std::string category;
    std::uint64_t ts_us = 0;
    std::uint64_t dur_us = 0;
    /** Trace lane ("tid" in the viewer): 1 = first thread seen. */
    std::uint32_t tid = 1;
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Records spans and exports them in the Chrome trace-event JSON format,
 * loadable in chrome://tracing and Perfetto (ui.perfetto.dev).
 *
 * Like MetricsRegistry, the recorder is disabled by default and
 * instrumentation sites guard on `enabled()`: a disabled recorder costs
 * one inlined boolean load per engine run and never reads the clock.
 *
 * Concurrency: each thread appends to its own buffer (registered once per
 * thread, under a lock; appends are lock-free thereafter), so worker
 * threads of the parallel engine never contend. Buffers are merged, in
 * timestamp order, when events are read or flushed — `events()`,
 * `writeJson`, and `clear` expect a quiesced recorder (the engine joins
 * its pool first).
 */
class TraceRecorder
{
  public:
    TraceRecorder();
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    /** The process-wide instance used by all instrumentation sites. */
    static TraceRecorder& global();

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /** Enabling (re)anchors the timestamp origin at "now". */
    void
    setEnabled(bool on)
    {
        if (on)
            origin_ = std::chrono::steady_clock::now();
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Microseconds since the recorder was enabled. */
    std::uint64_t
    nowUs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - origin_)
                .count());
    }

    /** Record one event into the calling thread's buffer. Thread-safe. */
    void addEvent(TraceEvent event);

    /**
     * All recorded events merged across thread buffers, ordered by
     * (timestamp, lane). Snapshot by value: per-thread buffers stay
     * private until this merge.
     */
    std::vector<TraceEvent> events() const;

    /** Drop all recorded events (buffers stay registered). */
    void clear();

    /**
     * Write {"traceEvents": [...], "displayTimeUnit": "ms"}. Every event
     * is a complete span ("ph":"X") on pid 1; tid is the lane of the
     * thread that recorded the span.
     */
    void writeJson(std::ostream& os) const;

  private:
    struct ThreadBuffer
    {
        std::uint32_t tid = 1;
        std::vector<TraceEvent> events;
    };

    /** This thread's buffer, registering it on first use. */
    ThreadBuffer& localBuffer();

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point origin_;
    /** Distinguishes recorder instances in the thread-local cache. */
    std::uint64_t id_ = 0;
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::uint32_t next_tid_ = 1;
};

/**
 * RAII span: records a complete event on the recorder covering the
 * object's lifetime. Constructed against a TraceRecorder (or nullptr for
 * the disabled case — then nothing happens, the clock is never read).
 *
 *     auto& tr = TraceRecorder::global();
 *     TraceSpan span(tr.enabled() ? &tr : nullptr, sm.name(), "engine");
 *     span.arg("function", fn_name);
 */
class TraceSpan
{
  public:
    TraceSpan(TraceRecorder* recorder, std::string name,
              std::string category)
        : recorder_(recorder)
    {
        if (!recorder_)
            return;
        event_.name = std::move(name);
        event_.category = std::move(category);
        event_.ts_us = recorder_->nowUs();
    }

    ~TraceSpan() { finish(); }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    /** Attach a string arg (shown in the viewer's detail pane). */
    void
    arg(std::string key, std::string value)
    {
        if (recorder_)
            event_.args.emplace_back(std::move(key), std::move(value));
    }

    /** Close the span now instead of at destruction (idempotent). */
    void
    finish()
    {
        if (!recorder_)
            return;
        event_.dur_us = recorder_->nowUs() - event_.ts_us;
        recorder_->addEvent(std::move(event_));
        recorder_ = nullptr;
    }

  private:
    TraceRecorder* recorder_;
    TraceEvent event_;
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_TRACE_H
