#ifndef MCHECK_SUPPORT_SOURCE_MANAGER_H
#define MCHECK_SUPPORT_SOURCE_MANAGER_H

#include "support/source_location.h"

#include <string>
#include <string_view>
#include <vector>

namespace mc::support {

/**
 * Owns the text of every source file seen by a checking run and maps
 * SourceLoc values back to file names, lines, and snippets.
 *
 * Files are registered once (by name + contents) and referred to by the
 * integer id embedded in SourceLoc. The protocol corpus generator registers
 * synthesized files here exactly like on-disk ones, so diagnostics against
 * generated protocols print real line text.
 */
class SourceManager
{
  public:
    SourceManager();

    SourceManager(const SourceManager&) = delete;
    SourceManager& operator=(const SourceManager&) = delete;

    /**
     * Register a file and return its id (usable in SourceLoc::file_id).
     * The contents are copied and retained for the manager's lifetime.
     */
    std::int32_t addFile(std::string name, std::string contents);

    /**
     * Replace the contents of an already-registered file, keeping its id
     * and name. The resident checking server uses this to apply document
     * edits without renumbering files: diagnostic emission sorts by
     * file_id, so ids must stay in registration order for the server's
     * output to match a fresh batch run over the same file list.
     * SourceLocs minted against the old contents become stale — callers
     * must re-parse the file before anything consults them. Returns false
     * (and changes nothing) for an unknown id or the "<unknown>" slot.
     */
    bool replaceFile(std::int32_t file_id, std::string contents);

    /** Id of the file registered under `name`, or -1. Latest id wins. */
    std::int32_t findFile(std::string_view name) const;

    /** Number of registered files. */
    int fileCount() const { return static_cast<int>(files_.size()) - 1; }

    /** Name of the file with the given id ("<unknown>" for id 0). */
    const std::string& fileName(std::int32_t file_id) const;

    /** Full contents of the file with the given id. */
    std::string_view fileContents(std::int32_t file_id) const;

    /**
     * The text of one line (1-based, without the trailing newline).
     * Returns an empty view for out-of-range requests.
     */
    std::string_view lineText(std::int32_t file_id, std::int32_t line) const;

    /** Number of lines in the file. */
    int lineCount(std::int32_t file_id) const;

    /** Formats a location as "file:line:col" for diagnostics. */
    std::string describe(const SourceLoc& loc) const;

  private:
    struct File
    {
        std::string name;
        std::string contents;
        /** Byte offset of the start of each line, plus a final sentinel. */
        std::vector<std::size_t> line_offsets;
    };

    const File& file(std::int32_t file_id) const;

    std::vector<File> files_;
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_SOURCE_MANAGER_H
