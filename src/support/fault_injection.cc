#include "support/fault_injection.h"

#if defined(MCHECK_FAULT_INJECTION)

#include "support/hash.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace mc::support::fault {

namespace {

struct Arming
{
    std::string site;
    unsigned long n = 0; // 0 = disarmed
};

std::mutex g_mutex;
Arming g_arming;
std::atomic<unsigned long> g_calls{0};     // counted-probe calls at the site
std::atomic<unsigned long> g_triggered{0}; // probes that fired

Arming
snapshot()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_arming;
}

} // namespace

bool
arm(std::string_view spec)
{
    std::size_t colon = spec.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == spec.size())
        return false;
    unsigned long n = 0;
    for (char c : spec.substr(colon + 1)) {
        if (c < '0' || c > '9')
            return false;
        n = n * 10 + static_cast<unsigned long>(c - '0');
        if (n > 1000000000UL)
            return false;
    }
    if (n == 0)
        return false;
    std::lock_guard<std::mutex> lock(g_mutex);
    g_arming.site = std::string(spec.substr(0, colon));
    g_arming.n = n;
    g_calls.store(0, std::memory_order_relaxed);
    g_triggered.store(0, std::memory_order_relaxed);
    return true;
}

bool
armFromEnv()
{
    const char* spec = std::getenv("MCCHECK_FAULT_INJECT");
    if (spec == nullptr || *spec == '\0')
        return false;
    return arm(spec);
}

void
disarm()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_arming = Arming{};
    g_calls.store(0, std::memory_order_relaxed);
    g_triggered.store(0, std::memory_order_relaxed);
}

bool
armed()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_arming.n != 0;
}

unsigned long
triggered()
{
    return g_triggered.load(std::memory_order_relaxed);
}

void
probe(const char* site, std::string_view key)
{
    Arming a = snapshot();
    if (a.n == 0 || a.site != site)
        return;
    // Pure function of the unit's identity: the same keys fail no matter
    // how units are scheduled across threads.
    if (fnv1a(key) % a.n != 0)
        return;
    g_triggered.fetch_add(1, std::memory_order_relaxed);
    throw InjectedFault(site, std::string(key));
}

void
probe(const char* site)
{
    Arming a = snapshot();
    if (a.n == 0 || a.site != site)
        return;
    unsigned long call = g_calls.fetch_add(1, std::memory_order_relaxed) + 1;
    if (call % a.n != 0)
        return;
    g_triggered.fetch_add(1, std::memory_order_relaxed);
    throw InjectedFault(site, std::string());
}

} // namespace mc::support::fault

#endif // MCHECK_FAULT_INJECTION
