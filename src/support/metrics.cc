#include "support/metrics.h"

#include "support/text.h"

#include <ostream>

namespace mc::support {

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[name];
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[name];
}

Timer&
MetricsRegistry::timer(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return timers_[name];
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return histograms_[name];
}

std::uint64_t
MetricsRegistry::counterValue(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::uint64_t
MetricsRegistry::gaugeValue(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second.value();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_)
        c.reset();
    for (auto& [name, g] : gauges_)
        g.reset();
    for (auto& [name, t] : timers_)
        t.reset();
    for (auto& [name, h] : histograms_)
        h.reset();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    timers_.clear();
    histograms_.clear();
}

void
MetricsRegistry::writeJson(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    // std::map iteration gives sorted, deterministic key order.
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << c.value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << g.value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"timers\": {";
    first = true;
    for (const auto& [name, t] : timers_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"count\": " << t.count()
           << ", \"total_ms\": " << t.totalMillis()
           << ", \"mean_ms\": " << t.meanNanos() / 1e6
           << ", \"min_ms\": " << static_cast<double>(t.minNanos()) / 1e6
           << ", \"max_ms\": " << static_cast<double>(t.maxNanos()) / 1e6
           << '}';
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"count\": " << h.count()
           << ", \"p50\": " << h.percentile(50.0)
           << ", \"p95\": " << h.percentile(95.0)
           << ", \"max\": " << h.max() << '}';
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

} // namespace mc::support
