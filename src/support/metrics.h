#ifndef MCHECK_SUPPORT_METRICS_H
#define MCHECK_SUPPORT_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace mc::support {

/**
 * A monotonically increasing counter. Handles returned by
 * MetricsRegistry::counter are stable for the registry's lifetime, so hot
 * loops can hold one and increment without a map lookup.
 *
 * Thread-safe: `add` is a relaxed atomic fetch-add, so worker threads of
 * the parallel checking engine publish into one shared instrument without
 * locks; the merged total is exact regardless of interleaving.
 */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A high-water-mark gauge: `observe` keeps the maximum value seen since
 * the last reset (peak frontier size, worst-case path counts).
 *
 * Thread-safe via an atomic max-merge: concurrent observers race only to
 * raise the value, so the final reading is the true maximum across all
 * threads — max is commutative, making the merge order irrelevant.
 */
class Gauge
{
  public:
    void
    observe(std::uint64_t v)
    {
        std::uint64_t cur = value_.load(std::memory_order_relaxed);
        while (v > cur &&
               !value_.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed)) {
        }
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Accumulated wall time plus an invocation count. Fed by ScopedTimer or
 * directly via `add`.
 *
 * Thread-safe: both fields are relaxed atomics. The two increments of one
 * `add` are not a single transaction, so a concurrent reader can observe
 * a count/total pair mid-update; totals are exact once writers quiesce
 * (reports are written after the pool joins).
 */
class Timer
{
  public:
    void
    add(std::chrono::nanoseconds elapsed)
    {
        std::uint64_t ns = static_cast<std::uint64_t>(elapsed.count());
        total_ns_.fetch_add(ns, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        // min/max via CAS max-merge (commutative; order irrelevant).
        std::uint64_t cur = min_ns_.load(std::memory_order_relaxed);
        while (ns < cur && !min_ns_.compare_exchange_weak(
                               cur, ns, std::memory_order_relaxed)) {
        }
        cur = max_ns_.load(std::memory_order_relaxed);
        while (ns > cur && !max_ns_.compare_exchange_weak(
                               cur, ns, std::memory_order_relaxed)) {
        }
    }

    std::uint64_t totalNanos() const
    {
        return total_ns_.load(std::memory_order_relaxed);
    }

    double totalMillis() const
    {
        return static_cast<double>(totalNanos()) / 1e6;
    }

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Shortest recorded interval in ns (0 before any add). */
    std::uint64_t
    minNanos() const
    {
        std::uint64_t v = min_ns_.load(std::memory_order_relaxed);
        return v == kNoMin ? 0 : v;
    }

    /** Longest recorded interval in ns (0 before any add). */
    std::uint64_t maxNanos() const
    {
        return max_ns_.load(std::memory_order_relaxed);
    }

    /** Mean interval in ns (0 before any add). */
    double
    meanNanos() const
    {
        std::uint64_t n = count();
        return n == 0 ? 0.0
                      : static_cast<double>(totalNanos()) /
                            static_cast<double>(n);
    }

    void
    reset()
    {
        total_ns_.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        min_ns_.store(kNoMin, std::memory_order_relaxed);
        max_ns_.store(0, std::memory_order_relaxed);
    }

  private:
    static constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

    std::atomic<std::uint64_t> total_ns_{0};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> min_ns_{kNoMin};
    std::atomic<std::uint64_t> max_ns_{0};
};

/**
 * Fixed-bucket distribution: power-of-two buckets (bucket i holds values
 * whose bit width is i, so bucket bounds never drift), an exact count,
 * and an exact maximum. `percentile` answers with the upper bound of the
 * bucket containing the requested rank, clamped to the true max — a
 * deterministic, allocation-free approximation that is exact enough for
 * p50/p95 trend lines over unit wall times and visit counts.
 *
 * Thread-safe the same way Counter is: every field is a relaxed atomic,
 * readers expect a quiesced registry for consistent snapshots.
 */
class Histogram
{
  public:
    void
    observe(std::uint64_t v)
    {
        buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t cur = max_.load(std::memory_order_relaxed);
        while (v > cur && !max_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    /**
     * Upper bound of the bucket holding the `p`-th percentile value
     * (p in [0, 100]), clamped to the exact max. 0 when empty.
     */
    std::uint64_t
    percentile(double p) const
    {
        std::uint64_t n = count();
        if (n == 0)
            return 0;
        if (p < 0.0)
            p = 0.0;
        if (p > 100.0)
            p = 100.0;
        // Rank of the requested value, 1-based, ceil'd so p100 == max.
        std::uint64_t rank = static_cast<std::uint64_t>(
            (p / 100.0) * static_cast<double>(n) + 0.9999999);
        if (rank < 1)
            rank = 1;
        std::uint64_t seen = 0;
        for (int b = 0; b < kBuckets; ++b) {
            seen += buckets_[b].load(std::memory_order_relaxed);
            if (seen >= rank) {
                std::uint64_t upper =
                    b == 0 ? 0
                           : (b >= 64 ? ~std::uint64_t{0}
                                      : (std::uint64_t{1} << b) - 1);
                std::uint64_t mx = max();
                return upper < mx ? upper : mx;
            }
        }
        return max();
    }

    void
    reset()
    {
        for (auto& b : buckets_)
            b.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

  private:
    /** 0 -> bucket 0; otherwise the value's bit width (1..64). */
    static int
    bucketOf(std::uint64_t v)
    {
        int w = 0;
        while (v != 0) {
            ++w;
            v >>= 1;
        }
        return w;
    }

    static constexpr int kBuckets = 65;

    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * Process-wide registry of named counters, gauges, and timers.
 *
 * Metric names are dotted stable keys ("engine.visits",
 * "checker.lanes.wall_ms") intended for BENCH_*.json trend tracking: once
 * published, a key's meaning never changes. Instruments are created on
 * first use and persist (zeroed, not dropped) across `reset`, so a report
 * always lists every metric the process has touched.
 *
 * The registry is disabled by default. Instrumentation sites are expected
 * to keep cheap local tallies unconditionally and only publish into the
 * registry behind `enabled()`, which makes the disabled configuration
 * cost one inlined boolean load per engine run — nothing per statement.
 *
 * Concurrency: get-or-create takes a mutex, but the returned references
 * are stable (std::map nodes never move), so hot paths look up once and
 * then touch only the lock-free instruments. The map accessors
 * (`counters()` et al.) and `writeJson` expect a quiesced registry — the
 * engine joins its pool before reporting.
 */
class MetricsRegistry
{
  public:
    /** The process-wide instance used by all instrumentation sites. */
    static MetricsRegistry& global();

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Get-or-create; the returned reference is stable. Thread-safe. */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Timer& timer(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** Value of a counter, or 0 if it was never touched. Thread-safe. */
    std::uint64_t counterValue(const std::string& name) const;
    std::uint64_t gaugeValue(const std::string& name) const;

    const std::map<std::string, Counter>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge>& gauges() const { return gauges_; }
    const std::map<std::string, Timer>& timers() const { return timers_; }
    const std::map<std::string, Histogram>& histograms() const
    {
        return histograms_;
    }

    /** Zero every instrument, keeping registrations. */
    void reset();

    /** Drop every instrument (invalidates outstanding handles). */
    void clear();

    /**
     * Write the report as JSON with stable keys:
     * {"counters": {name: n}, "gauges": {name: n},
     *  "timers": {name: {"count", "total_ms", "mean_ms", "min_ms",
     *                    "max_ms"}},
     *  "histograms": {name: {"count", "p50", "p95", "max"}}}
     */
    void writeJson(std::ostream& os) const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Timer> timers_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * RAII wall timer. Constructed against a Timer (or nullptr for the
 * disabled case, making the whole object a no-op — the clock is never
 * read). Typical use:
 *
 *     auto& m = MetricsRegistry::global();
 *     ScopedTimer t(m.enabled() ? &m.timer("engine.run") : nullptr);
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer* timer) : timer_(timer)
    {
        if (timer_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer() { stop(); }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    /** Record now instead of at destruction (idempotent). */
    void
    stop()
    {
        if (!timer_)
            return;
        timer_->add(std::chrono::steady_clock::now() - start_);
        timer_ = nullptr;
    }

  private:
    Timer* timer_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_METRICS_H
