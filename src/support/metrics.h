#ifndef MCHECK_SUPPORT_METRICS_H
#define MCHECK_SUPPORT_METRICS_H

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace mc::support {

/**
 * A monotonically increasing counter. Handles returned by
 * MetricsRegistry::counter are stable for the registry's lifetime, so hot
 * loops can hold one and increment without a map lookup.
 */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A high-water-mark gauge: `observe` keeps the maximum value seen since
 * the last reset (peak frontier size, worst-case path counts).
 */
class Gauge
{
  public:
    void
    observe(std::uint64_t v)
    {
        if (v > value_)
            value_ = v;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Accumulated wall time plus an invocation count. Fed by ScopedTimer or
 * directly via `add`.
 */
class Timer
{
  public:
    void
    add(std::chrono::nanoseconds elapsed)
    {
        total_ns_ += static_cast<std::uint64_t>(elapsed.count());
        ++count_;
    }

    std::uint64_t totalNanos() const { return total_ns_; }
    double totalMillis() const { return static_cast<double>(total_ns_) / 1e6; }
    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        total_ns_ = 0;
        count_ = 0;
    }

  private:
    std::uint64_t total_ns_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * Process-wide registry of named counters, gauges, and timers.
 *
 * Metric names are dotted stable keys ("engine.visits",
 * "checker.lanes.wall_ms") intended for BENCH_*.json trend tracking: once
 * published, a key's meaning never changes. Instruments are created on
 * first use and persist (zeroed, not dropped) across `reset`, so a report
 * always lists every metric the process has touched.
 *
 * The registry is disabled by default. Instrumentation sites are expected
 * to keep cheap local tallies unconditionally and only publish into the
 * registry behind `enabled()`, which makes the disabled configuration
 * cost one inlined boolean load per engine run — nothing per statement.
 */
class MetricsRegistry
{
  public:
    /** The process-wide instance used by all instrumentation sites. */
    static MetricsRegistry& global();

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /** Get-or-create; the returned reference is stable. */
    Counter& counter(const std::string& name) { return counters_[name]; }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    Timer& timer(const std::string& name) { return timers_[name]; }

    /** Value of a counter, or 0 if it was never touched. */
    std::uint64_t counterValue(const std::string& name) const;
    std::uint64_t gaugeValue(const std::string& name) const;

    const std::map<std::string, Counter>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge>& gauges() const { return gauges_; }
    const std::map<std::string, Timer>& timers() const { return timers_; }

    /** Zero every instrument, keeping registrations. */
    void reset();

    /** Drop every instrument (invalidates outstanding handles). */
    void clear();

    /**
     * Write the report as JSON with stable keys:
     * {"counters": {name: n}, "gauges": {name: n},
     *  "timers": {name: {"count": n, "total_ms": x}}}
     */
    void writeJson(std::ostream& os) const;

  private:
    bool enabled_ = false;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Timer> timers_;
};

/**
 * RAII wall timer. Constructed against a Timer (or nullptr for the
 * disabled case, making the whole object a no-op — the clock is never
 * read). Typical use:
 *
 *     auto& m = MetricsRegistry::global();
 *     ScopedTimer t(m.enabled() ? &m.timer("engine.run") : nullptr);
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer* timer) : timer_(timer)
    {
        if (timer_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer() { stop(); }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    /** Record now instead of at destruction (idempotent). */
    void
    stop()
    {
        if (!timer_)
            return;
        timer_->add(std::chrono::steady_clock::now() - start_);
        timer_ = nullptr;
    }

  private:
    Timer* timer_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_METRICS_H
