#include "support/budget.h"

namespace mc::support {

namespace {
thread_local Budget* tl_current_budget = nullptr;
} // namespace

const char*
budgetStopName(BudgetStop stop)
{
    switch (stop) {
    case BudgetStop::None:
        return "none";
    case BudgetStop::Deadline:
        return "deadline";
    case BudgetStop::Steps:
        return "steps";
    case BudgetStop::Bytes:
        return "bytes";
    }
    return "none";
}

Budget::Budget(const BudgetLimits& limits)
    : limits_(limits), start_(std::chrono::steady_clock::now())
{
}

bool
Budget::exhausted()
{
    if (stop_ != BudgetStop::None)
        return true;
    if (limits_.deadline.count() != 0 && steps_ >= next_poll_) {
        next_poll_ = steps_ + kDeadlineStride;
        if (elapsed() >= limits_.deadline) {
            stop_ = BudgetStop::Deadline;
            return true;
        }
    }
    return false;
}

std::chrono::milliseconds
Budget::elapsed() const
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start_);
}

Budget*
Budget::current()
{
    return tl_current_budget;
}

BudgetScope::BudgetScope(Budget* budget) : prev_(tl_current_budget)
{
    tl_current_budget = budget;
}

BudgetScope::~BudgetScope()
{
    tl_current_budget = prev_;
}

} // namespace mc::support
