#include "support/diagnostics.h"

#include "support/source_manager.h"
#include "support/text.h"
#include "support/version.h"

#include <algorithm>
#include <ostream>
#include <set>

namespace mc::support {

const char*
severityName(Severity sev)
{
    switch (sev) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
      case Severity::Note: return "note";
    }
    return "unknown";
}

bool
parseOutputFormat(const std::string& name, OutputFormat& out)
{
    if (name == "text") {
        out = OutputFormat::Text;
    } else if (name == "json") {
        out = OutputFormat::Json;
    } else if (name == "sarif") {
        out = OutputFormat::Sarif;
    } else {
        return false;
    }
    return true;
}

bool
DiagnosticSink::report(Diagnostic diag)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (diag.severity != Severity::Note) {
        auto [it, inserted] = seen_.emplace(
            DedupKey{diag.checker, diag.rule, diag.loc}, 1);
        if (!inserted) {
            ++it->second;
            return false;
        }
    }
    diags_.push_back(std::move(diag));
    return true;
}

int
DiagnosticSink::countLocked(Severity sev) const
{
    int n = 0;
    for (const auto& d : diags_)
        if (d.severity == sev)
            ++n;
    return n;
}

int
DiagnosticSink::count(Severity sev) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return countLocked(sev);
}

std::vector<std::size_t>
DiagnosticSink::emissionOrder() const
{
    std::vector<std::size_t> order(diags_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         const Diagnostic& da = diags_[a];
                         const Diagnostic& db = diags_[b];
                         if (!(da.loc == db.loc))
                             return da.loc < db.loc;
                         if (da.checker != db.checker)
                             return da.checker < db.checker;
                         return da.rule < db.rule;
                     });
    return order;
}

int
DiagnosticSink::countForChecker(const std::string& checker) const
{
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const auto& d : diags_)
        if (d.checker == checker)
            ++n;
    return n;
}

int
DiagnosticSink::countForChecker(const std::string& checker,
                                Severity sev) const
{
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const auto& d : diags_)
        if (d.checker == checker && d.severity == sev)
            ++n;
    return n;
}

void
DiagnosticSink::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    diags_.clear();
    seen_.clear();
}

void
DiagnosticSink::print(std::ostream& os, const SourceManager* sm) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t idx : emissionOrder()) {
        const Diagnostic& d = diags_[idx];
        if (sm) {
            os << sm->describe(d.loc);
        } else {
            os << "file" << d.loc.file_id << ':' << d.loc.line << ':'
               << d.loc.column;
        }
        os << ": " << severityName(d.severity) << ": [" << d.checker << '.'
           << d.rule << "] " << d.message << '\n';
        if (sm && d.loc.isValid()) {
            auto text = sm->lineText(d.loc.file_id, d.loc.line);
            if (!text.empty())
                os << "    " << text << '\n';
        }
        for (const auto& frame : d.trace)
            os << "    at " << frame << '\n';
    }
}

namespace {

/** File-name string for JSON emitters: resolved name or "file<id>". */
std::string
fileNameFor(const SourceLoc& loc, const SourceManager* sm)
{
    if (sm)
        return sm->fileName(loc.file_id);
    return "file" + std::to_string(loc.file_id);
}

/** SARIF `level` property for a severity. */
const char*
sarifLevel(Severity sev)
{
    switch (sev) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
      case Severity::Note: return "note";
    }
    return "none";
}

} // namespace

void
DiagnosticSink::printJson(std::ostream& os, const SourceManager* sm) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\n  \"tool\": {\"name\": \"" << kToolName
       << "\", \"version\": \"" << kToolVersion << "\"},\n"
       << "  \"counts\": {\"error\": " << countLocked(Severity::Error)
       << ", \"warning\": " << countLocked(Severity::Warning)
       << ", \"note\": " << countLocked(Severity::Note) << "},\n"
       << "  \"diagnostics\": [";
    bool first = true;
    for (std::size_t idx : emissionOrder()) {
        const Diagnostic& d = diags_[idx];
        os << (first ? "\n" : ",\n") << "    {\"severity\": \""
           << severityName(d.severity) << "\", \"file\": \""
           << jsonEscape(fileNameFor(d.loc, sm))
           << "\", \"line\": " << d.loc.line
           << ", \"column\": " << d.loc.column << ", \"checker\": \""
           << jsonEscape(d.checker) << "\", \"rule\": \""
           << jsonEscape(d.rule) << "\", \"message\": \""
           << jsonEscape(d.message) << '"';
        if (!d.trace.empty()) {
            os << ", \"trace\": [";
            for (std::size_t i = 0; i < d.trace.size(); ++i)
                os << (i ? ", " : "") << '"' << jsonEscape(d.trace[i])
                   << '"';
            os << ']';
        }
        os << '}';
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
}

void
DiagnosticSink::printSarif(std::ostream& os, const SourceManager* sm) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\n  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n  \"runs\": [{\n"
       << "    \"tool\": {\"driver\": {\"name\": \"" << kToolName
       << "\", \"version\": \"" << kToolVersion
       << "\", \"informationUri\": "
          "\"https://doi.org/10.1145/378993.379232\", \"rules\": [";

    // One reportingDescriptor per distinct checker.rule id, sorted.
    std::set<std::string> rule_ids;
    for (const Diagnostic& d : diags_)
        rule_ids.insert(d.checker + "." + d.rule);
    bool first = true;
    for (const std::string& id : rule_ids) {
        os << (first ? "\n" : ",\n") << "      {\"id\": \""
           << jsonEscape(id) << "\"}";
        first = false;
    }
    os << (first ? "" : "\n    ") << "]}},\n    \"results\": [";

    first = true;
    for (std::size_t idx : emissionOrder()) {
        const Diagnostic& d = diags_[idx];
        os << (first ? "\n" : ",\n") << "      {\"ruleId\": \""
           << jsonEscape(d.checker + "." + d.rule) << "\", \"level\": \""
           << sarifLevel(d.severity) << "\", \"message\": {\"text\": \""
           << jsonEscape(d.message) << "\"},\n"
           << "       \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << jsonEscape(fileNameFor(d.loc, sm))
           << "\"}, \"region\": {\"startLine\": " << std::max(d.loc.line, 1)
           << ", \"startColumn\": " << std::max(d.loc.column, 1)
           << "}}}]";
        if (!d.trace.empty()) {
            // The lanes checker's inter-procedural back-trace, rendered as
            // a SARIF stack (innermost frame first, as collected).
            os << ",\n       \"stacks\": [{\"message\": {\"text\": "
                  "\"call path\"}, \"frames\": [";
            for (std::size_t i = 0; i < d.trace.size(); ++i)
                os << (i ? ", " : "")
                   << "{\"location\": {\"message\": {\"text\": \""
                   << jsonEscape(d.trace[i]) << "\"}}}";
            os << "]}]";
        }
        os << '}';
        first = false;
    }
    os << (first ? "" : "\n    ") << "]\n  }]\n}\n";
}

void
DiagnosticSink::write(std::ostream& os, OutputFormat format,
                      const SourceManager* sm) const
{
    switch (format) {
      case OutputFormat::Text: print(os, sm); break;
      case OutputFormat::Json: printJson(os, sm); break;
      case OutputFormat::Sarif: printSarif(os, sm); break;
    }
}

} // namespace mc::support
