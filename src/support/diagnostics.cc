#include "support/diagnostics.h"

#include "support/source_manager.h"
#include "support/text.h"
#include "support/version.h"
#include "support/witness.h"

#include <algorithm>
#include <ostream>
#include <set>

namespace mc::support {

const char*
severityName(Severity sev)
{
    switch (sev) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
      case Severity::Note: return "note";
    }
    return "unknown";
}

bool
parseOutputFormat(const std::string& name, OutputFormat& out)
{
    if (name == "text") {
        out = OutputFormat::Text;
    } else if (name == "json") {
        out = OutputFormat::Json;
    } else if (name == "sarif") {
        out = OutputFormat::Sarif;
    } else {
        return false;
    }
    return true;
}

bool
DiagnosticSink::report(Diagnostic diag)
{
    // Attach path provenance at the moment of reporting: if the calling
    // thread is inside a walk with an active witness trail (installed by
    // the path walker), the finding inherits a snapshot of the path that
    // reached it. Findings that already carry a witness — cache replays,
    // unit-sink merges — keep theirs; the merge paths run with no trail
    // installed, so replayed provenance is never overwritten.
    if (diag.witness.empty()) {
        if (const WitnessTrail* trail = WitnessTrail::current();
            trail && trail->active()) {
            diag.witness = *trail->witness();
        } else if (diag.severity != Severity::Note && witnessEnabled()) {
            // Declaration-level findings (signature checks, parse
            // errors) are reported outside any walk, so no trail exists.
            // --witness still guarantees every finding carries
            // provenance: a single step naming the rule's evaluation
            // site, explicitly marked as having no path.
            WitnessStep step;
            step.from_state = "decl";
            step.to_state = "decl";
            step.loc = diag.loc;
            step.note = "rule " + diag.rule + ", structural (no path)";
            diag.witness.steps.push_back(std::move(step));
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (diag.severity != Severity::Note) {
        auto [it, inserted] = seen_.emplace(
            DedupKey{diag.checker, diag.rule, diag.loc}, 1);
        if (!inserted) {
            ++it->second;
            return false;
        }
    }
    diags_.push_back(std::move(diag));
    return true;
}

int
DiagnosticSink::countLocked(Severity sev) const
{
    int n = 0;
    for (const auto& d : diags_)
        if (d.severity == sev)
            ++n;
    return n;
}

int
DiagnosticSink::count(Severity sev) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return countLocked(sev);
}

std::vector<std::size_t>
DiagnosticSink::emissionOrder() const
{
    std::vector<std::size_t> order(diags_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         const Diagnostic& da = diags_[a];
                         const Diagnostic& db = diags_[b];
                         if (!(da.loc == db.loc))
                             return da.loc < db.loc;
                         if (da.checker != db.checker)
                             return da.checker < db.checker;
                         return da.rule < db.rule;
                     });
    return order;
}

int
DiagnosticSink::countForChecker(const std::string& checker) const
{
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const auto& d : diags_)
        if (d.checker == checker)
            ++n;
    return n;
}

int
DiagnosticSink::countForChecker(const std::string& checker,
                                Severity sev) const
{
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const auto& d : diags_)
        if (d.checker == checker && d.severity == sev)
            ++n;
    return n;
}

void
DiagnosticSink::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    diags_.clear();
    seen_.clear();
}

void
DiagnosticSink::print(std::ostream& os, const SourceManager* sm) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t idx : emissionOrder()) {
        const Diagnostic& d = diags_[idx];
        if (sm) {
            os << sm->describe(d.loc);
        } else {
            os << "file" << d.loc.file_id << ':' << d.loc.line << ':'
               << d.loc.column;
        }
        os << ": " << severityName(d.severity) << ": [" << d.checker << '.'
           << d.rule << "] " << d.message << '\n';
        if (sm && d.loc.isValid()) {
            auto text = sm->lineText(d.loc.file_id, d.loc.line);
            if (!text.empty())
                os << "    " << text << '\n';
        }
        for (const auto& frame : d.trace)
            os << "    at " << frame << '\n';
        if (!d.witness.empty()) {
            os << "    witness: blocks";
            if (d.witness.blocks.empty())
                os << " (none)";
            for (std::size_t i = 0; i < d.witness.blocks.size(); ++i)
                os << (i ? " -> " : " ") << d.witness.blocks[i];
            if (d.witness.truncated)
                os << " (truncated)";
            os << '\n';
            for (const WitnessStep& step : d.witness.steps) {
                os << "      step " << step.from_state << " => "
                   << step.to_state << " at ";
                if (sm) {
                    os << sm->describe(step.loc);
                } else {
                    os << "file" << step.loc.file_id << ':'
                       << step.loc.line << ':' << step.loc.column;
                }
                if (!step.note.empty())
                    os << " (" << step.note << ')';
                os << '\n';
            }
        }
    }
}

namespace {

/** File-name string for JSON emitters: resolved name or "file<id>". */
std::string
fileNameFor(const SourceLoc& loc, const SourceManager* sm)
{
    if (sm)
        return sm->fileName(loc.file_id);
    return "file" + std::to_string(loc.file_id);
}

/** SARIF `level` property for a severity. */
const char*
sarifLevel(Severity sev)
{
    switch (sev) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
      case Severity::Note: return "note";
    }
    return "none";
}

} // namespace

void
DiagnosticSink::printJson(std::ostream& os, const SourceManager* sm) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\n  \"tool\": {\"name\": \"" << kToolName
       << "\", \"version\": \"" << kToolVersion << "\"},\n"
       << "  \"counts\": {\"error\": " << countLocked(Severity::Error)
       << ", \"warning\": " << countLocked(Severity::Warning)
       << ", \"note\": " << countLocked(Severity::Note) << "},\n"
       << "  \"diagnostics\": [";
    bool first = true;
    for (std::size_t idx : emissionOrder()) {
        const Diagnostic& d = diags_[idx];
        os << (first ? "\n" : ",\n") << "    {\"severity\": \""
           << severityName(d.severity) << "\", \"file\": \""
           << jsonEscape(fileNameFor(d.loc, sm))
           << "\", \"line\": " << d.loc.line
           << ", \"column\": " << d.loc.column << ", \"checker\": \""
           << jsonEscape(d.checker) << "\", \"rule\": \""
           << jsonEscape(d.rule) << "\", \"message\": \""
           << jsonEscape(d.message) << '"';
        if (!d.trace.empty()) {
            os << ", \"trace\": [";
            for (std::size_t i = 0; i < d.trace.size(); ++i)
                os << (i ? ", " : "") << '"' << jsonEscape(d.trace[i])
                   << '"';
            os << ']';
        }
        if (!d.witness.empty()) {
            os << ", \"witness\": {\"truncated\": "
               << (d.witness.truncated ? "true" : "false")
               << ", \"blocks\": [";
            for (std::size_t i = 0; i < d.witness.blocks.size(); ++i)
                os << (i ? ", " : "") << d.witness.blocks[i];
            os << "], \"steps\": [";
            for (std::size_t i = 0; i < d.witness.steps.size(); ++i) {
                const WitnessStep& step = d.witness.steps[i];
                os << (i ? ", " : "") << "{\"from\": \""
                   << jsonEscape(step.from_state) << "\", \"to\": \""
                   << jsonEscape(step.to_state) << "\", \"file\": \""
                   << jsonEscape(fileNameFor(step.loc, sm))
                   << "\", \"line\": " << step.loc.line
                   << ", \"column\": " << step.loc.column
                   << ", \"note\": \"" << jsonEscape(step.note) << "\"}";
            }
            os << "]}";
        }
        os << '}';
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
}

void
DiagnosticSink::printSarif(std::ostream& os, const SourceManager* sm) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\n  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n  \"runs\": [{\n"
       << "    \"tool\": {\"driver\": {\"name\": \"" << kToolName
       << "\", \"version\": \"" << kToolVersion
       << "\", \"informationUri\": "
          "\"https://doi.org/10.1145/378993.379232\", \"rules\": [";

    // One reportingDescriptor per distinct checker.rule id, sorted.
    std::set<std::string> rule_ids;
    for (const Diagnostic& d : diags_)
        rule_ids.insert(d.checker + "." + d.rule);
    bool first = true;
    for (const std::string& id : rule_ids) {
        os << (first ? "\n" : ",\n") << "      {\"id\": \""
           << jsonEscape(id) << "\"}";
        first = false;
    }
    os << (first ? "" : "\n    ") << "]}},\n    \"results\": [";

    first = true;
    for (std::size_t idx : emissionOrder()) {
        const Diagnostic& d = diags_[idx];
        os << (first ? "\n" : ",\n") << "      {\"ruleId\": \""
           << jsonEscape(d.checker + "." + d.rule) << "\", \"level\": \""
           << sarifLevel(d.severity) << "\", \"message\": {\"text\": \""
           << jsonEscape(d.message) << "\"},\n"
           << "       \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << jsonEscape(fileNameFor(d.loc, sm))
           << "\"}, \"region\": {\"startLine\": " << std::max(d.loc.line, 1)
           << ", \"startColumn\": " << std::max(d.loc.column, 1)
           << "}}}]";
        if (!d.trace.empty()) {
            // The lanes checker's inter-procedural back-trace, rendered as
            // a SARIF stack (innermost frame first, as collected).
            os << ",\n       \"stacks\": [{\"message\": {\"text\": "
                  "\"call path\"}, \"frames\": [";
            for (std::size_t i = 0; i < d.trace.size(); ++i)
                os << (i ? ", " : "")
                   << "{\"location\": {\"message\": {\"text\": \""
                   << jsonEscape(d.trace[i]) << "\"}}}";
            os << "]}]";
        }
        if (!d.witness.empty()) {
            // Path provenance as a real SARIF codeFlow: one
            // threadFlowLocation per SM transition step (or one for the
            // finding itself when the witness carries only a block
            // path), so SARIF viewers can step along the witness.
            std::string flow = "block path:";
            if (d.witness.blocks.empty())
                flow += " (none)";
            for (std::size_t i = 0; i < d.witness.blocks.size(); ++i)
                flow += (i ? " -> " : " ") +
                        std::to_string(d.witness.blocks[i]);
            if (d.witness.truncated)
                flow += " (truncated)";
            os << ",\n       \"codeFlows\": [{\"message\": {\"text\": \""
               << jsonEscape(flow)
               << "\"}, \"threadFlows\": [{\"locations\": [";
            auto step_location = [&](const SourceLoc& loc,
                                     const std::string& text, bool lead) {
                os << (lead ? "" : ", ")
                   << "{\"location\": {\"physicalLocation\": "
                      "{\"artifactLocation\": {\"uri\": \""
                   << jsonEscape(fileNameFor(loc, sm))
                   << "\"}, \"region\": {\"startLine\": "
                   << std::max(loc.line, 1)
                   << ", \"startColumn\": " << std::max(loc.column, 1)
                   << "}}, \"message\": {\"text\": \"" << jsonEscape(text)
                   << "\"}}}";
            };
            if (d.witness.steps.empty()) {
                step_location(d.loc, "finding (" + flow + ")", true);
            } else {
                for (std::size_t i = 0; i < d.witness.steps.size(); ++i) {
                    const WitnessStep& step = d.witness.steps[i];
                    std::string text =
                        step.from_state + " => " + step.to_state;
                    if (!step.note.empty())
                        text += ": " + step.note;
                    step_location(step.loc, text, i == 0);
                }
            }
            os << "]}]}]";
        }
        os << '}';
        first = false;
    }
    os << (first ? "" : "\n    ") << "]\n  }]\n}\n";
}

void
DiagnosticSink::write(std::ostream& os, OutputFormat format,
                      const SourceManager* sm) const
{
    switch (format) {
      case OutputFormat::Text: print(os, sm); break;
      case OutputFormat::Json: printJson(os, sm); break;
      case OutputFormat::Sarif: printSarif(os, sm); break;
    }
}

} // namespace mc::support
