#include "support/diagnostics.h"

#include "support/source_manager.h"

#include <ostream>
#include <sstream>

namespace mc::support {

const char*
severityName(Severity sev)
{
    switch (sev) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
      case Severity::Note: return "note";
    }
    return "unknown";
}

bool
DiagnosticSink::report(Diagnostic diag)
{
    std::ostringstream key;
    key << diag.checker << '\x1f' << diag.rule << '\x1f' << diag.loc.file_id
        << ':' << diag.loc.line << ':' << diag.loc.column;
    if (diag.severity != Severity::Note) {
        auto [it, inserted] = seen_.emplace(key.str(), 1);
        if (!inserted) {
            ++it->second;
            return false;
        }
    }
    diags_.push_back(std::move(diag));
    return true;
}

int
DiagnosticSink::count(Severity sev) const
{
    int n = 0;
    for (const auto& d : diags_)
        if (d.severity == sev)
            ++n;
    return n;
}

int
DiagnosticSink::countForChecker(const std::string& checker) const
{
    int n = 0;
    for (const auto& d : diags_)
        if (d.checker == checker)
            ++n;
    return n;
}

int
DiagnosticSink::countForChecker(const std::string& checker,
                                Severity sev) const
{
    int n = 0;
    for (const auto& d : diags_)
        if (d.checker == checker && d.severity == sev)
            ++n;
    return n;
}

void
DiagnosticSink::clear()
{
    diags_.clear();
    seen_.clear();
}

void
DiagnosticSink::print(std::ostream& os, const SourceManager* sm) const
{
    for (const auto& d : diags_) {
        if (sm) {
            os << sm->describe(d.loc);
        } else {
            os << "file" << d.loc.file_id << ':' << d.loc.line << ':'
               << d.loc.column;
        }
        os << ": " << severityName(d.severity) << ": [" << d.checker << '.'
           << d.rule << "] " << d.message << '\n';
        if (sm && d.loc.isValid()) {
            auto text = sm->lineText(d.loc.file_id, d.loc.line);
            if (!text.empty())
                os << "    " << text << '\n';
        }
        for (const auto& frame : d.trace)
            os << "    at " << frame << '\n';
    }
}

} // namespace mc::support
