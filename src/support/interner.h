#ifndef MCHECK_SUPPORT_INTERNER_H
#define MCHECK_SUPPORT_INTERNER_H

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mc::support {

/** Dense handle for an interned string (see SymbolInterner). */
using SymbolId = std::uint32_t;

/** "No symbol" sentinel; never returned by intern(). */
inline constexpr SymbolId kInvalidSymbol = 0xFFFFFFFFu;

/**
 * String <-> dense-id interner for the matching hot path.
 *
 * The engine's per-visit work used to be dominated by rebuilding
 * `std::set<std::string>` identifier sets and comparing heap strings;
 * interning turns every such comparison into a `uint32_t` compare and
 * every set into a sorted id vector. Ids are dense (0, 1, 2, ...) in
 * first-intern order and are never recycled.
 *
 * Lifetime rules (also in docs/performance.md):
 *  - `global()` lives for the process; ids and the views returned by
 *    `name()` stay valid forever. Ids are NOT stable across processes
 *    or runs — never persist them (the analysis cache keys on content
 *    hashes, not symbol ids) and never let an id's numeric value leak
 *    into diagnostics or reports.
 *  - A locally constructed interner's ids are meaningful only against
 *    that instance; `name()` views die with it.
 *
 * Thread-safe: lookups of already-interned names take a shared lock
 * (the steady state once a run's vocabulary is warm); first-time
 * interns briefly take the lock exclusively. Storage is a deque so
 * grown elements never move and returned views stay valid unlocked.
 */
class SymbolInterner
{
  public:
    /** The process-wide instance used by pattern matching. */
    static SymbolInterner& global();

    /** Id for `name`, interning it on first sight. */
    SymbolId intern(std::string_view name);

    /** Id for `name` if already interned; does not intern. */
    std::optional<SymbolId> lookup(std::string_view name) const;

    /**
     * The string for an interned id. The view stays valid for the
     * interner's lifetime. Passing an id this interner never returned
     * is a logic error (asserted in debug builds; empty view in
     * release).
     */
    std::string_view name(SymbolId id) const;

    /** Number of distinct strings interned so far. */
    std::size_t size() const;

  private:
    mutable std::shared_mutex mu_;
    /** Id -> string; deque keeps element addresses stable on growth. */
    std::deque<std::string> names_;
    /** Keys are views into names_, so they are stable too. */
    std::unordered_map<std::string_view, SymbolId> ids_;
};

} // namespace mc::support

#endif // MCHECK_SUPPORT_INTERNER_H
