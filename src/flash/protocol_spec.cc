#include "flash/protocol_spec.h"

namespace mc::flash {

const char*
handlerKindName(HandlerKind kind)
{
    switch (kind) {
      case HandlerKind::Hardware: return "hardware";
      case HandlerKind::Software: return "software";
      case HandlerKind::Normal: return "normal";
    }
    return "?";
}

void
ProtocolSpec::addHandler(HandlerSpec spec)
{
    handlers_[spec.name] = std::move(spec);
}

const HandlerSpec*
ProtocolSpec::handler(const std::string& fn_name) const
{
    auto it = handlers_.find(fn_name);
    return it == handlers_.end() ? nullptr : &it->second;
}

int
ProtocolSpec::laneOf(const std::string& opcode) const
{
    auto it = opcode_lanes_.find(opcode);
    return it == opcode_lanes_.end() ? -1 : it->second;
}

void
ProtocolSpec::setLane(const std::string& opcode, int lane)
{
    opcode_lanes_[opcode] = lane;
}

} // namespace mc::flash
