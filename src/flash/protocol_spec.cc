#include "flash/protocol_spec.h"

#include "support/hash.h"

namespace mc::flash {

const char*
handlerKindName(HandlerKind kind)
{
    switch (kind) {
      case HandlerKind::Hardware: return "hardware";
      case HandlerKind::Software: return "software";
      case HandlerKind::Normal: return "normal";
    }
    return "?";
}

void
ProtocolSpec::addHandler(HandlerSpec spec)
{
    handlers_[spec.name] = std::move(spec);
}

const HandlerSpec*
ProtocolSpec::handler(const std::string& fn_name) const
{
    auto it = handlers_.find(fn_name);
    return it == handlers_.end() ? nullptr : &it->second;
}

int
ProtocolSpec::laneOf(const std::string& opcode) const
{
    auto it = opcode_lanes_.find(opcode);
    return it == opcode_lanes_.end() ? -1 : it->second;
}

void
ProtocolSpec::setLane(const std::string& opcode, int lane)
{
    opcode_lanes_[opcode] = lane;
}

std::uint64_t
specFingerprint(const ProtocolSpec& spec)
{
    support::Fnv1a h;
    h.str(spec.name);
    h.u64(spec.handlers().size());
    for (const auto& [name, hs] : spec.handlers()) {
        h.str(name);
        h.u8(static_cast<std::uint8_t>(hs.kind));
        for (int allowance : hs.lane_allowance)
            h.i64(allowance);
        h.u8(hs.no_stack ? 1 : 0);
    }
    h.u64(spec.opcodeLanes().size());
    for (const auto& [opcode, lane] : spec.opcodeLanes()) {
        h.str(opcode);
        h.i64(lane);
    }
    for (const auto* table :
         {&spec.freeing_routines, &spec.buffer_using_routines,
          &spec.dir_deferred_routines, &spec.deprecated}) {
        h.u64(table->size());
        for (const std::string& routine : *table)
            h.str(routine);
    }
    return h.value();
}

} // namespace mc::flash
