#include "flash/macros.h"

#include <unordered_map>

namespace mc::flash {

using lang::CallExpr;
using lang::Expr;
using lang::ExprKind;
using lang::IdentExpr;

MacroKind
classifyMacro(std::string_view callee)
{
    static const std::unordered_map<std::string_view, MacroKind> table = {
        {"PI_SEND", MacroKind::SendPi},
        {"IO_SEND", MacroKind::SendIo},
        {"NI_SEND", MacroKind::SendNi},
        {"WAIT_FOR_DB_FULL", MacroKind::WaitDbFull},
        {"MISCBUS_READ_DB", MacroKind::ReadDb},
        {"MISCBUS_READ_DB_OLD", MacroKind::ReadDbDeprecated},
        {"MISCBUS_WRITE_DB", MacroKind::WriteDb},
        {"ALLOCATE_DB", MacroKind::AllocDb},
        {"FREE_DB", MacroKind::FreeDb},
        {"MAYBE_FREE_DB_A", MacroKind::MaybeFreeDb},
        {"MAYBE_FREE_DB_B", MacroKind::MaybeFreeDb},
        {"MAYBE_FREE_DB_C", MacroKind::MaybeFreeDb},
        {"MAYBE_FREE_DB_D", MacroKind::MaybeFreeDb},
        {"DB_REFCNT_INCR", MacroKind::RefcntIncr},
        {"DIR_LOAD", MacroKind::DirLoad},
        {"DIR_READ", MacroKind::DirRead},
        {"DIR_WRITE", MacroKind::DirWrite},
        {"DIR_WRITEBACK", MacroKind::DirWriteback},
        {"WAIT_FOR_PI_REPLY", MacroKind::WaitPiReply},
        {"WAIT_FOR_IO_REPLY", MacroKind::WaitIoReply},
        {"WAIT_FOR_SPACE", MacroKind::WaitForSpace},
        {"HANDLER_DEFS", MacroKind::HandlerDefs},
        {"HANDLER_PROLOGUE", MacroKind::HandlerPrologue},
        {"SWHANDLER_DEFS", MacroKind::SwHandlerDefs},
        {"SWHANDLER_PROLOGUE", MacroKind::SwHandlerPrologue},
        {"PROC_HOOK", MacroKind::ProcHook},
        {"NO_STACK", MacroKind::NoStack},
        {"SET_STACKPTR", MacroKind::SetStackPtr},
        {"has_buffer", MacroKind::AnnotHasBuffer},
        {"no_free_needed", MacroKind::AnnotNoFreeNeeded},
        {"expects_dir_writeback", MacroKind::AnnotExpectsDirWriteback},
        {"HANDLER_GLOBALS", MacroKind::HandlerGlobals},
    };
    auto it = table.find(callee);
    return it == table.end() ? MacroKind::None : it->second;
}

MacroKind
classifyCall(const Expr& expr)
{
    const CallExpr* call = lang::asCall(expr);
    if (!call)
        return MacroKind::None;
    return classifyMacro(call->calleeName());
}

bool
isSend(MacroKind kind)
{
    return kind == MacroKind::SendPi || kind == MacroKind::SendIo ||
           kind == MacroKind::SendNi;
}

bool
isAnnotation(MacroKind kind)
{
    return kind == MacroKind::AnnotHasBuffer ||
           kind == MacroKind::AnnotNoFreeNeeded ||
           kind == MacroKind::AnnotExpectsDirWriteback;
}

namespace {

/** Identifier spelling of argument `index`, if it is a plain identifier. */
std::optional<std::string>
identArg(const CallExpr& call, std::size_t index)
{
    if (index >= call.args.size())
        return std::nullopt;
    const Expr* arg = call.args[index];
    if (arg->ekind != ExprKind::Ident)
        return std::nullopt;
    return static_cast<const IdentExpr*>(arg)->name;
}

} // namespace

std::optional<std::string>
sendHasDataArg(const CallExpr& call)
{
    MacroKind kind = classifyMacro(call.calleeName());
    std::size_t index;
    switch (kind) {
      case MacroKind::SendPi:
      case MacroKind::SendIo:
        index = 0;
        break;
      case MacroKind::SendNi:
        index = 1;
        break;
      default:
        return std::nullopt;
    }
    auto name = identArg(call, index);
    if (name && (*name == kFData || *name == kFNoData))
        return name;
    return std::nullopt;
}

std::optional<std::string>
sendWaitArg(const CallExpr& call)
{
    MacroKind kind = classifyMacro(call.calleeName());
    std::size_t index;
    switch (kind) {
      case MacroKind::SendPi:
      case MacroKind::SendIo:
      case MacroKind::SendNi:
        index = 3;
        break;
      default:
        return std::nullopt;
    }
    auto name = identArg(call, index);
    if (name && (*name == kFWait || *name == kFNoWait))
        return name;
    return std::nullopt;
}

std::optional<std::string>
niSendOpcode(const CallExpr& call)
{
    if (classifyMacro(call.calleeName()) != MacroKind::SendNi)
        return std::nullopt;
    return identArg(call, 0);
}

std::optional<std::string>
waitForSpaceOpcode(const CallExpr& call)
{
    if (classifyMacro(call.calleeName()) != MacroKind::WaitForSpace)
        return std::nullopt;
    return identArg(call, 0);
}

Interface
interfaceOf(MacroKind kind)
{
    switch (kind) {
      case MacroKind::SendPi:
      case MacroKind::WaitPiReply:
        return Interface::Pi;
      case MacroKind::SendIo:
      case MacroKind::WaitIoReply:
        return Interface::Io;
      case MacroKind::SendNi:
        return Interface::Ni;
      default:
        return Interface::None;
    }
}

} // namespace mc::flash
