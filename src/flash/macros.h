#ifndef MCHECK_FLASH_MACROS_H
#define MCHECK_FLASH_MACROS_H

#include "lang/ast.h"

#include <optional>
#include <string>
#include <string_view>

namespace mc::flash {

/**
 * The modeled FLASH macro vocabulary.
 *
 * The paper analyzes FLASH protocol code post-macro-adaptation; the exact
 * Stanford macro names are not all public, so this module fixes a
 * documented, consistent vocabulary with the same roles:
 *
 *   Sends (use the current data buffer; dispatch to an interface):
 *     PI_SEND(F_DATA|F_NODATA, keep, swap, wait, dec, null)
 *     IO_SEND(F_DATA|F_NODATA, keep, swap, wait, dec, null)
 *     NI_SEND(MSG_x, F_DATA|F_NODATA, keep, wait, dec, null)
 *       - `wait` is F_WAIT or F_NOWAIT (send-wait checker, Section 9)
 *       - NI_SEND's MSG_x opcode maps to a network lane via the protocol
 *         spec (lanes checker, Section 7)
 *
 *   Buffer management (Sections 4, 6, 9):
 *     WAIT_FOR_DB_FULL(addr)        synchronize with the filling hardware
 *     MISCBUS_READ_DB(addr, buf)    read the data buffer
 *     MISCBUS_READ_DB_OLD(addr)     deprecated legacy read
 *     MISCBUS_WRITE_DB(addr, v)     write into the data buffer
 *     buf = ALLOCATE_DB()           allocate; yields 0 on failure
 *     FREE_DB()                     drop the current buffer's reference
 *     MAYBE_FREE_DB_{A..D}()        free-or-not helpers returning 0/1
 *                                   (the Section 6.1 value-sensitivity
 *                                   refinement keys on these)
 *     DB_REFCNT_INCR()              manual refcount bump ("never" used —
 *                                   the Section 11 betrayal; aggressively
 *                                   flagged)
 *
 *   Directory management (Section 9):
 *     DIR_LOAD()                    load the line's directory entry
 *     DIR_READ(field)               read a field of the loaded entry
 *     DIR_WRITE(field, v)           modify the loaded entry in memory
 *     DIR_WRITEBACK()               write the entry back
 *
 *   Waits (send-wait checker):
 *     WAIT_FOR_PI_REPLY()           wait on the processor interface
 *     WAIT_FOR_IO_REPLY()           wait on the I/O interface
 *
 *   Lane quota (Section 7):
 *     WAIT_FOR_SPACE(MSG_x)         block until the lane of MSG_x has
 *                                   space; resets that lane's send budget
 *
 *   Execution restrictions and simulation hooks (Section 8):
 *     HANDLER_DEFS(); HANDLER_PROLOGUE();     first two statements of a
 *                                             hardware handler
 *     SWHANDLER_DEFS(); SWHANDLER_PROLOGUE(); first two of a software
 *                                             handler
 *     PROC_HOOK();                            first statement of a normal
 *                                             routine
 *     NO_STACK();                             no-stack assertion (exactly
 *                                             one, at handler start)
 *     SET_STACKPTR();                         required before calls from
 *                                             no-stack handlers
 *
 *   Checker annotations (Section 6):
 *     has_buffer(); no_free_needed(); expects_dir_writeback();
 *
 * Message length is carried in the header via the Figure 3 idiom:
 *     HANDLER_GLOBALS(header.nh.len) = LEN_NODATA|LEN_WORD|LEN_CACHELINE;
 */
enum class MacroKind : std::uint8_t
{
    None,
    SendPi,
    SendIo,
    SendNi,
    WaitDbFull,
    ReadDb,
    ReadDbDeprecated,
    WriteDb,
    AllocDb,
    FreeDb,
    MaybeFreeDb,
    RefcntIncr,
    DirLoad,
    DirRead,
    DirWrite,
    DirWriteback,
    WaitPiReply,
    WaitIoReply,
    WaitForSpace,
    HandlerDefs,
    HandlerPrologue,
    SwHandlerDefs,
    SwHandlerPrologue,
    ProcHook,
    NoStack,
    SetStackPtr,
    AnnotHasBuffer,
    AnnotNoFreeNeeded,
    AnnotExpectsDirWriteback,
    HandlerGlobals,
};

/** Classify a callee name against the macro vocabulary. */
MacroKind classifyMacro(std::string_view callee);

/** Kind of the call if `expr` is a call to a known macro. */
MacroKind classifyCall(const lang::Expr& expr);

/** True for PI_SEND / IO_SEND / NI_SEND. */
bool isSend(MacroKind kind);

/** True for the checker annotation pseudo-calls. */
bool isAnnotation(MacroKind kind);

/** Message-length constants (Figure 3). */
inline constexpr std::string_view kLenNoData = "LEN_NODATA";
inline constexpr std::string_view kLenWord = "LEN_WORD";
inline constexpr std::string_view kLenCacheline = "LEN_CACHELINE";

/** has-data flags. */
inline constexpr std::string_view kFData = "F_DATA";
inline constexpr std::string_view kFNoData = "F_NODATA";

/** wait flags. */
inline constexpr std::string_view kFWait = "F_WAIT";
inline constexpr std::string_view kFNoWait = "F_NOWAIT";

/** NAK opcode prefix: sends of MSG_NAK* count as negative acks. */
inline constexpr std::string_view kNakPrefix = "MSG_NAK";

/**
 * For a send call, the identifier spelling of its has-data argument
 * ("F_DATA"/"F_NODATA"), or nullopt if the argument is not a plain
 * constant (run-time send parameters — the coma false-positive source
 * in Table 3).
 */
std::optional<std::string> sendHasDataArg(const lang::CallExpr& call);

/** For a send call, the wait flag argument ("F_WAIT"/"F_NOWAIT"). */
std::optional<std::string> sendWaitArg(const lang::CallExpr& call);

/** For an NI_SEND, the MSG_* opcode identifier. */
std::optional<std::string> niSendOpcode(const lang::CallExpr& call);

/** For WAIT_FOR_SPACE, the MSG_* opcode identifier. */
std::optional<std::string> waitForSpaceOpcode(const lang::CallExpr& call);

/** Interface a send targets / a wait listens on. */
enum class Interface : std::uint8_t { None, Pi, Io, Ni };

/** The interface of a send or wait macro kind. */
Interface interfaceOf(MacroKind kind);

} // namespace mc::flash

#endif // MCHECK_FLASH_MACROS_H
