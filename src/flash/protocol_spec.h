#ifndef MCHECK_FLASH_PROTOCOL_SPEC_H
#define MCHECK_FLASH_PROTOCOL_SPEC_H

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mc::flash {

/** Number of virtual network lanes on a FLASH node (Section 7). */
inline constexpr int kLaneCount = 4;

/** How a routine is invoked (Section 2.1 / Section 6). */
enum class HandlerKind : std::uint8_t
{
    /** Run by hardware on message arrival; starts owning a data buffer. */
    Hardware,
    /** Scheduled by software; starts without a data buffer. */
    Software,
    /** An ordinary subroutine. */
    Normal,
};

const char* handlerKindName(HandlerKind kind);

/** Static description of one handler, from the protocol specification. */
struct HandlerSpec
{
    std::string name;
    HandlerKind kind = HandlerKind::Normal;
    /**
     * Lane allowance: how many sends per lane the hardware guarantees
     * space for before the handler runs (Section 7).
     */
    std::array<int, kLaneCount> lane_allowance{1, 1, 1, 1};
    /** Handler asserts it does not need the stack (Section 8). */
    bool no_stack = false;
};

/**
 * The protocol-writer-supplied knowledge the checkers consume: handler
 * classification, lane assignments, and the routine tables the buffer
 * management and directory checkers keep (Section 6: "The extension keeps
 * a table of routines...").
 */
class ProtocolSpec
{
  public:
    std::string name;

    /** Register a handler (or normal routine) specification. */
    void addHandler(HandlerSpec spec);

    /** Spec for `fn_name`, or nullptr if unknown (treated as Normal). */
    const HandlerSpec* handler(const std::string& fn_name) const;

    HandlerKind
    kindOf(const std::string& fn_name) const
    {
        const HandlerSpec* spec = handler(fn_name);
        return spec ? spec->kind : HandlerKind::Normal;
    }

    bool
    isHandler(const std::string& fn_name) const
    {
        HandlerKind kind = kindOf(fn_name);
        return kind == HandlerKind::Hardware ||
               kind == HandlerKind::Software;
    }

    const std::map<std::string, HandlerSpec>& handlers() const
    {
        return handlers_;
    }

    /** Map an NI message opcode (MSG_*) to its lane. -1 if unknown. */
    int laneOf(const std::string& opcode) const;

    /** Assign `opcode` to `lane`. */
    void setLane(const std::string& opcode, int lane);

    const std::map<std::string, int>& opcodeLanes() const
    {
        return opcode_lanes_;
    }

    /**
     * Routines that consume and free the current buffer when called
     * ("calls to routines that expect buffers and free them").
     */
    std::set<std::string> freeing_routines;

    /** Routines that use the buffer without freeing it. */
    std::set<std::string> buffer_using_routines;

    /**
     * Subroutines that modify the directory entry and rely on their
     * caller to write it back (Section 9's main false-positive source).
     */
    std::set<std::string> dir_deferred_routines;

    /** Deprecated macros/functions the restriction checker warns about. */
    std::set<std::string> deprecated;

  private:
    std::map<std::string, HandlerSpec> handlers_;
    std::map<std::string, int> opcode_lanes_;
};

/**
 * Stable content hash over everything a checker can read out of a spec:
 * handler classifications, lane allowances, opcode lanes, and the four
 * routine tables. Part of the analysis cache key — two runs may share
 * cached results only if the protocol knowledge fed to the checkers is
 * identical.
 */
std::uint64_t specFingerprint(const ProtocolSpec& spec);

} // namespace mc::flash

#endif // MCHECK_FLASH_PROTOCOL_SPEC_H
