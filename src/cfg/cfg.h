#ifndef MCHECK_CFG_CFG_H
#define MCHECK_CFG_CFG_H

#include "lang/ast.h"

#include <atomic>
#include <string>
#include <vector>

namespace mc::cfg {

class FlatCfg;

/**
 * A basic block: a straight-line run of statements with branching only at
 * the end.
 *
 * `stmts` holds the simple statements executed in order (expression
 * statements, declarations, returns, case markers...). If the block ends
 * in a conditional branch, `branch_cond` is the controlling expression and
 * the first successor is the true edge, the second the false edge. Switch
 * heads have one successor per case (plus default/join last).
 */
struct BasicBlock
{
    int id = -1;
    std::vector<const lang::Stmt*> stmts;
    const lang::Expr* branch_cond = nullptr;
    std::vector<int> succs;
    std::vector<int> preds;

    bool isBranch() const { return branch_cond != nullptr; }
};

/**
 * Control-flow graph of one function.
 *
 * There is exactly one entry block and one synthetic exit block; every
 * return statement's block has an edge to the exit block. Blocks are
 * indexed densely by id.
 */
class Cfg
{
  public:
    Cfg() = default;
    ~Cfg();

    // The lazily installed FlatCfg cache makes Cfg non-trivially
    // copyable: copies start with a cold cache (they could alias the
    // source's, but a copy that outlives its source must not), moves
    // transfer it — the arena only borrows AST statement pointers, so
    // relocating the Cfg object keeps it valid.
    Cfg(const Cfg& other);
    Cfg& operator=(const Cfg& other);
    Cfg(Cfg&& other) noexcept;
    Cfg& operator=(Cfg&& other) noexcept;

    const lang::FunctionDecl* function = nullptr;

    int entryId() const { return entry_; }
    int exitId() const { return exit_; }

    int blockCount() const { return static_cast<int>(blocks_.size()); }

    const BasicBlock& block(int id) const
    {
        return blocks_[static_cast<std::size_t>(id)];
    }

    const std::vector<BasicBlock>& blocks() const { return blocks_; }

    /**
     * Edges (from, to) that close a cycle in a depth-first traversal from
     * the entry block. Computed lazily and cached.
     */
    const std::vector<std::pair<int, int>>& backEdges() const;

    /** Render as text for tests: one line per block with successors. */
    std::string dump() const;

  private:
    friend class CfgBuilder;
    friend class BuilderImpl;
    friend const FlatCfg& flatCfg(const Cfg& cfg);

    int entry_ = 0;
    int exit_ = 0;
    std::vector<BasicBlock> blocks_;
    mutable bool back_edges_computed_ = false;
    mutable std::vector<std::pair<int, int>> back_edges_;
    /** Lazily built arena view (flat_cfg.h); owned, CAS-installed. */
    mutable std::atomic<const FlatCfg*> flat_{nullptr};
};

/**
 * Builds a Cfg from a function definition.
 *
 * Supports the full dialect statement set. `goto` targets may appear
 * before or after the jump. Case/Default markers split blocks inside the
 * lexically-immediate compound body of a switch.
 */
class CfgBuilder
{
  public:
    /** Build the CFG for `fn` (which must be a definition). */
    static Cfg build(const lang::FunctionDecl& fn);
};

} // namespace mc::cfg

#endif // MCHECK_CFG_CFG_H
