#include "cfg/flat_cfg.h"

#include <algorithm>
#include <atomic>

namespace mc::cfg {

namespace {
std::uint64_t
nextFlatCfgId()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}
} // namespace

FlatCfg::FlatCfg(const Cfg& cfg) : id_(nextFlatCfgId())
{
    const std::vector<BasicBlock>& blocks = cfg.blocks();
    stmt_offsets_.resize(blocks.size() + 1);
    std::uint32_t total = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        stmt_offsets_[b] = total;
        total += static_cast<std::uint32_t>(blocks[b].stmts.size());
    }
    stmt_offsets_[blocks.size()] = total;

    stmts_.reserve(total);
    for (const BasicBlock& bb : blocks)
        for (const lang::Stmt* stmt : bb.stmts)
            stmts_.push_back(stmt);

    // One shared scratch keeps the per-statement ident scan free of
    // per-node heap caches; the spans land inline in one flat pool.
    ident_offsets_.resize(total + 1);
    std::vector<support::SymbolId> scratch;
    for (std::uint32_t row = 0; row < total; ++row) {
        ident_offsets_[row] =
            static_cast<std::uint32_t>(ident_ids_.size());
        lang::collectStmtIdentIds(*stmts_[row], scratch);
        ident_ids_.insert(ident_ids_.end(), scratch.begin(),
                          scratch.end());
    }
    ident_offsets_[total] = static_cast<std::uint32_t>(ident_ids_.size());
}

const FlatCfg::MaskIndex&
FlatCfg::maskIndex(const std::vector<support::SymbolId>& sorted_syms) const
{
    std::lock_guard<std::mutex> lock(mask_mutex_);
    auto it = mask_cache_.find(sorted_syms);
    if (it != mask_cache_.end())
        return *it->second;

    auto index = std::make_unique<MaskIndex>();
    const std::uint32_t rows = stmtCount();
    index->stmt_mask.resize(rows);
    for (std::uint32_t row = 0; row < rows; ++row) {
        std::uint64_t mask = 0;
        const support::SymbolId* ids = identBegin(row);
        const std::uint32_t n = identCount(row);
        for (std::uint32_t i = 0; i < n; ++i) {
            auto pos = std::lower_bound(sorted_syms.begin(),
                                        sorted_syms.end(), ids[i]);
            if (pos != sorted_syms.end() && *pos == ids[i])
                mask |= std::uint64_t{1}
                        << (pos - sorted_syms.begin());
        }
        index->stmt_mask[row] = mask;
    }
    const std::uint32_t blocks = blockCount();
    index->block_mask.resize(blocks);
    index->range_mask.assign(rangeCount(), 0);
    for (std::uint32_t b = 0; b < blocks; ++b) {
        std::uint64_t mask = 0;
        for (std::uint32_t row = stmtBegin(b); row < stmtEnd(b); ++row)
            mask |= index->stmt_mask[row];
        index->block_mask[b] = mask;
        index->range_mask[b >> kRangeShift] |= mask;
    }

    const MaskIndex& ref = *index;
    mask_cache_.emplace(sorted_syms, std::move(index));
    return ref;
}

const FlatCfg&
flatCfg(const Cfg& cfg)
{
    const FlatCfg* flat = cfg.flat_.load(std::memory_order_acquire);
    if (!flat) {
        auto* fresh = new FlatCfg(cfg);
        const FlatCfg* expected = nullptr;
        if (cfg.flat_.compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            flat = fresh;
        } else {
            delete fresh; // another thread won the install race
            flat = expected;
        }
    }
    return *flat;
}

} // namespace mc::cfg
