#ifndef MCHECK_CFG_FLAT_CFG_H
#define MCHECK_CFG_FLAT_CFG_H

#include "cfg/cfg.h"
#include "support/interner.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace mc::cfg {

/**
 * Arena-flattened view of one Cfg: the lowering pass behind the
 * data-oriented engine core.
 *
 * The pointer CFG stores statements as per-block vectors of AST node
 * pointers, so the walker's hot loop chases heap nodes and every
 * identifier prefilter re-scans an AST subtree (or a per-node cache
 * behind another pointer). FlatCfg lowers all of that into contiguous
 * POD arrays once per function:
 *
 *   - `stmt_offsets_` — prefix sums over block statement counts, so a
 *     (block, pos) pair addresses a dense statement row without any
 *     per-block vector indirection; row order is block order, exactly
 *     the pointer CFG's iteration order.
 *   - `stmts_` — the statement pointers themselves, flat.
 *   - `ident_offsets_` / `ident_ids_` — each row's sorted-unique
 *     interned identifier ids stored inline as a span, so the
 *     visitIdentsFast AST scan becomes a precomputed slice lookup.
 *
 * On top of the arena, maskIndex() folds the spans into per-statement /
 * per-block / per-block-range 64-bit masks for a caller-supplied symbol
 * set (one entry per distinct state machine, cached). Ranges are
 * 64-block granules, deliberately matching one bitset word, so the
 * walker-facing prefilter can sweep whole regions with single-word
 * tests. Block and range masks are pure ORs of exact statement masks —
 * never a heuristic — which is what lets TransitionTable extend the
 * prefilter-never-rejects property from cells to block ranges.
 *
 * Immutable after construction except for the mask cache (mutex) —
 * safe to share across checker lanes like the Cfg itself.
 */
class FlatCfg
{
  public:
    /** log2 of the range granule: 64 blocks = one bitset word. */
    static constexpr std::uint32_t kRangeShift = 6;

    explicit FlatCfg(const Cfg& cfg);

    /**
     * Process-unique arena id (monotonic, never reused). Cache keys
     * built from it cannot suffer pointer ABA: a new FlatCfg allocated
     * at a freed one's address still gets a fresh id, so stale entries
     * keyed by a dead arena can never be returned for a live one.
     */
    std::uint64_t id() const { return id_; }

    std::uint32_t blockCount() const
    {
        return static_cast<std::uint32_t>(stmt_offsets_.size() - 1);
    }
    std::uint32_t stmtCount() const
    {
        return static_cast<std::uint32_t>(stmts_.size());
    }
    std::uint32_t rangeCount() const
    {
        return (blockCount() + 63u) >> kRangeShift;
    }

    /** Row index of block `b`'s first statement. */
    std::uint32_t stmtBegin(std::uint32_t b) const
    {
        return stmt_offsets_[b];
    }
    /** One past block `b`'s last statement row. */
    std::uint32_t stmtEnd(std::uint32_t b) const
    {
        return stmt_offsets_[b + 1];
    }
    const lang::Stmt* stmt(std::uint32_t row) const { return stmts_[row]; }

    /** Row `row`'s sorted-unique interned identifier ids, inline. */
    const support::SymbolId* identBegin(std::uint32_t row) const
    {
        return ident_ids_.data() + ident_offsets_[row];
    }
    std::uint32_t identCount(std::uint32_t row) const
    {
        return ident_offsets_[row + 1] - ident_offsets_[row];
    }

    /**
     * Prefilter masks for one symbol set (a CompiledSm's sorted
     * mask-symbol list): bit i of a statement mask is set iff the
     * statement mentions `syms[i]`. Block masks OR their statements;
     * range masks OR their 64-block granule.
     */
    struct MaskIndex
    {
        std::vector<std::uint64_t> stmt_mask;
        std::vector<std::uint64_t> block_mask;
        std::vector<std::uint64_t> range_mask;
    };

    /**
     * The (cached) MaskIndex for `sorted_syms`, which must be sorted
     * unique with at most 64 entries (CompiledSm::maskSyms() is). Keyed
     * by symbol-set content, not machine identity, so recompiled
     * machines with the same vocabulary share one index. Thread-safe;
     * the reference lives as long as this FlatCfg.
     */
    const MaskIndex&
    maskIndex(const std::vector<support::SymbolId>& sorted_syms) const;

  private:
    std::uint64_t id_;
    std::vector<std::uint32_t> stmt_offsets_;
    std::vector<const lang::Stmt*> stmts_;
    std::vector<std::uint32_t> ident_offsets_;
    std::vector<support::SymbolId> ident_ids_;
    mutable std::mutex mask_mutex_;
    mutable std::map<std::vector<support::SymbolId>,
                     std::unique_ptr<MaskIndex>>
        mask_cache_;
};

/**
 * The lazily built, per-Cfg FlatCfg (installed on the Cfg with a
 * compare-and-swap; racing builders are benign — losers delete their
 * copy). The reference lives as long as the Cfg.
 */
const FlatCfg& flatCfg(const Cfg& cfg);

} // namespace mc::cfg

#endif // MCHECK_CFG_FLAT_CFG_H
