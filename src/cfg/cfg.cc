#include "cfg/cfg.h"

#include "cfg/flat_cfg.h"

#include <cassert>
#include <map>
#include <sstream>
#include <stdexcept>

namespace mc::cfg {

using namespace mc::lang;

Cfg::~Cfg()
{
    delete flat_.load(std::memory_order_relaxed);
}

Cfg::Cfg(const Cfg& other)
    : function(other.function), entry_(other.entry_), exit_(other.exit_),
      blocks_(other.blocks_),
      back_edges_computed_(other.back_edges_computed_),
      back_edges_(other.back_edges_)
{
}

Cfg&
Cfg::operator=(const Cfg& other)
{
    if (this == &other)
        return *this;
    function = other.function;
    entry_ = other.entry_;
    exit_ = other.exit_;
    blocks_ = other.blocks_;
    back_edges_computed_ = other.back_edges_computed_;
    back_edges_ = other.back_edges_;
    delete flat_.exchange(nullptr, std::memory_order_acq_rel);
    return *this;
}

Cfg::Cfg(Cfg&& other) noexcept
    : function(other.function), entry_(other.entry_), exit_(other.exit_),
      blocks_(std::move(other.blocks_)),
      back_edges_computed_(other.back_edges_computed_),
      back_edges_(std::move(other.back_edges_)),
      flat_(other.flat_.exchange(nullptr, std::memory_order_acq_rel))
{
}

Cfg&
Cfg::operator=(Cfg&& other) noexcept
{
    if (this == &other)
        return *this;
    function = other.function;
    entry_ = other.entry_;
    exit_ = other.exit_;
    blocks_ = std::move(other.blocks_);
    back_edges_computed_ = other.back_edges_computed_;
    back_edges_ = std::move(other.back_edges_);
    delete flat_.exchange(
        other.flat_.exchange(nullptr, std::memory_order_acq_rel),
        std::memory_order_acq_rel);
    return *this;
}

/**
 * Stateful CFG construction walker. `current_` is the open block receiving
 * statements; control-flow statements seal it and open new blocks.
 * A sealed value of -1 means the current position is unreachable (after a
 * return/break/goto); statements there still get a block so they are
 * visible to checkers, but it has no predecessor.
 */
class BuilderImpl
{
  public:
    explicit BuilderImpl(const FunctionDecl& fn)
    {
        cfg_.function = &fn;
        cfg_.entry_ = newBlock();
        current_ = cfg_.entry_;
        walkStmt(*fn.body);
        cfg_.exit_ = newBlock();
        // Fall-off-the-end: link the last open block to exit.
        if (current_ >= 0)
            addEdge(current_, cfg_.exit_);
        for (int ret : return_blocks_)
            addEdge(ret, cfg_.exit_);
        patchGotos();
    }

    Cfg take() { return std::move(cfg_); }

  private:
    int
    newBlock()
    {
        int id = static_cast<int>(cfg_.blocks_.size());
        BasicBlock bb;
        bb.id = id;
        cfg_.blocks_.push_back(std::move(bb));
        return id;
    }

    BasicBlock& block(int id)
    {
        return cfg_.blocks_[static_cast<std::size_t>(id)];
    }

    void
    addEdge(int from, int to)
    {
        block(from).succs.push_back(to);
        block(to).preds.push_back(from);
    }

    /** Append a simple statement to the current block. */
    void
    appendStmt(const Stmt& stmt)
    {
        if (current_ < 0) {
            // Unreachable code still gets a block (checkers see it, as the
            // paper's checkers did for unreachable handler paths).
            current_ = newBlock();
        }
        block(current_).stmts.push_back(&stmt);
    }

    void
    walkStmt(const Stmt& stmt)
    {
        switch (stmt.skind) {
          case StmtKind::Compound: {
            const auto& s = static_cast<const CompoundStmt&>(stmt);
            for (const Stmt* child : s.stmts)
                walkStmt(*child);
            return;
          }
          case StmtKind::Expr:
          case StmtKind::Decl:
          case StmtKind::Empty:
            appendStmt(stmt);
            return;
          case StmtKind::If:
            walkIf(static_cast<const IfStmt&>(stmt));
            return;
          case StmtKind::While:
            walkWhile(static_cast<const WhileStmt&>(stmt));
            return;
          case StmtKind::DoWhile:
            walkDoWhile(static_cast<const DoWhileStmt&>(stmt));
            return;
          case StmtKind::For:
            walkFor(static_cast<const ForStmt&>(stmt));
            return;
          case StmtKind::Switch:
            walkSwitch(static_cast<const SwitchStmt&>(stmt));
            return;
          case StmtKind::Case:
          case StmtKind::Default:
            // Case markers outside the immediate switch body (deeply
            // nested) are treated as ordinary statements.
            appendStmt(stmt);
            return;
          case StmtKind::Break: {
            appendStmt(stmt);
            if (break_targets_.empty())
                throw std::runtime_error("'break' outside loop/switch");
            if (current_ >= 0)
                addEdge(current_, break_targets_.back());
            current_ = -1;
            return;
          }
          case StmtKind::Continue: {
            appendStmt(stmt);
            if (continue_targets_.empty())
                throw std::runtime_error("'continue' outside loop");
            if (current_ >= 0)
                addEdge(current_, continue_targets_.back());
            current_ = -1;
            return;
          }
          case StmtKind::Return: {
            appendStmt(stmt);
            if (current_ >= 0)
                return_blocks_.push_back(current_);
            current_ = -1;
            return;
          }
          case StmtKind::Goto: {
            appendStmt(stmt);
            if (current_ >= 0)
                pending_gotos_.emplace_back(
                    current_, static_cast<const GotoStmt&>(stmt).label);
            current_ = -1;
            return;
          }
          case StmtKind::Label: {
            const auto& s = static_cast<const LabelStmt&>(stmt);
            int target = newBlock();
            if (current_ >= 0)
                addEdge(current_, target);
            current_ = target;
            block(current_).stmts.push_back(&stmt);
            labels_[s.name] = target;
            return;
          }
        }
    }

    void
    walkIf(const IfStmt& stmt)
    {
        // The condition evaluates in the current block, which becomes a
        // branch: successor 0 = true edge, successor 1 = false edge.
        if (current_ < 0)
            current_ = newBlock();
        int head = current_;
        block(head).branch_cond = stmt.cond;
        block(head).stmts.push_back(&stmt);

        int then_entry = newBlock();
        addEdge(head, then_entry);
        current_ = then_entry;
        walkStmt(*stmt.then_branch);
        int then_out = current_;

        int else_out = -1;
        if (stmt.else_branch) {
            int else_entry = newBlock();
            addEdge(head, else_entry);
            current_ = else_entry;
            walkStmt(*stmt.else_branch);
            else_out = current_;
        }

        int join = newBlock();
        if (!stmt.else_branch)
            addEdge(head, join); // false edge skips the then branch
        if (then_out >= 0)
            addEdge(then_out, join);
        if (else_out >= 0)
            addEdge(else_out, join);
        current_ = join;
    }

    void
    walkWhile(const WhileStmt& stmt)
    {
        int head = newBlock();
        if (current_ >= 0)
            addEdge(current_, head);
        block(head).branch_cond = stmt.cond;
        block(head).stmts.push_back(&stmt);

        int exit = newBlock();
        int body = newBlock();
        addEdge(head, body); // true edge
        addEdge(head, exit); // false edge

        break_targets_.push_back(exit);
        continue_targets_.push_back(head);
        current_ = body;
        walkStmt(*stmt.body);
        if (current_ >= 0)
            addEdge(current_, head); // back edge
        break_targets_.pop_back();
        continue_targets_.pop_back();
        current_ = exit;
    }

    void
    walkDoWhile(const DoWhileStmt& stmt)
    {
        int body = newBlock();
        if (current_ >= 0)
            addEdge(current_, body);

        int cond = newBlock();
        int exit = newBlock();

        break_targets_.push_back(exit);
        continue_targets_.push_back(cond);
        current_ = body;
        walkStmt(*stmt.body);
        if (current_ >= 0)
            addEdge(current_, cond);
        break_targets_.pop_back();
        continue_targets_.pop_back();

        block(cond).branch_cond = stmt.cond;
        block(cond).stmts.push_back(&stmt);
        addEdge(cond, body); // true: loop again
        addEdge(cond, exit); // false
        current_ = exit;
    }

    void
    walkFor(const ForStmt& stmt)
    {
        if (stmt.init)
            walkStmt(*stmt.init);

        int head = newBlock();
        if (current_ >= 0)
            addEdge(current_, head);
        block(head).stmts.push_back(&stmt);

        int exit = newBlock();
        int body = newBlock();
        if (stmt.cond) {
            block(head).branch_cond = stmt.cond;
            addEdge(head, body);
            addEdge(head, exit);
        } else {
            addEdge(head, body); // for(;;): no exit edge from the head
        }

        int step = newBlock();
        break_targets_.push_back(exit);
        continue_targets_.push_back(step);
        current_ = body;
        walkStmt(*stmt.body);
        if (current_ >= 0)
            addEdge(current_, step);
        break_targets_.pop_back();
        continue_targets_.pop_back();

        // The step block re-runs the header.
        addEdge(step, head);
        current_ = exit;
    }

    void
    walkSwitch(const SwitchStmt& stmt)
    {
        if (current_ < 0)
            current_ = newBlock();
        int head = current_;
        block(head).branch_cond = stmt.cond;
        block(head).stmts.push_back(&stmt);

        int exit = newBlock();
        break_targets_.push_back(exit);

        bool has_default = false;
        current_ = -1;
        if (stmt.body && stmt.body->skind == StmtKind::Compound) {
            const auto& body = static_cast<const CompoundStmt&>(*stmt.body);
            for (const Stmt* child : body.stmts) {
                if (child->skind == StmtKind::Case ||
                    child->skind == StmtKind::Default) {
                    int arm = newBlock();
                    if (current_ >= 0)
                        addEdge(current_, arm); // fallthrough
                    addEdge(head, arm);
                    current_ = arm;
                    block(arm).stmts.push_back(child);
                    if (child->skind == StmtKind::Default)
                        has_default = true;
                } else {
                    walkStmt(*child);
                }
            }
        } else if (stmt.body) {
            walkStmt(*stmt.body);
        }
        if (current_ >= 0)
            addEdge(current_, exit);
        if (!has_default)
            addEdge(head, exit);
        break_targets_.pop_back();
        current_ = exit;
    }

    void
    patchGotos()
    {
        for (const auto& [from, label] : pending_gotos_) {
            auto it = labels_.find(label);
            if (it == labels_.end())
                throw std::runtime_error("goto to undefined label '" +
                                         label + "'");
            addEdge(from, it->second);
        }
    }

    Cfg cfg_;
    int current_ = -1;
    std::vector<int> break_targets_;
    std::vector<int> continue_targets_;
    std::vector<int> return_blocks_;
    std::vector<std::pair<int, std::string>> pending_gotos_;
    std::map<std::string, int> labels_;
};

Cfg
CfgBuilder::build(const FunctionDecl& fn)
{
    assert(fn.body && "cannot build a CFG for a prototype");
    BuilderImpl builder(fn);
    return builder.take();
}

const std::vector<std::pair<int, int>>&
Cfg::backEdges() const
{
    if (back_edges_computed_)
        return back_edges_;
    back_edges_computed_ = true;

    enum class Color { White, Grey, Black };
    std::vector<Color> color(blocks_.size(), Color::White);
    // Iterative DFS with explicit edge indices to avoid deep recursion on
    // generated protocols.
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(entry_, 0);
    color[static_cast<std::size_t>(entry_)] = Color::Grey;
    while (!stack.empty()) {
        auto& [node, edge] = stack.back();
        const BasicBlock& bb = blocks_[static_cast<std::size_t>(node)];
        if (edge >= bb.succs.size()) {
            color[static_cast<std::size_t>(node)] = Color::Black;
            stack.pop_back();
            continue;
        }
        int succ = bb.succs[edge++];
        Color c = color[static_cast<std::size_t>(succ)];
        if (c == Color::Grey) {
            back_edges_.emplace_back(node, succ);
        } else if (c == Color::White) {
            color[static_cast<std::size_t>(succ)] = Color::Grey;
            stack.emplace_back(succ, 0);
        }
    }
    return back_edges_;
}

std::string
Cfg::dump() const
{
    std::ostringstream os;
    os << "cfg " << (function ? function->name : "<null>") << " entry=B"
       << entry_ << " exit=B" << exit_ << '\n';
    for (const BasicBlock& bb : blocks_) {
        os << "  B" << bb.id << ':';
        if (bb.isBranch())
            os << " [branch " << lang::exprToString(*bb.branch_cond) << ']';
        os << " ->";
        for (int succ : bb.succs)
            os << " B" << succ;
        os << '\n';
        for (const lang::Stmt* stmt : bb.stmts)
            os << "    " << lang::stmtToString(*stmt) << '\n';
    }
    return os.str();
}

} // namespace mc::cfg
