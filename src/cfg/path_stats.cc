#include "cfg/path_stats.h"

#include "support/metrics.h"

#include <algorithm>
#include <set>

namespace mc::cfg {

namespace {

/** Number of distinct source lines spanned by a block's statements. */
std::uint64_t
blockLineCount(const BasicBlock& bb)
{
    std::set<std::pair<std::int32_t, std::int32_t>> lines;
    for (const lang::Stmt* stmt : bb.stmts)
        if (stmt->loc.isValid())
            lines.emplace(stmt->loc.file_id, stmt->loc.line);
    return lines.size();
}

/** Successor edges with back edges removed (acyclic view of the CFG). */
std::vector<std::vector<int>>
forwardSuccessors(const Cfg& cfg)
{
    std::set<std::pair<int, int>> back(cfg.backEdges().begin(),
                                       cfg.backEdges().end());
    std::vector<std::vector<int>> succs(
        static_cast<std::size_t>(cfg.blockCount()));
    for (const BasicBlock& bb : cfg.blocks())
        for (int s : bb.succs)
            if (!back.count({bb.id, s}))
                succs[static_cast<std::size_t>(bb.id)].push_back(s);
    return succs;
}

/** Topological order of the acyclic view, entry-reachable nodes only. */
std::vector<int>
topoOrder(const Cfg& cfg, const std::vector<std::vector<int>>& succs)
{
    std::vector<int> order;
    std::vector<int> state(static_cast<std::size_t>(cfg.blockCount()), 0);
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(cfg.entryId(), 0);
    state[static_cast<std::size_t>(cfg.entryId())] = 1;
    while (!stack.empty()) {
        auto& [node, edge] = stack.back();
        const auto& out = succs[static_cast<std::size_t>(node)];
        if (edge >= out.size()) {
            order.push_back(node);
            stack.pop_back();
            continue;
        }
        int next = out[edge++];
        if (state[static_cast<std::size_t>(next)] == 0) {
            state[static_cast<std::size_t>(next)] = 1;
            stack.emplace_back(next, 0);
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

std::uint64_t
saturatingAdd(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t s = a + b;
    if (s < a || s > PathStats::kMaxPaths)
        return PathStats::kMaxPaths;
    return s;
}

} // namespace

PathStats
computePathStats(const Cfg& cfg)
{
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    support::ScopedTimer timer(
        metrics.enabled() ? &metrics.timer("cfg.path_stats") : nullptr);

    auto succs = forwardSuccessors(cfg);
    auto order = topoOrder(cfg, succs);

    std::size_t n = static_cast<std::size_t>(cfg.blockCount());
    std::vector<std::uint64_t> lines(n);
    for (const BasicBlock& bb : cfg.blocks())
        lines[static_cast<std::size_t>(bb.id)] = blockLineCount(bb);

    // DP in topological order: for each block, the number of entry-to-here
    // paths, the summed length of those paths, and the max length, where a
    // path's length includes every block on it.
    std::vector<std::uint64_t> count(n, 0);
    std::vector<double> length_sum(n, 0.0);
    std::vector<std::uint64_t> max_len(n, 0);

    std::size_t entry = static_cast<std::size_t>(cfg.entryId());
    count[entry] = 1;
    length_sum[entry] = static_cast<double>(lines[entry]);
    max_len[entry] = lines[entry];

    for (int id : order) {
        std::size_t u = static_cast<std::size_t>(id);
        if (count[u] == 0)
            continue;
        for (int s : succs[u]) {
            std::size_t v = static_cast<std::size_t>(s);
            count[v] = saturatingAdd(count[v], count[u]);
            length_sum[v] += length_sum[u] + static_cast<double>(count[u]) *
                                                 static_cast<double>(lines[v]);
            max_len[v] =
                std::max(max_len[v], max_len[u] + lines[v]);
        }
    }

    std::size_t exit = static_cast<std::size_t>(cfg.exitId());
    PathStats stats;
    stats.path_count = count[exit];
    stats.max_length_lines = max_len[exit];
    stats.avg_length_lines =
        count[exit] > 0 ? length_sum[exit] / static_cast<double>(count[exit])
                        : 0.0;

    if (metrics.enabled()) {
        metrics.counter("cfg.path_stats.functions").add();
        metrics.counter("cfg.path_stats.blocks")
            .add(static_cast<std::uint64_t>(cfg.blockCount()));
        metrics.gauge("cfg.path_stats.max_paths")
            .observe(stats.path_count);
    }
    return stats;
}

void
ProtocolPathStats::add(const PathStats& fn_stats)
{
    std::uint64_t previous = total_paths;
    total_paths = saturatingAdd(total_paths, fn_stats.path_count);
    weighted_length_sum_ += fn_stats.avg_length_lines *
                            static_cast<double>(fn_stats.path_count);
    max_length_lines = std::max(max_length_lines, fn_stats.max_length_lines);
    if (total_paths > 0)
        avg_length_lines =
            weighted_length_sum_ / static_cast<double>(total_paths);
    (void)previous;
}

bool
enumeratePaths(const Cfg& cfg,
               const std::function<void(const std::vector<int>&)>& fn,
               std::uint64_t limit)
{
    auto succs = forwardSuccessors(cfg);
    std::uint64_t emitted = 0;
    std::vector<int> path;
    // Recursive lambda DFS; acyclic graph so depth is bounded by block
    // count.
    std::function<bool(int)> dfs = [&](int node) -> bool {
        path.push_back(node);
        if (node == cfg.exitId()) {
            fn(path);
            path.pop_back();
            return ++emitted < limit;
        }
        for (int s : succs[static_cast<std::size_t>(node)]) {
            if (!dfs(s)) {
                path.pop_back();
                return false;
            }
        }
        path.pop_back();
        return true;
    };
    return dfs(cfg.entryId());
}

} // namespace mc::cfg
