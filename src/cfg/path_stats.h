#ifndef MCHECK_CFG_PATH_STATS_H
#define MCHECK_CFG_PATH_STATS_H

#include "cfg/cfg.h"
#include "support/source_manager.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace mc::cfg {

/**
 * Path statistics for one function, in the units of the paper's Table 1:
 * the number of unique exit paths from the beginning of the function to
 * all returns, and path lengths measured as lines of code.
 */
struct PathStats
{
    /** Unique entry-to-exit paths (back edges excluded, like the paper's
     *  acyclic path counts; saturates at kMaxPaths). */
    std::uint64_t path_count = 0;
    /** Average path length in source lines. */
    double avg_length_lines = 0.0;
    /** Longest path length in source lines. */
    std::uint64_t max_length_lines = 0;

    static constexpr std::uint64_t kMaxPaths = 1ull << 62;
};

/**
 * Compute PathStats with dynamic programming over the acyclic condensation
 * (back edges removed), so exponential path counts never require
 * exponential time. Block length is the number of distinct source lines
 * its statements span.
 */
PathStats computePathStats(const Cfg& cfg);

/** Aggregate of per-function stats for a whole protocol (Table 1 row). */
struct ProtocolPathStats
{
    std::uint64_t total_paths = 0;
    double avg_length_lines = 0.0;
    std::uint64_t max_length_lines = 0;

    /** Fold one function's stats into the aggregate. */
    void add(const PathStats& fn_stats);

  private:
    double weighted_length_sum_ = 0.0;
};

/**
 * Enumerate acyclic entry-to-exit paths by DFS, invoking `fn` with the
 * block-id sequence of each. Stops after `limit` paths (returns false if
 * truncated). Intended for tests and small functions; the checking engine
 * itself uses (block, state) caching instead of explicit enumeration.
 */
bool enumeratePaths(const Cfg& cfg,
                    const std::function<void(const std::vector<int>&)>& fn,
                    std::uint64_t limit = 1ull << 20);

} // namespace mc::cfg

#endif // MCHECK_CFG_PATH_STATS_H
