/**
 * @file
 * Reproduces Table 6: the three less-effective checks — buffer
 * allocation failure, directory entry management, and send-wait pairing
 * — reported as false positives and application counts per protocol.
 */
#include "bench/bench_util.h"

#include <iostream>

namespace {

struct PaperRow
{
    const char* protocol;
    int alloc_fp, alloc_applied;
    int dir_fp, dir_applied;
    int sw_fp, sw_applied;
};

const PaperRow kPaper[] = {
    {"bitvector", 0, 17, 3, 214, 2, 32}, {"dyn_ptr", 2, 19, 13, 382, 2, 38},
    {"sci", 0, 5, 1, 88, 0, 11},         {"coma", 0, 32, 5, 659, 0, 7},
    {"rac", 0, 20, 9, 424, 2, 35},       {"common", 0, 4, 0, 1, 2, 2},
};

const PaperRow*
paperRow(const std::string& name)
{
    for (const PaperRow& row : kPaper)
        if (name == row.protocol)
            return &row;
    return nullptr;
}

} // namespace

int
main()
{
    using namespace mc;
    bench::banner("Table 6: the three less effective checks", "Table 6");

    std::vector<std::vector<std::string>> rows;
    int totals[6] = {0, 0, 0, 0, 0, 0};
    int dir_errors = 0;
    for (const auto& cp : bench::allCheckedProtocols()) {
        auto alloc = cp->reconcile("alloc_check");
        auto dir = cp->reconcile("dir_check");
        auto sw = cp->reconcile("send_wait");
        int values[6] = {
            alloc.foundWithClass(corpus::SeedClass::FalsePositive),
            cp->applied("alloc_check"),
            dir.foundWithClass(corpus::SeedClass::FalsePositive),
            cp->applied("dir_check"),
            sw.foundWithClass(corpus::SeedClass::FalsePositive),
            cp->applied("send_wait"),
        };
        dir_errors += dir.foundWithClass(corpus::SeedClass::Error);
        for (int i = 0; i < 6; ++i)
            totals[i] += values[i];
        const PaperRow* paper = paperRow(cp->name());
        auto cell = [&](int ours, int theirs) {
            return std::to_string(ours) + " (" + std::to_string(theirs) +
                   ")";
        };
        rows.push_back(
            {cp->name(),
             cell(values[0], paper ? paper->alloc_fp : 0),
             cell(values[1], paper ? paper->alloc_applied : 0),
             cell(values[2], paper ? paper->dir_fp : 0),
             cell(values[3], paper ? paper->dir_applied : 0),
             cell(values[4], paper ? paper->sw_fp : 0),
             cell(values[5], paper ? paper->sw_applied : 0)});
    }
    rows.push_back({"total", std::to_string(totals[0]) + " (2)",
                    std::to_string(totals[1]) + " (97)",
                    std::to_string(totals[2]) + " (31)",
                    std::to_string(totals[3]) + " (1768)",
                    std::to_string(totals[4]) + " (8)",
                    std::to_string(totals[5]) + " (125)"});
    bench::printTable({"Protocol", "AllocFP (p)", "AllocAppl (p)",
                       "DirFP (p)", "DirAppl (p)", "SWFP (p)",
                       "SWAppl (p)"},
                      rows);
    std::cout << "directory checker real errors: " << dir_errors
              << " (paper: 1, in bitvector)\n"
              << "as in the paper, checks whose coupled actions sit close "
                 "together find fewer bugs — edit distance predicts error "
                 "rate.\n";
    return 0;
}
