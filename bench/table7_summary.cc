/**
 * @file
 * Reproduces Table 7: the summary over all checkers — checker size,
 * errors found (34), and false positives (69) across the five protocols
 * and common code.
 *
 * Checker sizes: the two metal-driven checkers report lines of metal
 * (as the paper does); the embedded checkers report the lines of their
 * C++ core, injected at build time (MCHECK_LOC_* definitions).
 */
#include "bench/bench_util.h"

#include "checkers/buffer_race.h"
#include "checkers/msg_length.h"
#include "metal/metal_parser.h"

#include <iostream>
#include <map>

#ifndef MCHECK_LOC_BUFFER_MGMT
#define MCHECK_LOC_BUFFER_MGMT 0
#endif
#ifndef MCHECK_LOC_LANES
#define MCHECK_LOC_LANES 0
#endif
#ifndef MCHECK_LOC_BUFFER_ALLOC
#define MCHECK_LOC_BUFFER_ALLOC 0
#endif
#ifndef MCHECK_LOC_DIRECTORY
#define MCHECK_LOC_DIRECTORY 0
#endif
#ifndef MCHECK_LOC_SEND_WAIT
#define MCHECK_LOC_SEND_WAIT 0
#endif
#ifndef MCHECK_LOC_EXEC_RESTRICT
#define MCHECK_LOC_EXEC_RESTRICT 0
#endif
#ifndef MCHECK_LOC_NO_FLOAT
#define MCHECK_LOC_NO_FLOAT 0
#endif

int
main()
{
    using namespace mc;
    bench::banner("Table 7: summary of all checkers", "Table 7");

    std::map<std::string, int> our_loc = {
        {"buffer_mgmt", MCHECK_LOC_BUFFER_MGMT},
        {"msglen_check",
         metal::metalSourceLines(checkers::MsgLengthChecker::metalSource())},
        {"lanes", MCHECK_LOC_LANES},
        {"wait_for_db",
         metal::metalSourceLines(
             checkers::BufferRaceChecker::metalSource())},
        {"alloc_check", MCHECK_LOC_BUFFER_ALLOC},
        {"dir_check", MCHECK_LOC_DIRECTORY},
        {"send_wait", MCHECK_LOC_SEND_WAIT},
        {"exec_restrict", MCHECK_LOC_EXEC_RESTRICT},
        {"no_float", MCHECK_LOC_NO_FLOAT},
    };

    std::vector<std::vector<std::string>> rows;
    int total_errors = 0;
    int total_fps = 0;
    for (const checkers::CheckerMeta& meta : checkers::table7Meta()) {
        int errors = 0;
        int fps = 0;
        for (const auto& cp : bench::allCheckedProtocols()) {
            auto rec = cp->reconcile(meta.name);
            errors += rec.foundWithClass(corpus::SeedClass::Error);
            fps += rec.foundWithClass(corpus::SeedClass::FalsePositive);
            // Table 7 folds the buffer checker's useless annotations
            // into its false-positive column.
            if (meta.name == "buffer_mgmt")
                fps += cp->loaded.gen.ledger.count(
                    "buffer_mgmt", corpus::SeedClass::UselessAnnotation);
        }
        total_errors += errors;
        total_fps += fps;
        rows.push_back({meta.paper_label, std::to_string(our_loc[meta.name]),
                        std::to_string(meta.paper_loc),
                        std::to_string(errors),
                        std::to_string(meta.paper_errors),
                        std::to_string(fps),
                        std::to_string(meta.paper_false_pos)});
    }
    rows.push_back({"Total", "", "553", std::to_string(total_errors), "34",
                    std::to_string(total_fps), "69"});
    bench::printTable({"Checker", "LOC", "(paper)", "Err", "(paper)",
                       "FalsePos", "(paper)"},
                      rows);

    double total_ms = 0.0;
    for (const auto& cp : bench::allCheckedProtocols())
        total_ms += cp->check_millis;
    std::cout << "all nine checkers over all six protocols: " << total_ms
              << " ms of checking (vs years of FlashLite simulation that "
                 "still missed these bugs).\n";
    return 0;
}
