/**
 * @file
 * Reproduces the Section 11 authoring-styles claim: the group first
 * wrote checkers as hand-rolled flow-graph searches (their magik-era
 * style), then as state machines, then in metal — each step shrinking
 * the code "by a factor of two (or more)" while checking the same rule.
 *
 * We implement the buffer race checker both ways and compare: source
 * size, and — crucially — identical findings over the whole corpus.
 */
#include "bench/bench_util.h"

#include "checkers/buffer_race.h"
#include "checkers/buffer_race_magik.h"
#include "metal/metal_parser.h"

#include <iostream>

#ifndef MCHECK_LOC_MAGIK
#define MCHECK_LOC_MAGIK 0
#endif

int
main()
{
    using namespace mc;
    bench::banner("Ablation: checker authoring styles",
                  "the Section 11 experience discussion");

    int metal_loc = metal::metalSourceLines(
        checkers::BufferRaceChecker::metalSource());
    int magik_loc = MCHECK_LOC_MAGIK;

    std::vector<std::vector<std::string>> rows;
    bool identical = true;
    for (const corpus::ProtocolProfile& profile : corpus::paperProfiles()) {
        corpus::LoadedProtocol loaded = corpus::loadProtocol(profile);

        checkers::BufferRaceChecker metal_checker;
        support::DiagnosticSink metal_sink;
        checkers::runCheckers(*loaded.program, loaded.gen.spec,
                              {&metal_checker}, metal_sink);

        checkers::BufferRaceMagikChecker magik_checker;
        support::DiagnosticSink magik_sink;
        checkers::runCheckers(*loaded.program, loaded.gen.spec,
                              {&magik_checker}, magik_sink);

        // Findings must agree site-for-site.
        std::set<std::string> metal_sites;
        for (const auto& d : metal_sink.diagnostics())
            metal_sites.insert(std::to_string(d.loc.file_id) + ":" +
                               std::to_string(d.loc.line));
        std::set<std::string> magik_sites;
        for (const auto& d : magik_sink.diagnostics())
            magik_sites.insert(std::to_string(d.loc.file_id) + ":" +
                               std::to_string(d.loc.line));
        bool same = metal_sites == magik_sites;
        identical &= same;
        rows.push_back(
            {profile.name,
             std::to_string(metal_sink.count(support::Severity::Error)),
             std::to_string(magik_sink.count(support::Severity::Error)),
             same ? "yes" : "NO"});
    }
    bench::printTable(
        {"Protocol", "metal findings", "magik-style findings",
         "site-identical"},
        rows);

    std::cout << "checker size: metal " << metal_loc
              << " lines vs hand-rolled flow-graph search " << magik_loc
              << " lines (" << (metal_loc ? magik_loc / metal_loc : 0)
              << "x) — the paper reports metal shrank its predecessors "
                 "2-4x.\n"
              << (identical ? "both styles report identical findings.\n"
                            : "MISMATCH between styles!\n");
    return identical ? 0 : 1;
}
