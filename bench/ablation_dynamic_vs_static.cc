/**
 * @file
 * Reproduces the paper's central motivating claim (Sections 1, 2, 6):
 * the bugs the checkers catch "show up sporadically only after the
 * system has been running continuously for days" under simulation,
 * while static checking pinpoints them in the source immediately.
 *
 * We run the generated bitvector and sci protocols under the FlashLite-
 * style simulator and report, for each dynamic failure class, how many
 * messages it took to first manifest — against the static checkers'
 * instant, source-located reports.
 */
#include "bench/bench_util.h"

#include "sim/workload.h"

#include <iostream>

int
main()
{
    using namespace mc;
    bench::banner("Ablation: dynamic (simulation) vs static detection",
                  "Sections 1/2/6 claims");

    for (const char* name : {"bitvector", "sci"}) {
        const bench::CheckedProtocol* cp = nullptr;
        for (const auto& candidate : bench::allCheckedProtocols())
            if (candidate->name() == name)
                cp = candidate.get();
        if (!cp)
            continue;

        int static_bugs = 0;
        for (const auto& meta : checkers::table7Meta())
            static_bugs += cp->reconcile(meta.name)
                               .foundWithClass(corpus::SeedClass::Error);

        std::cout << "protocol " << name << ": static checking found "
                  << static_bugs << " seeded bugs in " << cp->check_millis
                  << " ms, each with an exact source location.\n";

        sim::WorkloadDriver driver(*cp->loaded.program, cp->loaded.gen.spec,
                                   sim::MagicNode::Config(), 0xd1ce);
        sim::WorkloadResult result = driver.run(200000);

        std::vector<std::vector<std::string>> rows;
        for (int k = 0; k < sim::kFailureKindCount; ++k) {
            auto kind = static_cast<sim::FailureKind>(k);
            auto it = result.first_manifestation.find(kind);
            std::string first =
                it == result.first_manifestation.end()
                    ? "never"
                    : "message " + std::to_string(it->second);
            rows.push_back({sim::failureKindName(kind),
                            std::to_string(result.count(kind)), first});
        }
        bench::printTable(
            {"dynamic failure", "occurrences", "first manifestation"},
            rows);
        std::cout << "simulated " << result.messages_handled
                  << " messages (" << result.cycles << " cycles)"
                  << (result.deadlocked
                          ? "; run DEADLOCKED on buffer exhaustion —"
                            " the paper's several-days failure mode"
                          : "")
                  << "\n\n";
    }

    std::cout
        << "shape reproduced: dynamic manifestation is sporadic and late "
           "(or absent), carries no source location, and one failure "
           "class (buffer leaks) only surfaces as an eventual deadlock; "
           "the static checkers report every seeded bug instantly.\n";
    return 0;
}
