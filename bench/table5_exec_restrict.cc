/**
 * @file
 * Reproduces Table 5: the handler execution-restriction checker — the
 * only violations found in the paper were omitted simulation hooks.
 */
#include "bench/bench_util.h"

#include "checkers/exec_restrict.h"

#include <iostream>

namespace {

struct PaperRow
{
    const char* protocol;
    int violations;
    int handlers;
    int vars;
};

const PaperRow kPaper[] = {
    {"dyn_ptr", 4, 227, 768}, {"bitvector", 2, 168, 489},
    {"sci", 0, 214, 794},     {"coma", 3, 193, 648},
    {"rac", 2, 200, 668},     {"common", 0, 62, 398},
};

const PaperRow*
paperRow(const std::string& name)
{
    for (const PaperRow& row : kPaper)
        if (name == row.protocol)
            return &row;
    return nullptr;
}

} // namespace

int
main()
{
    using namespace mc;
    bench::banner("Table 5: execution restriction checker", "Table 5");

    std::vector<std::vector<std::string>> rows;
    int violations = 0;
    for (const auto& cp : bench::allCheckedProtocols()) {
        auto rec = cp->reconcile("exec_restrict");
        int v = rec.foundWithClass(corpus::SeedClass::Violation);
        violations += v;
        auto* checker = dynamic_cast<checkers::ExecRestrictChecker*>(
            cp->set.byName("exec_restrict"));
        int handlers = checker ? checker->handlersChecked() : 0;
        int vars = checker ? checker->varsChecked() : 0;
        const PaperRow* paper = paperRow(cp->name());
        rows.push_back({cp->name(), std::to_string(v),
                        paper ? std::to_string(paper->violations) : "-",
                        std::to_string(handlers),
                        paper ? std::to_string(paper->handlers) : "-",
                        std::to_string(vars),
                        paper ? std::to_string(paper->vars) : "-"});
    }
    rows.push_back({"total", std::to_string(violations), "11", "", "1064",
                    "", "3765"});
    bench::printTable({"Protocol", "Violations", "(paper)", "Handlers",
                       "(paper)", "Vars", "(paper)"},
                      rows);
    std::cout << "as in the paper, every counted violation is an omitted "
                 "simulator hook; sci's three extra omissions sit in "
                 "unimplemented fatal-error stubs and are not counted.\n";
    return 0;
}
