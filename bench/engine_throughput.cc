/**
 * @file
 * Google-benchmark microbenchmarks for the framework itself: frontend
 * parse speed, CFG construction, pattern matching, the path-sensitive SM
 * engine (showing the (block, state) cache keeps exponential-path
 * functions linear-time), and whole-protocol checking throughput.
 */
#include "bench/bench_util.h"
#include "cache/analysis_cache.h"
#include "checkers/parallel.h"
#include "checkers/registry.h"
#include "corpus/generator.h"
#include "metal/engine.h"
#include "metal/metal_parser.h"
#include "support/metrics.h"
#include "support/thread_pool.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <vector>

namespace {

using namespace mc;

const corpus::LoadedProtocol&
bitvector()
{
    static corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("bitvector"));
    return loaded;
}

void
BM_ParseProtocol(benchmark::State& state)
{
    const corpus::GeneratedProtocol& gen = bitvector().gen;
    std::int64_t bytes = 0;
    for (auto _ : state) {
        lang::Program program;
        for (const corpus::GeneratedFile& file : gen.files)
            program.addSource(file.name, file.source);
        benchmark::DoNotOptimize(program.functions().size());
    }
    for (const corpus::GeneratedFile& file : gen.files)
        bytes += static_cast<std::int64_t>(file.source.size());
    state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_ParseProtocol)->Unit(benchmark::kMillisecond);

void
BM_BuildAllCfgs(benchmark::State& state)
{
    const corpus::LoadedProtocol& loaded = bitvector();
    for (auto _ : state) {
        int blocks = 0;
        for (const lang::FunctionDecl* fn : loaded.program->functions()) {
            cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
            blocks += cfg.blockCount();
        }
        benchmark::DoNotOptimize(blocks);
    }
}
BENCHMARK(BM_BuildAllCfgs)->Unit(benchmark::kMillisecond);

void
BM_RunAllCheckers(benchmark::State& state)
{
    const corpus::LoadedProtocol& loaded = bitvector();
    for (auto _ : state) {
        auto set = checkers::makeAllCheckers();
        support::DiagnosticSink sink;
        auto stats = checkers::runCheckers(*loaded.program,
                                           loaded.gen.spec,
                                           set.pointers(), sink);
        benchmark::DoNotOptimize(stats.size());
    }
    state.counters["loc"] =
        static_cast<double>(bitvector().gen.totalLoc());
}
BENCHMARK(BM_RunAllCheckers)->Unit(benchmark::kMillisecond);

/**
 * Path-cache scaling: a function with N sequential if/else blocks has
 * 2^N paths, but the engine's (block, state) cache visits each block a
 * bounded number of times. Time must grow linearly in N, not in 2^N.
 */
void
BM_EngineExponentialPaths(benchmark::State& state)
{
    int n = static_cast<int>(state.range(0));
    std::string body;
    for (int i = 0; i < n; ++i)
        body += "if (c" + std::to_string(i) + ") { x = 1; } else "
                "{ x = 2; }\n";
    body += "MISCBUS_READ_DB(a, b);";

    lang::Program program;
    program.addSource("t.c", "void f(void) {" + body + "}");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));
    metal::MetalProgram checker = metal::parseMetal(
        "sm wait_for_db {\n"
        "  decl { scalar } addr, buf;\n"
        "  start:\n"
        "    { WAIT_FOR_DB_FULL(addr); } ==> stop\n"
        "  | { MISCBUS_READ_DB(addr, buf); } ==> { err(\"race\"); }\n"
        "  ;\n"
        "}\n");

    for (auto _ : state) {
        support::DiagnosticSink sink;
        auto result = metal::runStateMachine(*checker.sm, cfg, sink);
        benchmark::DoNotOptimize(result.visits);
    }
    state.counters["paths"] = std::pow(2.0, n);
}
BENCHMARK(BM_EngineExponentialPaths)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/**
 * Cost of the observability layer when it is actually collecting: the
 * same whole-protocol run as BM_RunAllCheckers but with the metrics
 * registry enabled. Compare against BM_RunAllCheckers to see the
 * enabled-mode overhead; the disabled-mode overhead is what the plain
 * benchmarks above measure (and must stay within noise of the
 * pre-instrumentation engine).
 */
void
BM_RunAllCheckersMetricsEnabled(benchmark::State& state)
{
    const corpus::LoadedProtocol& loaded = bitvector();
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    metrics.setEnabled(true);
    for (auto _ : state) {
        auto set = checkers::makeAllCheckers();
        support::DiagnosticSink sink;
        auto stats = checkers::runCheckers(*loaded.program,
                                           loaded.gen.spec,
                                           set.pointers(), sink);
        benchmark::DoNotOptimize(stats.size());
    }
    state.counters["visits"] =
        static_cast<double>(metrics.counterValue("engine.visits")) /
        static_cast<double>(state.iterations());
    metrics.setEnabled(false);
    metrics.clear();
}
BENCHMARK(BM_RunAllCheckersMetricsEnabled)->Unit(benchmark::kMillisecond);

/** The five buggy paper protocols, loaded once. */
const std::vector<corpus::LoadedProtocol>&
fullCorpus()
{
    static const std::vector<corpus::LoadedProtocol>* corpus = [] {
        auto* loaded = new std::vector<corpus::LoadedProtocol>();
        for (const char* name :
             {"bitvector", "dyn_ptr", "sci", "coma", "rac"})
            loaded->push_back(
                corpus::loadProtocol(corpus::profileByName(name)));
        return loaded;
    }();
    return *corpus;
}

/**
 * Whole-corpus checking throughput at a given --jobs level, fanning
 * (function x checker) units out within each protocol. Arg(1) is the
 * sequential baseline the ISSUE's speedup target compares against; on a
 * single-core host all arms measure the same work (the pool still
 * exercises its queues, so this doubles as a contention check).
 */
void
BM_CheckCorpusParallel(benchmark::State& state)
{
    unsigned jobs = static_cast<unsigned>(state.range(0));
    std::int64_t loc = 0;
    for (const corpus::LoadedProtocol& loaded : fullCorpus())
        loc += loaded.gen.totalLoc();
    for (auto _ : state) {
        int diags = 0;
        for (const corpus::LoadedProtocol& loaded : fullCorpus()) {
            auto set = checkers::makeAllCheckers();
            support::DiagnosticSink sink;
            checkers::ParallelRunOptions options;
            options.jobs = jobs;
            auto stats = checkers::runCheckersParallel(
                *loaded.program, loaded.gen.spec, set.pointers(), sink,
                options);
            diags += static_cast<int>(sink.diagnostics().size());
            benchmark::DoNotOptimize(stats.size());
        }
        benchmark::DoNotOptimize(diags);
    }
    state.counters["jobs"] = static_cast<double>(jobs);
    state.counters["corpus_loc"] = static_cast<double>(loc);
}
BENCHMARK(BM_CheckCorpusParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * The coarser fan-out: whole protocols across the corpus, one pool lane
 * per protocol, each checked sequentially inside its lane.
 */
void
BM_CheckCorpusProtocolFanout(benchmark::State& state)
{
    unsigned jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const auto& corpus = fullCorpus();
        support::ThreadPool pool(jobs);
        std::vector<int> diags(corpus.size(), 0);
        pool.parallelFor(corpus.size(), [&](std::size_t p) {
            auto set = checkers::makeAllCheckers();
            support::DiagnosticSink sink;
            auto stats =
                checkers::runCheckers(*corpus[p].program,
                                      corpus[p].gen.spec,
                                      set.pointers(), sink);
            benchmark::DoNotOptimize(stats.size());
            diags[p] = static_cast<int>(sink.diagnostics().size());
        });
        benchmark::DoNotOptimize(diags.data());
    }
    state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_CheckCorpusProtocolFanout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Whole-corpus checking against a pre-filled analysis cache: every
 * (function, checker) unit replays its stored outcome instead of walking
 * paths, so this measures the warm-run floor — fingerprinting, entry
 * decode, state replay, and the merge. Compare against
 * BM_CheckCorpusParallel at the same Arg for the cold/warm speedup the
 * EXPERIMENTS table reports.
 */
void
BM_CheckCorpusWarmCache(benchmark::State& state)
{
    namespace fs = std::filesystem;
    unsigned jobs = static_cast<unsigned>(state.range(0));
    fs::path dir =
        fs::temp_directory_path() / "mccheck_bench_warm_cache";
    fs::remove_all(dir);
    {
        // Cold fill, outside the timed loop.
        cache::AnalysisCache cache(dir.string());
        for (const corpus::LoadedProtocol& loaded : fullCorpus()) {
            auto set = checkers::makeAllCheckers();
            support::DiagnosticSink sink;
            checkers::ParallelRunOptions options;
            options.jobs = jobs;
            options.cache = &cache;
            checkers::runCheckersParallel(*loaded.program,
                                          loaded.gen.spec,
                                          set.pointers(), sink, options);
        }
    }
    std::uint64_t hits = 0;
    for (auto _ : state) {
        cache::AnalysisCache cache(dir.string());
        int diags = 0;
        for (const corpus::LoadedProtocol& loaded : fullCorpus()) {
            auto set = checkers::makeAllCheckers();
            support::DiagnosticSink sink;
            checkers::ParallelRunOptions options;
            options.jobs = jobs;
            options.cache = &cache;
            auto stats = checkers::runCheckersParallel(
                *loaded.program, loaded.gen.spec, set.pointers(), sink,
                options);
            diags += static_cast<int>(sink.diagnostics().size());
            benchmark::DoNotOptimize(stats.size());
        }
        hits = cache.stats().hits;
        benchmark::DoNotOptimize(diags);
    }
    state.counters["jobs"] = static_cast<double>(jobs);
    state.counters["cache_hits"] = static_cast<double>(hits);
    fs::remove_all(dir);
}
BENCHMARK(BM_CheckCorpusWarmCache)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_PatternMatch(benchmark::State& state)
{
    match::PatternContext pc;
    match::Pattern pattern = match::Pattern::compile(
        pc, "{ NI_SEND(type, F_DATA, keep, wait, dec, null) }",
        {{"type", match::WildcardKind::Scalar},
         {"keep", match::WildcardKind::Scalar},
         {"wait", match::WildcardKind::Scalar},
         {"dec", match::WildcardKind::Scalar},
         {"null", match::WildcardKind::Scalar}});

    lang::Program program;
    program.addSource(
        "t.c", "void f(void) { NI_SEND(MSG_PUT, F_DATA, a, b, c, d); }");
    const lang::Stmt* hit = program.findFunction("f")->body->stmts[0];
    program.addSource("u.c",
                      "void g(void) { OTHER(MSG_PUT, F_DATA, a, b, c); }");
    const lang::Stmt* miss = program.findFunction("g")->body->stmts[0];

    for (auto _ : state) {
        benchmark::DoNotOptimize(pattern.matchInStmt(*hit).has_value());
        benchmark::DoNotOptimize(pattern.matchInStmt(*miss).has_value());
    }
}
BENCHMARK(BM_PatternMatch);

void
BM_GenerateProtocol(benchmark::State& state)
{
    const corpus::ProtocolProfile& profile =
        corpus::profileByName("bitvector");
    for (auto _ : state) {
        corpus::GeneratedProtocol gen = corpus::generateProtocol(profile);
        benchmark::DoNotOptimize(gen.totalLoc());
    }
}
BENCHMARK(BM_GenerateProtocol)->Unit(benchmark::kMillisecond);

} // namespace

/**
 * Custom main: `--json <path>` (or `--json=<path>`) additionally runs the
 * steady-state engine-throughput measurement for both matching strategies
 * and writes the machine-readable BENCH_engine.json report. The flag is
 * stripped before google-benchmark sees the argument vector; everything
 * else behaves like BENCHMARK_MAIN().
 */
int
main(int argc, char** argv)
{
    std::string json_path;
    std::vector<char*> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else {
            args.push_back(argv[i]);
        }
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!json_path.empty() &&
        !mc::bench::writeEngineThroughputReport(json_path))
        return 1;
    return 0;
}
