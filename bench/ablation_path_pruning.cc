/**
 * @file
 * Extension ablation: correlated-branch path pruning.
 *
 * Section 5 of the paper, on the two coma false positives: "The variable
 * usage was simple enough that the checker could have statically pruned
 * the impossible execution paths with a more elaborate analysis, but the
 * effort seemed unjustified in this case."
 *
 * We built that analysis (PathWalker's correlated-branch pruning) and
 * measure what it buys: with pruning on, the message-length checker's
 * two coma false positives disappear while every real error is still
 * found.
 */
#include "bench/bench_util.h"

#include <iostream>

int
main()
{
    using namespace mc;
    bench::banner("Ablation: impossible-path pruning (extension)",
                  "the Section 5 false-positive discussion");

    std::vector<std::vector<std::string>> rows;
    int baseline_fps = 0;
    int pruned_fps = 0;
    for (const corpus::ProtocolProfile& profile : corpus::paperProfiles()) {
        bench::CheckedProtocol baseline(profile);
        checkers::CheckerSetOptions pruning;
        pruning.prune_impossible_paths = true;
        bench::CheckedProtocol pruned(profile, pruning);

        auto count = [](const bench::CheckedProtocol& cp,
                        support::Severity sev) {
            return cp.sink.countForChecker("msglen_check", sev);
        };
        int base_reports = count(baseline, support::Severity::Error);
        int pruned_reports = count(pruned, support::Severity::Error);
        int base_errors =
            baseline.reconcile("msglen_check")
                .foundWithClass(corpus::SeedClass::Error);
        int pruned_errors =
            pruned.reconcile("msglen_check")
                .foundWithClass(corpus::SeedClass::Error);
        baseline_fps += base_reports - base_errors;
        pruned_fps += pruned_reports - pruned_errors;
        rows.push_back({profile.name, std::to_string(base_errors),
                        std::to_string(base_reports - base_errors),
                        std::to_string(pruned_errors),
                        std::to_string(pruned_reports - pruned_errors)});
    }
    rows.push_back({"total", "", std::to_string(baseline_fps), "",
                    std::to_string(pruned_fps)});
    bench::printTable({"Protocol", "errors (paper cfg)", "FPs (paper cfg)",
                       "errors (pruning)", "FPs (pruning)"},
                      rows);

    std::cout << "pruning removes " << baseline_fps - pruned_fps
              << " of the " << baseline_fps
              << " message-length false positives (the paper's coma pair) "
                 "without losing any real error.\n";
    return 0;
}
