/**
 * @file
 * Extension ablation: branch-feasibility path pruning.
 *
 * Section 5 of the paper, on the two coma false positives: "The variable
 * usage was simple enough that the checker could have statically pruned
 * the impossible execution paths with a more elaborate analysis, but the
 * effort seemed unjustified in this case."
 *
 * We built that analysis twice over and measure what each layer buys:
 *
 *   off          no pruning — the paper's configuration (69 FPs).
 *   correlated   syntactic branch correlation: a later branch whose
 *                rendered condition matches an earlier one on the path
 *                takes only the recorded outcome.
 *   constraints  semantic feasibility: per-path integer constraints
 *                (equalities, intervals, disequalities) over interned
 *                symbols, so `x == 5` then `x > 10` prunes even though
 *                the conditions never render to the same text.
 *
 * Every real seeded error must survive at every strategy, and findings
 * must shrink monotonically: constraints <= correlated <= off.
 *
 * Output includes machine-greppable lines of the form
 *   PRUNE_FP_TOTAL <strategy>=<fps> errors=<errors>
 * which ci pins (see .github/workflows/ci.yml).
 */
#include "bench/bench_util.h"

#include <iostream>

int
main()
{
    using namespace mc;
    bench::banner("Ablation: impossible-path pruning (extension)",
                  "the Section 5 false-positive discussion");

    struct Totals
    {
        int errors = 0;
        int fps = 0;
    };

    const metal::PruneStrategy strategies[] = {
        metal::PruneStrategy::Off,
        metal::PruneStrategy::Correlated,
        metal::PruneStrategy::Constraints,
    };

    std::vector<std::vector<std::string>> rows;
    Totals totals[3];
    for (const corpus::ProtocolProfile& profile :
         corpus::paperProfiles()) {
        std::vector<std::string> row = {profile.name};
        for (int s = 0; s < 3; ++s) {
            checkers::CheckerSetOptions options;
            options.prune_strategy = strategies[s];
            bench::CheckedProtocol checked(profile, options);
            Totals t;
            for (const checkers::CheckerMeta& meta :
                 checkers::table7Meta()) {
                corpus::Reconciliation rec = checked.reconcile(meta.name);
                t.errors += rec.foundWithClass(corpus::SeedClass::Error);
                // Table 7's FP column: seeded false positives the
                // checker still reports, plus the buffer checker's
                // useless annotations (the paper folds those in).
                t.fps +=
                    rec.foundWithClass(corpus::SeedClass::FalsePositive);
                if (meta.name == "buffer_mgmt")
                    t.fps += checked.loaded.gen.ledger.count(
                        "buffer_mgmt",
                        corpus::SeedClass::UselessAnnotation);
            }
            totals[s].errors += t.errors;
            totals[s].fps += t.fps;
            row.push_back(std::to_string(t.errors));
            row.push_back(std::to_string(t.fps));
        }
        rows.push_back(std::move(row));
    }
    rows.push_back({"total", std::to_string(totals[0].errors),
                    std::to_string(totals[0].fps),
                    std::to_string(totals[1].errors),
                    std::to_string(totals[1].fps),
                    std::to_string(totals[2].errors),
                    std::to_string(totals[2].fps)});
    bench::printTable({"Protocol", "errors (off)", "FPs (off)",
                       "errors (correlated)", "FPs (correlated)",
                       "errors (constraints)", "FPs (constraints)"},
                      rows);

    for (int s = 0; s < 3; ++s)
        std::cout << "PRUNE_FP_TOTAL "
                  << metal::pruneStrategyName(strategies[s]) << "="
                  << totals[s].fps << " errors=" << totals[s].errors
                  << '\n';
    std::cout << "constraint pruning removes "
              << totals[0].fps - totals[2].fps << " of the "
              << totals[0].fps
              << " false positives without losing any real error.\n";
    return 0;
}
