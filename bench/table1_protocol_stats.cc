/**
 * @file
 * Reproduces Table 1: protocol size as measured by lines of code, the
 * number of unique paths from the beginning of a handler to all exit
 * points, and the average / maximum path length.
 */
#include "bench/bench_util.h"

#include "cfg/path_stats.h"

#include <cmath>
#include <iostream>

namespace {

struct PaperRow
{
    const char* protocol;
    int loc;
    int paths;
    int avg_len;
    int max_len;
};

/** Table 1 as printed in the paper. */
const PaperRow kPaper[] = {
    {"bitvector", 10386, 486, 87, 563}, {"dyn_ptr", 18438, 2322, 135, 399},
    {"sci", 11473, 1051, 73, 330},      {"coma", 17031, 1131, 135, 244},
    {"rac", 14396, 1364, 133, 516},     {"common", 8783, 1165, 183, 461},
};

} // namespace

int
main()
{
    using namespace mc;
    bench::banner("Table 1: protocol size", "Table 1");

    std::vector<std::vector<std::string>> rows;
    long long total_loc = 0;
    for (const auto& cp : bench::allCheckedProtocols()) {
        cfg::ProtocolPathStats agg;
        for (const lang::FunctionDecl* fn :
             cp->loaded.program->functions()) {
            cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
            agg.add(cfg::computePathStats(cfg));
        }
        int loc = cp->loaded.gen.totalLoc();
        total_loc += loc;

        const PaperRow* paper = nullptr;
        for (const PaperRow& row : kPaper)
            if (cp->name() == row.protocol)
                paper = &row;

        rows.push_back(
            {cp->name(), std::to_string(loc),
             paper ? std::to_string(paper->loc) : "-",
             std::to_string(agg.total_paths),
             paper ? std::to_string(paper->paths) : "-",
             std::to_string(
                 static_cast<int>(std::lround(agg.avg_length_lines))) +
                 "/" + std::to_string(agg.max_length_lines),
             paper ? std::to_string(paper->avg_len) + "/" +
                         std::to_string(paper->max_len)
                   : "-"});
    }
    bench::printTable({"Protocol", "LOC", "(paper)", "#paths", "(paper)",
                       "ave/max path", "(paper)"},
                      rows);
    std::cout << "total generated protocol corpus: " << total_loc
              << " LOC (paper: 80507)\n";
    return 0;
}
