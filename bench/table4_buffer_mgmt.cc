/**
 * @file
 * Reproduces Table 4: the buffer management checker — errors, minor
 * violations, and the annotation economics (useful vs useless
 * annotations, roughly one per thousand lines of source).
 */
#include "bench/bench_util.h"

#include <iostream>

namespace {

struct PaperRow
{
    const char* protocol;
    int errors;
    int minor;
    int useful;
    int useless;
};

const PaperRow kPaper[] = {
    {"dyn_ptr", 2, 2, 3, 3}, {"bitvector", 2, 1, 0, 1},
    {"sci", 3, 2, 10, 10},   {"coma", 0, 0, 0, 0},
    {"rac", 2, 0, 2, 4},     {"common", 0, 1, 3, 7},
};

const PaperRow*
paperRow(const std::string& name)
{
    for (const PaperRow& row : kPaper)
        if (name == row.protocol)
            return &row;
    return nullptr;
}

} // namespace

int
main()
{
    using namespace mc;
    bench::banner("Table 4: buffer management checker", "Table 4");

    std::vector<std::vector<std::string>> rows;
    int errors = 0;
    int minor = 0;
    int useful = 0;
    int useless = 0;
    long long loc = 0;
    for (const auto& cp : bench::allCheckedProtocols()) {
        auto rec = cp->reconcile("buffer_mgmt");
        int e = rec.foundWithClass(corpus::SeedClass::Error);
        int m = rec.foundWithClass(corpus::SeedClass::Minor);
        const corpus::Ledger& ledger = cp->loaded.gen.ledger;
        int u = ledger.count("buffer_mgmt",
                             corpus::SeedClass::UsefulAnnotation);
        int x = ledger.count("buffer_mgmt",
                             corpus::SeedClass::UselessAnnotation);
        errors += e;
        minor += m;
        useful += u;
        useless += x;
        loc += cp->loaded.gen.totalLoc();
        const PaperRow* paper = paperRow(cp->name());
        auto pstr = [&](int ours, int theirs) {
            return std::to_string(ours) + " (" +
                   (paper ? std::to_string(theirs) : "-") + ")";
        };
        rows.push_back({cp->name(), pstr(e, paper ? paper->errors : 0),
                        pstr(m, paper ? paper->minor : 0),
                        pstr(u, paper ? paper->useful : 0),
                        pstr(x, paper ? paper->useless : 0)});
    }
    rows.push_back({"total", std::to_string(errors) + " (9)",
                    std::to_string(minor) + " (6)",
                    std::to_string(useful) + " (18)",
                    std::to_string(useless) + " (25)"});
    bench::printTable({"Protocol", "Errors (paper)", "Minor (paper)",
                       "Useful (paper)", "Useless (paper)"},
                      rows);

    double per_kloc =
        1000.0 * static_cast<double>(useful + useless) /
        static_cast<double>(loc);
    std::cout << "annotations per KLOC: " << per_kloc
              << " (paper: 'roughly one per thousand lines of source')\n";
    return 0;
}
