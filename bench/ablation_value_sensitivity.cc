/**
 * @file
 * Reproduces the Section 6.1 ablation: "We eliminated over twenty
 * useless annotations by adding twelve lines to the SM to make it
 * sensitive to the value of four routines that, when called, returned a
 * 0 or 1 depending on whether or not they freed a buffer. Without this
 * addition, the more naive extension marked the buffer as freed (or not
 * freed) on both paths, giving a small cascade of errors."
 */
#include "bench/bench_util.h"

#include <iostream>

int
main()
{
    using namespace mc;
    bench::banner("Ablation: value-sensitive frees (Section 6.1)",
                  "Section 6.1");

    std::vector<std::vector<std::string>> rows;
    int total_extra = 0;
    int total_sites = 0;
    for (const corpus::ProtocolProfile& profile : corpus::paperProfiles()) {
        bench::CheckedProtocol smart(profile);
        checkers::CheckerSetOptions naive_options;
        naive_options.value_sensitive_frees = false;
        bench::CheckedProtocol naive(profile, naive_options);

        int smart_errors = smart.sink.countForChecker(
            "buffer_mgmt", support::Severity::Error);
        int naive_errors = naive.sink.countForChecker(
            "buffer_mgmt", support::Severity::Error);
        int extra = naive_errors - smart_errors;
        total_extra += extra;
        total_sites += profile.maybe_free_sites;
        rows.push_back({profile.name,
                        std::to_string(profile.maybe_free_sites),
                        std::to_string(smart_errors),
                        std::to_string(naive_errors),
                        std::to_string(extra)});
    }
    rows.push_back({"total", std::to_string(total_sites), "", "",
                    std::to_string(total_extra)});
    bench::printTable({"Protocol", "MAYBE_FREE sites", "refined reports",
                       "naive reports", "cascade removed"},
                      rows);

    std::cout << "the refinement removes " << total_extra
              << " spurious reports (paper: 'over twenty useless "
                 "annotations' avoided by a twelve-line SM addition).\n";
    return 0;
}
