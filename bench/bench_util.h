#ifndef MCHECK_BENCH_BENCH_UTIL_H
#define MCHECK_BENCH_BENCH_UTIL_H

#include "checkers/registry.h"
#include "corpus/generator.h"
#include "support/text.h"

#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mc::bench {

/** One protocol, generated, parsed, checked, and reconciled. */
struct CheckedProtocol
{
    corpus::LoadedProtocol loaded;
    checkers::CheckerSet set;
    support::DiagnosticSink sink;
    std::vector<checkers::CheckerRunStats> stats;
    double check_millis = 0.0;

    explicit CheckedProtocol(const corpus::ProtocolProfile& profile,
                             checkers::CheckerSetOptions options =
                                 checkers::CheckerSetOptions())
        : loaded(corpus::loadProtocol(profile)),
          set(checkers::makeAllCheckers(options))
    {
        auto begin = std::chrono::steady_clock::now();
        stats = checkers::runCheckers(*loaded.program, loaded.gen.spec,
                                      set.pointers(), sink);
        auto end = std::chrono::steady_clock::now();
        check_millis =
            std::chrono::duration<double, std::milli>(end - begin).count();
    }

    corpus::Reconciliation
    reconcile(const std::string& checker) const
    {
        return corpus::reconcile(loaded.gen.ledger, sink.diagnostics(),
                                 loaded.file_function, checker);
    }

    int
    applied(const std::string& checker) const
    {
        for (const auto& s : stats)
            if (s.checker == checker)
                return s.applied;
        return 0;
    }

    const std::string& name() const { return loaded.gen.name; }
};

/** All six paper protocols, checked once and cached for the process. */
inline const std::vector<std::unique_ptr<CheckedProtocol>>&
allCheckedProtocols()
{
    static std::vector<std::unique_ptr<CheckedProtocol>> cache = [] {
        std::vector<std::unique_ptr<CheckedProtocol>> out;
        for (const corpus::ProtocolProfile& profile :
             corpus::paperProfiles())
            out.push_back(std::make_unique<CheckedProtocol>(profile));
        return out;
    }();
    return cache;
}

/** Print a bench header naming the reproduced table. */
inline void
banner(const std::string& title, const std::string& paper_ref)
{
    std::cout << "=== " << title << " ===\n"
              << "(reproduces " << paper_ref
              << " of 'Using Meta-level Compilation to Check FLASH "
                 "Protocol Code', ASPLOS 2000)\n\n";
}

inline void
printTable(const std::vector<std::string>& header,
           const std::vector<std::vector<std::string>>& rows)
{
    std::cout << support::formatTable(header, rows) << '\n';
}

} // namespace mc::bench

#endif // MCHECK_BENCH_BENCH_UTIL_H
