#ifndef MCHECK_BENCH_BENCH_UTIL_H
#define MCHECK_BENCH_BENCH_UTIL_H

#include "cfg/cfg.h"
#include "checkers/metal_sources.h"
#include "checkers/registry.h"
#include "corpus/generator.h"
#include "metal/engine.h"
#include "metal/metal_parser.h"
#include "support/text.h"
#include "support/witness.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace mc::bench {

/** One protocol, generated, parsed, checked, and reconciled. */
struct CheckedProtocol
{
    corpus::LoadedProtocol loaded;
    checkers::CheckerSet set;
    support::DiagnosticSink sink;
    std::vector<checkers::CheckerRunStats> stats;
    double check_millis = 0.0;

    explicit CheckedProtocol(const corpus::ProtocolProfile& profile,
                             checkers::CheckerSetOptions options =
                                 checkers::CheckerSetOptions())
        : loaded(corpus::loadProtocol(profile)),
          set(checkers::makeAllCheckers(options))
    {
        auto begin = std::chrono::steady_clock::now();
        stats = checkers::runCheckers(*loaded.program, loaded.gen.spec,
                                      set.pointers(), sink);
        auto end = std::chrono::steady_clock::now();
        check_millis =
            std::chrono::duration<double, std::milli>(end - begin).count();
    }

    corpus::Reconciliation
    reconcile(const std::string& checker) const
    {
        return corpus::reconcile(loaded.gen.ledger, sink.diagnostics(),
                                 loaded.file_function, checker);
    }

    int
    applied(const std::string& checker) const
    {
        for (const auto& s : stats)
            if (s.checker == checker)
                return s.applied;
        return 0;
    }

    const std::string& name() const { return loaded.gen.name; }
};

/** All six paper protocols, checked once and cached for the process. */
inline const std::vector<std::unique_ptr<CheckedProtocol>>&
allCheckedProtocols()
{
    static std::vector<std::unique_ptr<CheckedProtocol>> cache = [] {
        std::vector<std::unique_ptr<CheckedProtocol>> out;
        for (const corpus::ProtocolProfile& profile :
             corpus::paperProfiles())
            out.push_back(std::make_unique<CheckedProtocol>(profile));
        return out;
    }();
    return cache;
}

/**
 * Steady-state engine throughput over the five buggy paper protocols:
 * every function's CFG walked by both paper state machines (wait_for_db
 * and msg_len_check), repeated `repeats` times after one warmup pass.
 * The counters are the engine's own semantic counters, so the numbers
 * double as an invariant check (they must not change with the matching
 * strategy, the thread count, or cache temperature).
 */
struct EngineThroughput
{
    std::uint64_t cfgs = 0;
    std::uint64_t blocks = 0;
    std::uint64_t stmts = 0;
    /** Per repeat-pass semantic counters (identical every pass). */
    std::uint64_t visits = 0;
    std::uint64_t sm_transitions = 0;
    std::uint64_t rule_firings = 0;
    std::uint64_t peak_frontier = 0;
    /** Witness steps recorded per pass (0 unless capture is enabled). */
    std::uint64_t witness_steps = 0;
    double ns_per_visit = 0.0;
    double visits_per_sec = 0.0;
    double transitions_per_sec = 0.0;
};

inline EngineThroughput
measureEngineThroughput(metal::MatchStrategy strategy, int repeats = 5)
{
    EngineThroughput out;
    std::vector<corpus::LoadedProtocol> corpus;
    for (const char* name : {"bitvector", "dyn_ptr", "sci", "coma", "rac"})
        corpus.push_back(corpus::loadProtocol(corpus::profileByName(name)));
    metal::MetalProgram wait =
        metal::parseMetal(checkers::kWaitForDbMetal);
    metal::MetalProgram msg =
        metal::parseMetal(checkers::kMsgLenCheckMetal);

    std::vector<cfg::Cfg> cfgs;
    for (const corpus::LoadedProtocol& loaded : corpus)
        for (const lang::FunctionDecl* fn : loaded.program->functions())
            cfgs.push_back(cfg::CfgBuilder::build(*fn));
    out.cfgs = cfgs.size();
    for (const cfg::Cfg& cfg : cfgs) {
        out.blocks += cfg.blocks().size();
        for (const cfg::BasicBlock& bb : cfg.blocks())
            out.stmts += bb.stmts.size();
    }

    metal::SmRunOptions options;
    options.match_strategy = strategy;
    auto pass = [&](bool record) {
        std::uint64_t visits = 0, transitions = 0, firings = 0;
        std::uint64_t wsteps = 0;
        for (const cfg::Cfg& cfg : cfgs) {
            support::DiagnosticSink sink;
            for (metal::StateMachine* sm : {wait.sm.get(), msg.sm.get()}) {
                metal::SmRunResult r =
                    metal::runStateMachine(*sm, cfg, sink, options);
                visits += r.visits;
                transitions += r.transitions;
                wsteps += r.witness_steps;
                for (const auto& [rule, n] : r.firings)
                    firings += static_cast<std::uint64_t>(n);
                if (record && r.peak_frontier > out.peak_frontier)
                    out.peak_frontier = r.peak_frontier;
            }
        }
        if (record) {
            out.visits = visits;
            out.sm_transitions = transitions;
            out.rule_firings = firings;
            out.witness_steps = wsteps;
        }
    };

    pass(/*record=*/false); // warmup: lazy SM compilation, allocator state
    auto begin = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r)
        pass(/*record=*/true);
    auto end = std::chrono::steady_clock::now();
    double ns = std::chrono::duration<double, std::nano>(end - begin)
                    .count();
    double total_visits =
        static_cast<double>(out.visits) * static_cast<double>(repeats);
    double total_transitions = static_cast<double>(out.sm_transitions) *
                               static_cast<double>(repeats);
    if (total_visits > 0) {
        out.ns_per_visit = ns / total_visits;
        out.visits_per_sec = total_visits / (ns * 1e-9);
        out.transitions_per_sec = total_transitions / (ns * 1e-9);
    }
    return out;
}

/**
 * The machine the numbers were taken on. Absolute ns/visit figures are
 * meaningless without it — CI compares ratios, humans compare hosts.
 * Every field degrades to "unknown" off Linux or in stripped-down
 * containers rather than failing the bench.
 */
struct HostInfo
{
    std::string cpu_model = "unknown";
    unsigned cores = 0;
    std::string governor = "unknown";
};

inline HostInfo
hostInfo()
{
    HostInfo info;
    info.cores = std::thread::hardware_concurrency();
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        const std::string key = "model name";
        if (line.compare(0, key.size(), key) != 0)
            continue;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            break;
        std::size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start != std::string::npos)
            info.cpu_model = line.substr(start);
        break;
    }
    std::ifstream gov(
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
    std::string g;
    if (gov && std::getline(gov, g) && !g.empty())
        info.governor = g;
    return info;
}

inline void
writeEngineThroughputJson(std::ostream& os, const EngineThroughput& table,
                          const EngineThroughput& legacy,
                          const EngineThroughput& witness)
{
    const HostInfo host = hostInfo();
    auto section = [&](const char* name, const EngineThroughput& t,
                       bool last) {
        os << "  \"" << name << "\": {\n"
           << "    \"ns_per_visit\": " << t.ns_per_visit << ",\n"
           << "    \"visits_per_sec\": " << t.visits_per_sec << ",\n"
           << "    \"transitions_per_sec\": " << t.transitions_per_sec
           << ",\n"
           << "    \"peak_frontier\": " << t.peak_frontier << ",\n"
           << "    \"visits\": " << t.visits << ",\n"
           << "    \"sm_transitions\": " << t.sm_transitions << ",\n"
           << "    \"rule_firings\": " << t.rule_firings << ",\n"
           << "    \"witness_steps\": " << t.witness_steps << "\n"
           << "  }" << (last ? "\n" : ",\n");
    };
    os << "{\n"
       << "  \"bench\": \"engine_throughput\",\n"
       << "  \"host\": {\n"
       << "    \"cpu_model\": \""
       << support::jsonEscape(host.cpu_model) << "\",\n"
       << "    \"cores\": " << host.cores << ",\n"
       << "    \"governor\": \"" << support::jsonEscape(host.governor)
       << "\"\n"
       << "  },\n"
       << "  \"corpus\": {\n"
       << "    \"protocols\": 5,\n"
       << "    \"cfgs\": " << table.cfgs << ",\n"
       << "    \"blocks\": " << table.blocks << ",\n"
       << "    \"stmts\": " << table.stmts << "\n"
       << "  },\n";
    section("engine", table, /*last=*/false);
    section("legacy", legacy, /*last=*/false);
    section("witness", witness, /*last=*/true);
    os << "}\n";
}

/**
 * Measure both strategies (plus the table strategy with witness capture
 * on, quantifying the --witness overhead) and write
 * BENCH_engine.json-style output to `path`. Returns false (after
 * reporting to stderr) if the file cannot be opened.
 */
inline bool
writeEngineThroughputReport(const std::string& path, int repeats = 5)
{
    EngineThroughput table =
        measureEngineThroughput(metal::MatchStrategy::Table, repeats);
    EngineThroughput legacy =
        measureEngineThroughput(metal::MatchStrategy::Legacy, repeats);
    support::setWitnessConfig(true, support::kDefaultWitnessLimit);
    EngineThroughput witness =
        measureEngineThroughput(metal::MatchStrategy::Table, repeats);
    support::setWitnessConfig(false, 0);
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << '\n';
        return false;
    }
    writeEngineThroughputJson(os, table, legacy, witness);
    return os.good();
}

/** Print a bench header naming the reproduced table. */
inline void
banner(const std::string& title, const std::string& paper_ref)
{
    std::cout << "=== " << title << " ===\n"
              << "(reproduces " << paper_ref
              << " of 'Using Meta-level Compilation to Check FLASH "
                 "Protocol Code', ASPLOS 2000)\n\n";
}

inline void
printTable(const std::vector<std::string>& header,
           const std::vector<std::vector<std::string>>& rows)
{
    std::cout << support::formatTable(header, rows) << '\n';
}

} // namespace mc::bench

#endif // MCHECK_BENCH_BENCH_UTIL_H
