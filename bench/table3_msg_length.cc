/**
 * @file
 * Reproduces Table 3: the message length / has-data consistency checker
 * (Figure 3's `msglen_check` metal state machine) applied to the five
 * protocols and the common code. This checker found the most bugs in
 * FLASH code (18 of 34).
 */
#include "bench/bench_util.h"

#include "checkers/msg_length.h"
#include "metal/metal_parser.h"

#include <iostream>

namespace {

struct PaperRow
{
    const char* protocol;
    int errors;
    int false_pos;
    int applied;
};

const PaperRow kPaper[] = {
    {"bitvector", 3, 0, 205}, {"dyn_ptr", 7, 0, 316}, {"sci", 0, 0, 308},
    {"coma", 0, 2, 302},      {"rac", 8, 0, 346},     {"common", 0, 0, 73},
};

const PaperRow*
paperRow(const std::string& name)
{
    for (const PaperRow& row : kPaper)
        if (name == row.protocol)
            return &row;
    return nullptr;
}

} // namespace

int
main()
{
    using namespace mc;
    bench::banner("Table 3: message length consistency checker",
                  "Table 3 and Figure 3");

    std::cout << "checker source ("
              << metal::metalSourceLines(
                     checkers::MsgLengthChecker::metalSource())
              << " lines of metal)\n\n";

    std::vector<std::vector<std::string>> rows;
    int errors = 0;
    int fps = 0;
    int applied = 0;
    for (const auto& cp : bench::allCheckedProtocols()) {
        auto rec = cp->reconcile("msglen_check");
        int e = rec.foundWithClass(corpus::SeedClass::Error);
        int f = rec.foundWithClass(corpus::SeedClass::FalsePositive);
        int a = cp->applied("msglen_check");
        errors += e;
        fps += f;
        applied += a;
        const PaperRow* paper = paperRow(cp->name());
        rows.push_back({cp->name(), std::to_string(e),
                        paper ? std::to_string(paper->errors) : "-",
                        std::to_string(f),
                        paper ? std::to_string(paper->false_pos) : "-",
                        std::to_string(a),
                        paper ? std::to_string(paper->applied) : "-"});
    }
    rows.push_back({"total", std::to_string(errors), "18",
                    std::to_string(fps), "2", std::to_string(applied),
                    "1550"});
    bench::printTable({"Protocol", "Errors", "(paper)", "FalsePos",
                       "(paper)", "Applied", "(paper)"},
                      rows);

    std::cout << "who wins: msglen_check finds the most bugs of any "
                 "checker, as in the paper.\n";
    return 0;
}
