/**
 * @file
 * Reproduces Table 2: the buffer fill race-condition checker (Figure 2's
 * `wait_for_db` metal state machine) applied to the five protocols and
 * the common code.
 */
#include "bench/bench_util.h"

#include "checkers/buffer_race.h"
#include "metal/metal_parser.h"

#include <iostream>

namespace {

struct PaperRow
{
    const char* protocol;
    int errors;
    int false_pos;
    int applied;
};

const PaperRow kPaper[] = {
    {"bitvector", 4, 0, 14}, {"dyn_ptr", 0, 0, 16}, {"sci", 0, 0, 2},
    {"coma", 0, 0, 0},       {"rac", 0, 0, 10},     {"common", 0, 1, 17},
};

const PaperRow*
paperRow(const std::string& name)
{
    for (const PaperRow& row : kPaper)
        if (name == row.protocol)
            return &row;
    return nullptr;
}

} // namespace

int
main()
{
    using namespace mc;
    bench::banner("Table 2: buffer race condition checker",
                  "Table 2 and Figure 2");

    std::cout << "checker source ("
              << metal::metalSourceLines(
                     checkers::BufferRaceChecker::metalSource())
              << " lines of metal):\n"
              << checkers::BufferRaceChecker::metalSource() << '\n';

    std::vector<std::vector<std::string>> rows;
    int errors = 0;
    int fps = 0;
    int applied = 0;
    for (const auto& cp : bench::allCheckedProtocols()) {
        auto rec = cp->reconcile("wait_for_db");
        int e = rec.foundWithClass(corpus::SeedClass::Error);
        int f = rec.foundWithClass(corpus::SeedClass::FalsePositive);
        int a = cp->applied("wait_for_db");
        errors += e;
        fps += f;
        applied += a;
        const PaperRow* paper = paperRow(cp->name());
        rows.push_back({cp->name(), std::to_string(e),
                        paper ? std::to_string(paper->errors) : "-",
                        std::to_string(f),
                        paper ? std::to_string(paper->false_pos) : "-",
                        std::to_string(a),
                        paper ? std::to_string(paper->applied) : "-"});
    }
    rows.push_back({"total", std::to_string(errors), "4",
                    std::to_string(fps), "1", std::to_string(applied),
                    "59"});
    bench::printTable({"Protocol", "Errors", "(paper)", "FalsePos",
                       "(paper)", "Applied", "(paper)"},
                      rows);
    return 0;
}
