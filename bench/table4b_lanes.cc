/**
 * @file
 * Reproduces Section 7's results: the inter-procedural lane-quota
 * (deadlock avoidance) checker found two serious bugs — one in dyn_ptr
 * and one in bitvector — with zero false positives, and the fixed-point
 * rule eliminated all recursion-based false positives.
 */
#include "bench/bench_util.h"

#include <iostream>

int
main()
{
    using namespace mc;
    bench::banner("Section 7: message-send deadlock (lanes) checker",
                  "Section 7");

    std::vector<std::vector<std::string>> rows;
    int errors = 0;
    int warnings = 0;
    for (const auto& cp : bench::allCheckedProtocols()) {
        auto rec = cp->reconcile("lanes");
        int e = rec.foundWithClass(corpus::SeedClass::Error);
        int fp = static_cast<int>(rec.unexpected.size());
        errors += e;
        warnings += fp;
        int paper_errors = cp->name() == "dyn_ptr" ? 1
                           : cp->name() == "bitvector" ? 1
                                                       : 0;
        rows.push_back({cp->name(), std::to_string(e),
                        std::to_string(paper_errors), std::to_string(fp),
                        "0"});
    }
    rows.push_back({"total", std::to_string(errors), "2",
                    std::to_string(warnings), "0"});
    bench::printTable(
        {"Protocol", "Errors", "(paper)", "FalsePos", "(paper)"}, rows);

    // Show one inter-procedural back-trace, the feature the paper calls
    // "crucial for diagnosing errors".
    for (const auto& cp : bench::allCheckedProtocols()) {
        for (const auto& d : cp->sink.diagnostics()) {
            if (d.checker == "lanes" && !d.trace.empty()) {
                std::cout << "sample back-trace (" << cp->name()
                          << "):\n  " << d.message << '\n';
                for (const std::string& frame : d.trace)
                    std::cout << "    at " << frame << '\n';
                std::cout << "\nfixed-point rule: every protocol contains "
                             "a non-sending recursive helper; none "
                             "produced a false positive.\n";
                return 0;
            }
        }
    }
    return 0;
}
